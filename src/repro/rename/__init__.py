"""Register renaming: RAT, free lists, physical register file, scoreboard.

The paper's baseline is a physical-register-file architecture (MIPS
R10000 / Alpha 21264 style, Section II-A): the RAT maps logical registers
to PRF entries, a free list supplies fresh physical registers, the previous
mapping is reclaimed at commit, and a 1-bit-per-entry PRF scoreboard tracks
which physical registers hold valid values.  FXA reads that scoreboard in
the front end (twice per instruction — Section III-C) to decide whether an
instruction can execute in the IXU.
"""

from repro.rename.freelist import FreeList
from repro.rename.rat import RAT, RenameUndo
from repro.rename.prf import PhysicalRegisterFile
from repro.rename.scoreboard import Scoreboard
from repro.rename.renamer import RenamedOperands, Renamer

__all__ = [
    "FreeList",
    "RAT",
    "RenameUndo",
    "PhysicalRegisterFile",
    "Scoreboard",
    "RenamedOperands",
    "Renamer",
]

"""Register alias table with undo support for squashes."""

from __future__ import annotations

from typing import Dict

from repro.isa.registers import Reg


class RenameUndo:
    """Record to reverse one rename on a pipeline squash."""

    __slots__ = ("logical", "old_physical", "new_physical")

    def __init__(self, logical: Reg, old_physical: int,
                 new_physical: int):
        self.logical = logical
        self.old_physical = old_physical
        self.new_physical = new_physical

    def __repr__(self) -> str:
        return (f"RenameUndo({self.logical!r}, "
                f"{self.old_physical} -> {self.new_physical})")


class RAT:
    """Speculative logical-to-physical map.

    Squash recovery is walk-back style: every rename yields a
    :class:`RenameUndo` which the core keeps with the in-flight
    instruction; undoing youngest-first restores the map exactly.
    """

    def __init__(self, initial_map: Dict[Reg, int]):
        # Flat list indexed by logical register index — the map is
        # read/written once per source/destination operand on the
        # rename hot path, so it avoids dict hashing entirely.
        self._regs = tuple(sorted(initial_map, key=lambda r: r.index))
        size = self._regs[-1].index + 1 if self._regs else 0
        self._map: list = [0] * size
        for reg, preg in initial_map.items():
            self._map[reg.index] = preg
        self.reads = 0
        self.writes = 0

    def lookup(self, logical: Reg) -> int:
        """Read the current mapping (counts a RAT read port access)."""
        self.reads += 1
        return self._map[logical.index]

    def rename(self, logical: Reg, new_physical: int) -> RenameUndo:
        """Point ``logical`` at ``new_physical``; returns the undo record."""
        index = logical.index
        table = self._map
        old = table[index]
        table[index] = new_physical
        self.writes += 1
        return RenameUndo(logical=logical, old_physical=old,
                          new_physical=new_physical)

    def undo(self, record: RenameUndo) -> None:
        """Reverse one rename (squash path; youngest-first)."""
        index = record.logical.index
        current = self._map[index]
        if current != record.new_physical:
            raise RuntimeError(
                "undo out of order: expected "
                f"{record.new_physical}, found {current}"
            )
        self._map[index] = record.old_physical

    def snapshot(self) -> Dict[Reg, int]:
        """Copy of the current map (architectural checkpoint for tests)."""
        return {reg: self._map[reg.index] for reg in self._regs}

"""Register alias table with undo support for squashes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.registers import Reg


@dataclass(frozen=True)
class RenameUndo:
    """Record to reverse one rename on a pipeline squash."""

    logical: Reg
    old_physical: int
    new_physical: int


class RAT:
    """Speculative logical-to-physical map.

    Squash recovery is walk-back style: every rename yields a
    :class:`RenameUndo` which the core keeps with the in-flight
    instruction; undoing youngest-first restores the map exactly.
    """

    def __init__(self, initial_map: Dict[Reg, int]):
        self._map: Dict[Reg, int] = dict(initial_map)
        self.reads = 0
        self.writes = 0

    def lookup(self, logical: Reg) -> int:
        """Read the current mapping (counts a RAT read port access)."""
        self.reads += 1
        return self._map[logical]

    def rename(self, logical: Reg, new_physical: int) -> RenameUndo:
        """Point ``logical`` at ``new_physical``; returns the undo record."""
        old = self._map[logical]
        self._map[logical] = new_physical
        self.writes += 1
        return RenameUndo(logical=logical, old_physical=old,
                          new_physical=new_physical)

    def undo(self, record: RenameUndo) -> None:
        """Reverse one rename (squash path; youngest-first)."""
        current = self._map[record.logical]
        if current != record.new_physical:
            raise RuntimeError(
                "undo out of order: expected "
                f"{record.new_physical}, found {current}"
            )
        self._map[record.logical] = record.old_physical

    def snapshot(self) -> Dict[Reg, int]:
        """Copy of the current map (architectural checkpoint for tests)."""
        return dict(self._map)

"""PRF scoreboard: 1-bit-per-entry availability flags.

Conventional PRF-based cores already provide this structure to detect
initially-ready operands at dispatch (paper Section II-A, footnote 1).
FXA additionally reads it at the front-end register-read stage, and a
second time at dispatch (Section III-C) so instructions whose producers
completed in the OXU while they were transiting the IXU dispatch as ready.
"""

from __future__ import annotations

from repro.rename.prf import PhysicalRegisterFile


class Scoreboard:
    """Read-counting wrapper over a PRF's availability bits.

    Its capacity is 1 bit per PRF entry — 1/64 of the PRF's data (paper
    Section V-B) — so its access energy is negligible but still tracked.
    """

    def __init__(self, prf: PhysicalRegisterFile):
        self._prf = prf
        # The PRF's written-cycle list is mutated in place and never
        # rebound, so binding it once keeps is_ready to one list index.
        self._written = prf._written
        self.reads = 0

    @property
    def entries(self) -> int:
        """Flag count (equals the PRF entry count)."""
        return self._prf.entries

    def is_ready(self, reg_id: int, cycle: int) -> bool:
        """Check one operand's availability bit (counts a read)."""
        self.reads += 1
        return self._written[reg_id] <= cycle

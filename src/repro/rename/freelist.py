"""Free list of physical register identifiers."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator


class FreeList:
    """FIFO pool of free physical-register ids.

    Ids are handed out oldest-first and returned at commit/squash; the
    FIFO ordering mirrors hardware free lists and keeps allocation
    deterministic.
    """

    def __init__(self, ids: Iterable[int], capacity: int = 0):
        """``capacity`` bounds the pool; defaults to the initial size.

        Rename schemes with register aliasing (RENO move elimination)
        can legitimately grow the pool past its initial size — pregs
        holding architectural values get reclaimed without a paired
        allocation — so they pass the full PRF size instead.
        """
        self._free: Deque[int] = deque(ids)
        self._capacity = max(capacity, len(self._free))

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, reg_id: int) -> bool:
        return reg_id in self._free

    def __iter__(self) -> Iterator[int]:
        """Iterate free ids oldest-first (validation audits)."""
        return iter(self._free)

    @property
    def capacity(self) -> int:
        """Total ids managed (free + in flight)."""
        return self._capacity

    def can_allocate(self, count: int = 1) -> bool:
        """True when ``count`` ids are available."""
        return len(self._free) >= count

    def allocate(self) -> int:
        """Take one id; raises IndexError when empty."""
        return self._free.popleft()

    def release(self, reg_id: int) -> None:
        """Return an id to the pool."""
        if len(self._free) >= self._capacity:
            raise RuntimeError("free list overflow: double release?")
        self._free.append(reg_id)

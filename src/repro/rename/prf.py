"""Physical register file: readiness timestamps plus port accounting.

The timing model represents a physical register's *value* by the cycle it
becomes available (``ready_cycle``).  A register is ready at cycle ``c``
when ``ready_cycle <= c`` — this one comparison implements both the PRF
scoreboard check and operand wakeup.
"""

from __future__ import annotations

from typing import List

#: Ready-from-the-start marker for architectural values.
ALWAYS_READY = 0
#: Not-yet-written marker.
NEVER = 1 << 60


class PhysicalRegisterFile:
    """One class's physical register file (Table I: 128 INT / 96 FP).

    Tracks per-entry readiness cycles and counts read/write port events
    for the energy model.  Port *sharing* between the IXU and OXU is a
    structural property handled by the energy/area model; the timing
    model does not throttle PRF bandwidth (the paper argues the shared
    ports do not change latency, Section III-B).
    """

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("PRF needs at least one entry")
        self.entries = entries
        # Two timestamps per entry: when the value is on a bypass wire
        # (wakeup/issue readiness) and when it is physically written to
        # the PRF (front-end scoreboard visibility).  An IXU-executed
        # instruction's result is bypassable one cycle after execution
        # but reaches the PRF only after it exits the IXU (paper
        # Section II-B), so the two differ by several cycles.
        # ``ready_cycles`` is public: the issue loop indexes it directly
        # (one list access per source operand per select attempt).  The
        # list is mutated in place and never rebound.
        self.ready_cycles: List[int] = [ALWAYS_READY] * entries
        self._written: List[int] = [ALWAYS_READY] * entries
        self.reads = 0
        self.writes = 0

    def mark_pending(self, reg_id: int) -> None:
        """A new producer was renamed onto ``reg_id``; value not ready."""
        self.ready_cycles[reg_id] = NEVER
        self._written[reg_id] = NEVER

    def mark_ready(self, reg_id: int, cycle: int) -> None:
        """The value is bypassable from ``cycle``; counts the PRF write."""
        self.ready_cycles[reg_id] = cycle
        self.writes += 1

    def mark_written(self, reg_id: int, cycle: int) -> None:
        """The value is readable *from the PRF* from ``cycle``."""
        self._written[reg_id] = cycle

    def ready_cycle(self, reg_id: int) -> int:
        """Cycle at which the value is bypassable (wakeup view)."""
        return self.ready_cycles[reg_id]

    def is_ready(self, reg_id: int, cycle: int) -> bool:
        """Scoreboard view: is the value *in the PRF* at ``cycle``?"""
        return self._written[reg_id] <= cycle

    def read(self, reg_id: int) -> int:
        """Read a value (counts a PRF read); returns its written cycle."""
        self.reads += 1
        return self._written[reg_id]

    def reset_entry(self, reg_id: int) -> None:
        """Reclaim an entry on squash: it holds no pending value."""
        self.ready_cycles[reg_id] = ALWAYS_READY
        self._written[reg_id] = ALWAYS_READY

"""Renamer: ties the RATs, free lists and PRFs into one rename port.

The cores call :meth:`Renamer.rename` once per instruction in program
order; squashes undo youngest-first via the returned records, and commit
releases the previous mapping of each destination.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.instruction import DynInst
from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    Reg,
    RegClass,
    fp_reg,
    int_reg,
)
from repro.rename.freelist import FreeList
from repro.rename.prf import NEVER, PhysicalRegisterFile
from repro.rename.rat import RAT, RenameUndo
from repro.rename.scoreboard import Scoreboard


class RenamedOperands:
    """Physical operands of one renamed instruction.

    ``srcs`` pairs each source with its register class; ``dest`` is the
    freshly-allocated physical destination (or None); ``undo`` reverses
    the RAT update on a squash; ``old_dest`` is released at commit.
    ``eliminated`` marks a RENO-eliminated move: ``dest`` then *aliases*
    the source's physical register instead of naming a fresh one.

    A plain slotted record (one is built per renamed instruction, on
    the simulator's hottest path).
    """

    __slots__ = ("srcs", "dest_cls", "dest", "old_dest", "undo",
                 "eliminated")

    def __init__(
        self,
        srcs: Tuple[Tuple[RegClass, int], ...],
        dest_cls: Optional[RegClass],
        dest: Optional[int],
        old_dest: Optional[int],
        undo: Optional[RenameUndo],
        eliminated: bool = False,
    ):
        self.srcs = srcs
        self.dest_cls = dest_cls
        self.dest = dest
        self.old_dest = old_dest
        self.undo = undo
        self.eliminated = eliminated


class Renamer:
    """Physical-register renaming for both register classes.

    Args:
        int_prf_entries: INT PRF capacity (Table I: 128).
        fp_prf_entries: FP PRF capacity (Table I: 96).
    """

    def __init__(self, int_prf_entries: int = 128,
                 fp_prf_entries: int = 96):
        if int_prf_entries <= NUM_INT_REGS:
            raise ValueError("INT PRF must exceed the logical registers")
        if fp_prf_entries <= NUM_FP_REGS:
            raise ValueError("FP PRF must exceed the logical registers")
        self.prf = {
            RegClass.INT: PhysicalRegisterFile(int_prf_entries),
            RegClass.FP: PhysicalRegisterFile(fp_prf_entries),
        }
        self.scoreboard = {
            cls: Scoreboard(prf) for cls, prf in self.prf.items()
        }
        # Architectural registers start mapped to the first N pregs.
        int_map: Dict[Reg, int] = {
            int_reg(i): i for i in range(NUM_INT_REGS)
        }
        fp_map: Dict[Reg, int] = {
            fp_reg(i): i for i in range(NUM_FP_REGS)
        }
        self.rat = {
            RegClass.INT: RAT(int_map),
            RegClass.FP: RAT(fp_map),
        }
        self.free = {
            RegClass.INT: FreeList(
                range(NUM_INT_REGS, int_prf_entries),
                capacity=int_prf_entries,
            ),
            RegClass.FP: FreeList(
                range(NUM_FP_REGS, fp_prf_entries),
                capacity=fp_prf_entries,
            ),
        }
        # Reference counts for RENO move elimination: an eliminated move
        # aliases its source's physical register, which must stay
        # allocated until every alias has been superseded and committed.
        # Architectural initial mappings start live (count 1).
        self._refcount = {
            RegClass.INT: [0] * int_prf_entries,
            RegClass.FP: [0] * fp_prf_entries,
        }
        for index in range(NUM_INT_REGS):
            self._refcount[RegClass.INT][index] = 1
        for index in range(NUM_FP_REGS):
            self._refcount[RegClass.FP][index] = 1
        self.moves_eliminated = 0

    def can_rename(self, inst: DynInst) -> bool:
        """True when a physical destination is available for ``inst``."""
        if inst.dest is None:
            return True
        return self.free[inst.dest.cls].can_allocate()

    def rename(self, inst: DynInst) -> RenamedOperands:
        """Rename ``inst``'s operands; caller must check can_rename."""
        rat = self.rat
        inst_srcs = inst.srcs
        if inst_srcs:
            src_list = []
            for src in inst_srcs:
                table = rat[src.cls]
                table.reads += 1
                src_list.append((src.cls, table._map[src.index]))
            srcs = tuple(src_list)
        else:
            srcs = ()
        dest = inst.dest
        if dest is None:
            return RenamedOperands(srcs, None, None, None, None)
        cls = dest.cls
        # Inlined FreeList.allocate / PRF.mark_pending / RAT.rename —
        # one rename per committed instruction makes this the hottest
        # allocation site in the simulator.
        new_preg = self.free[cls]._free.popleft()
        self._refcount[cls][new_preg] = 1
        prf = self.prf[cls]
        prf.ready_cycles[new_preg] = NEVER
        prf._written[new_preg] = NEVER
        table = rat[cls]
        index = dest.index
        tmap = table._map
        old_preg = tmap[index]
        tmap[index] = new_preg
        table.writes += 1
        undo = RenameUndo(dest, old_preg, new_preg)
        return RenamedOperands(srcs, cls, new_preg, old_preg, undo)

    def rename_move(self, inst: DynInst) -> RenamedOperands:
        """RENO move elimination (paper Section VII-C).

        The move's destination is pointed at its *source's* physical
        register — no new register, no execution.  The alias holds a
        reference on the shared register so it is not reclaimed while
        either name is live.
        """
        if inst.dest is None or len(inst.srcs) != 1:
            raise ValueError("rename_move requires a 1-source move")
        src = inst.srcs[0]
        cls = src.cls
        src_preg = self.rat[cls].lookup(src)
        self._refcount[cls][src_preg] += 1
        undo = self.rat[cls].rename(inst.dest, src_preg)
        self.moves_eliminated += 1
        return RenamedOperands(
            srcs=((cls, src_preg),), dest_cls=cls, dest=src_preg,
            old_dest=undo.old_physical, undo=undo, eliminated=True,
        )

    def _release(self, cls: RegClass, preg: int) -> None:
        """Drop one reference; reclaim the register at zero."""
        self._refcount[cls][preg] -= 1
        if self._refcount[cls][preg] < 0:
            raise RuntimeError(f"refcount underflow on {cls} p{preg}")
        if self._refcount[cls][preg] == 0:
            self.free[cls].release(preg)

    def commit(self, renamed: RenamedOperands) -> None:
        """Instruction committed: its previous mapping is dead."""
        if renamed.dest_cls is not None and renamed.old_dest is not None:
            self._release(renamed.dest_cls, renamed.old_dest)

    def squash(self, renamed: RenamedOperands) -> None:
        """Undo one rename (call youngest-first across the squash set)."""
        if renamed.dest_cls is None or renamed.undo is None:
            return
        cls = renamed.dest_cls
        self.rat[cls].undo(renamed.undo)
        if renamed.eliminated:
            # Drop the alias's reference on the shared register.
            self._release(cls, renamed.undo.new_physical)
            return
        self.prf[cls].reset_entry(renamed.undo.new_physical)
        self._release(cls, renamed.undo.new_physical)

    def free_regs(self, cls: RegClass) -> int:
        """Free physical registers of ``cls`` (occupancy stats)."""
        return len(self.free[cls])

    def refcounts(self, cls: RegClass) -> Tuple[int, ...]:
        """Per-preg alias reference counts of ``cls`` (validation)."""
        return tuple(self._refcount[cls])

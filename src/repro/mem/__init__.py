"""Memory hierarchy: set-associative caches, L2, and main memory.

Table I parameters: L1I 48 KB/12-way/2-cycle, L1D 32 KB/8-way/2-cycle,
L2 512 KB/8-way/12-cycle, 64 B lines everywhere, 200-cycle main memory.
The model is latency-oriented (no bandwidth or MSHR contention): an access
returns the cycles it takes and records per-level hit/miss events for the
energy model.
"""

from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import AccessResult, CacheHierarchy, HierarchyConfig

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyConfig",
]

"""Two-level cache hierarchy with a flat main memory behind it."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HierarchyConfig:
    """Latency/geometry parameters (Table I defaults).

    ``prefetch_degree`` enables a next-line prefetcher on the L1D: on a
    demand miss to line X, lines X+1..X+degree are installed.  Table I
    does not name a prefetcher, but without one every sequential stream
    pays a miss per line, which crushes the streaming benchmarks
    (libquantum, lbm, ...) in a way the paper's results exclude; a
    timely next-line prefetcher is the minimal stand-in.
    """

    l1i_kb: int = 48
    l1i_ways: int = 12
    l1d_kb: int = 32
    l1d_ways: int = 8
    l2_kb: int = 512
    l2_ways: int = 8
    line_bytes: int = 64
    l1_latency: int = 2
    l2_latency: int = 12
    mem_latency: int = 200
    prefetch_degree: int = 3


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of one hierarchy access."""

    latency: int
    l1_hit: bool
    l2_hit: bool

    @property
    def went_to_memory(self) -> bool:
        return not self.l1_hit and not self.l2_hit


class CacheHierarchy:
    """L1I + L1D backed by a shared L2 and flat main memory.

    The model is latency-only: accesses never queue against each other
    (port contention at the L1D is enforced by the core's memory-FU
    arbitration instead, matching how the paper counts shared-port
    conflicts between the IXU and OXU).
    """

    def __init__(self, config: HierarchyConfig = HierarchyConfig()):
        # Local import keeps cache.py importable on its own.
        from repro.mem.cache import Cache

        self.config = config
        self.l1i = Cache("L1I", config.l1i_kb, config.l1i_ways,
                         config.line_bytes)
        self.l1d = Cache("L1D", config.l1d_kb, config.l1d_ways,
                         config.line_bytes)
        self.l2 = Cache("L2", config.l2_kb, config.l2_ways,
                        config.line_bytes)
        self.mem_accesses = 0
        self.prefetches = 0
        # Completion cycle of the latest outstanding refill the core
        # reported (a one-entry MSHR view; the model is latency-only,
        # so the timestamp exists purely for fast-forward horizon
        # queries and never affects access timing).
        self._refill_ready = 0
        # Tagged prefetching: lines brought in by the prefetcher are
        # remembered; a demand hit on one re-arms the prefetcher so a
        # steady stream stays ahead of demand (miss-free steady state,
        # like a real stride prefetcher on libquantum/lbm-class code).
        self._prefetched_lines = set()
        # AccessResult is frozen and latencies are fixed per hierarchy,
        # so the three possible outcomes are shared singletons — one
        # allocation per *hierarchy* instead of one per access.
        self._l1_hit_result = AccessResult(config.l1_latency, True, False)
        self._l2_hit_result = AccessResult(
            config.l1_latency + config.l2_latency, False, True)
        self._miss_result = AccessResult(
            config.l1_latency + config.l2_latency + config.mem_latency,
            False, False)

    def _access(self, l1, addr: int, is_write: bool) -> AccessResult:
        l1_hit, l1_victim_dirty = l1.access(addr, is_write)
        if l1_victim_dirty:
            # Charge the victim write-back as an L2 write event.  The
            # victim's address is not tracked, so only the energy/stat
            # event is recorded — L2 contents are unaffected.
            self.l2.stats.writes += 1
        if l1_hit:
            return self._l1_hit_result
        l2_hit, l2_victim_dirty = self.l2.access(addr, False)
        if l2_victim_dirty:
            self.mem_accesses += 1
        if l2_hit:
            return self._l2_hit_result
        self.mem_accesses += 1
        return self._miss_result

    def note_refill(self, ready_cycle: int) -> None:
        """The core stalled on a miss whose line lands at ``ready_cycle``."""
        if ready_cycle > self._refill_ready:
            self._refill_ready = ready_cycle

    def fill_horizon(self, cycle: int) -> "int | None":
        """Completion cycle of the outstanding refill, if still pending.

        The fast-forward kernel folds this into its event horizon: a
        core sleeping on a DRAM/L2 fill may jump directly to the cycle
        the line arrives.
        """
        ready = self._refill_ready
        return ready if ready >= cycle else None

    def fetch(self, pc: int) -> AccessResult:
        """Instruction fetch of the line containing ``pc``."""
        result = self._access(self.l1i, pc, False)
        if not result.l1_hit and self.config.prefetch_degree:
            # Code is overwhelmingly sequential: next-line prefetch.
            self.prefetches += 1
            self.l1i.fill(pc + self.config.line_bytes)
            self.l2.fill(pc + self.config.line_bytes)
        return result

    def load(self, addr: int) -> AccessResult:
        """Data load."""
        result = self._access(self.l1d, addr, False)
        self._maybe_prefetch(addr, result.l1_hit)
        return result

    def store(self, addr: int) -> AccessResult:
        """Data store (performed at commit; write-allocate)."""
        result = self._access(self.l1d, addr, True)
        self._maybe_prefetch(addr, result.l1_hit)
        return result

    def _maybe_prefetch(self, addr: int, l1_hit: bool) -> None:
        """Prefetch on a demand miss or on a hit to a prefetched line."""
        if not self.config.prefetch_degree:
            return
        line = addr // self.config.line_bytes
        if l1_hit:
            if line not in self._prefetched_lines:
                return
            self._prefetched_lines.discard(line)
        self._prefetch(addr)

    def _prefetch(self, addr: int) -> None:
        """Next-line prefetch into the L1D.

        Prefetches are modelled as timely and free of port contention;
        they are counted (for the energy model) but charged no latency.
        """
        line = addr // self.config.line_bytes
        prefetched = self._prefetched_lines
        if len(prefetched) > 4096:
            prefetched.clear()
        l1d = self.l1d
        l2 = self.l2
        installed = 0
        for step in range(1, self.config.prefetch_degree + 1):
            target_line = line + step
            prefetched.add(target_line)
            if l1d.probe_tag(target_line):
                continue
            installed += 1
            l1d.fill_tag(target_line)
            l2.fill_tag(target_line)
        self.prefetches += installed

"""Single-level set-associative cache with LRU replacement.

Write policy is write-back/write-allocate; a victim's dirty bit is
surfaced so the hierarchy can charge the write-back traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass
class CacheStats:
    """Per-cache access counters (feeds the energy model)."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate


class Cache:
    """A set-associative, write-back, write-allocate cache.

    Args:
        name: Label for reporting ("L1D", ...).
        size_kb: Capacity in KiB.
        ways: Associativity.
        line_bytes: Line size (64 in the paper).
    """

    def __init__(self, name: str, size_kb: int, ways: int,
                 line_bytes: int = 64):
        size = size_kb * 1024
        if size % (ways * line_bytes):
            raise ValueError("size must divide evenly into ways*lines")
        self.name = name
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count must be a power of two")
        self.stats = CacheStats()
        self._set_mask = self.num_sets - 1
        # Each set: tag -> dirty flag.  Plain dicts preserve insertion
        # order (Python >= 3.7), so the first key is always the LRU
        # line; re-inserting a key moves it to MRU.  Plain-dict ops are
        # measurably cheaper than OrderedDict on this hot path.
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(self.num_sets)
        ]

    @property
    def size_bytes(self) -> int:
        """Total data capacity in bytes."""
        return self.num_sets * self.ways * self.line_bytes

    def _locate(self, addr: int) -> Tuple[Dict[int, bool], int]:
        line = addr // self.line_bytes
        return self._sets[line & self._set_mask], line

    def probe(self, addr: int) -> bool:
        """Non-destructive lookup; does not touch LRU state or stats."""
        entry_set, tag = self._locate(addr)
        return tag in entry_set

    def probe_tag(self, tag: int) -> bool:
        """``probe`` with the line number already extracted."""
        return tag in self._sets[tag & self._set_mask]

    def fill_tag(self, tag: int) -> None:
        """``fill`` with the line number already extracted."""
        entry_set = self._sets[tag & self._set_mask]
        dirty = entry_set.pop(tag, None)
        if dirty is not None:
            entry_set[tag] = dirty
            return
        if len(entry_set) >= self.ways:
            victim = next(iter(entry_set))
            if entry_set.pop(victim):
                self.stats.writebacks += 1
        entry_set[tag] = False

    def access(self, addr: int, is_write: bool) -> Tuple[bool, bool]:
        """Access the line containing ``addr``.

        Returns:
            (hit, victim_dirty): whether the access hit, and whether a
            dirty victim line was evicted on the fill.
        """
        tag = addr // self.line_bytes
        entry_set = self._sets[tag & self._set_mask]
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        dirty = entry_set.pop(tag, None)
        if dirty is not None:
            # Re-insert at MRU (end of the insertion order).
            entry_set[tag] = dirty or is_write
            return True, False
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        victim_dirty = False
        if len(entry_set) >= self.ways:
            victim = next(iter(entry_set))
            victim_dirty = entry_set.pop(victim)
            if victim_dirty:
                stats.writebacks += 1
        entry_set[tag] = is_write
        return False, victim_dirty

    def fill(self, addr: int) -> None:
        """Install a line without touching demand statistics (prefetch)."""
        self.fill_tag(addr // self.line_bytes)

    def invalidate_all(self) -> None:
        """Drop every line (used by tests)."""
        for entry_set in self._sets:
            entry_set.clear()

"""Top-down (TMA-style) issue-slot accounting and per-class energy
attribution.

The flat stall taxonomy in :mod:`repro.obs.stall` answers "why did this
zero-commit cycle happen"; this module answers the hierarchical
question the paper's argument actually turns on: of every *issue slot*
the machine offered (``width x cycles``), how many retired work — and
in which execution unit, IXU or OXU — and where exactly did the rest
go?  The tree follows Yasin's top-down method (TMA), adapted to the
four core families:

* ``retiring.ixu`` / ``retiring.oxu`` — slots that committed an
  instruction, split by whether it executed in the in-order IXU or the
  out-of-order OXU (the paper's Figures 6/8 split; always ``oxu`` on
  cores without an IXU, and issue==commit on the in-order core).
* ``bad_speculation.*`` — ``squash``: slots paying for instructions
  that were later squashed by a memory-ordering violation (charged as
  a debt against otherwise-empty slots); ``branch_recovery``: slots
  lost waiting on a mispredicted branch to resolve and refill.
* ``frontend_bound.*`` — ``icache_miss`` (L1I refill in flight),
  ``redirect`` (BTB-cold decode redirect bubbles), ``queue_empty``
  (the front end simply had nothing to deliver).
* ``backend_bound.core.*`` — window stalls: ``iq_full`` / ``rob_full``
  / ``lsq_full`` / ``prf_full`` rename backpressure, ``iq_not_ready``
  (operands pending), ``fu_port`` (operands ready, issue ports or FUs
  refused), ``other`` (writeback/commit timing and the in-order drain
  tail).
* ``backend_bound.memory.*`` — the ROB-head load's miss level:
  ``l1d_bound`` / ``l2_bound`` / ``dram_bound``, classified by the
  load's *frozen* total latency (complete - issue cycle), never by the
  remaining wait, so the attribution is identical whether the cycles
  were ticked serially or bulk-replayed by the fast-forward kernel.

**Exactness invariant** (mirroring the stall collector's stall-sum
guarantee, pinned by ``tests/test_obs_topdown.py``): the leaf counts
sum to exactly ``width x cycles`` for the full run, where ``width`` is
the commit bandwidth (issue width on the in-order core).

The second half of the module joins the tree to the energy model:
:func:`attribute_energy_by_class` distributes a run's (or one timeline
interval's) :class:`~repro.energy.model.EnergyBreakdown` over
instruction classes (ALU / branch / load / store / FP, split IXU vs
OXU) using component-specific weight profiles — IXU energy lands on
``ixu.*`` rows, IQ and OXU-FU energy on ``oxu.*`` rows (IXU-executed
instructions never enter the issue queue), LSQ/L1D energy on the
memory rows — and the class sums equal the breakdown total (to float
round-off; also pinned by the tests).

Like every collector here, it is **off by default and free when off**:
attach one through :class:`~repro.obs.Observability` and the cores pay
nothing new when it is absent::

    from repro.obs import Observability, TopDownCollector

    topdown = TopDownCollector()
    obs = Observability(metrics=False, stalls=False, topdown=topdown)
    build_core("HALF+FX", obs=obs).run(trace)
    print(topdown.to_dict()["slots"])     # leaf -> slot count
    print(topdown.energy_by_class)        # class -> pJ
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.energy.area import Component

#: Every leaf of the slot tree, in display order.  Dotted paths encode
#: the hierarchy; :func:`rollup_slots` sums every prefix.
SLOT_LEAVES = (
    "retiring.ixu",
    "retiring.oxu",
    "bad_speculation.squash",
    "bad_speculation.branch_recovery",
    "frontend_bound.icache_miss",
    "frontend_bound.redirect",
    "frontend_bound.queue_empty",
    "backend_bound.core.iq_not_ready",
    "backend_bound.core.fu_port",
    "backend_bound.core.iq_full",
    "backend_bound.core.rob_full",
    "backend_bound.core.lsq_full",
    "backend_bound.core.prf_full",
    "backend_bound.core.other",
    "backend_bound.memory.l1d_bound",
    "backend_bound.memory.l2_bound",
    "backend_bound.memory.dram_bound",
)

#: Top-level categories (every leaf's first path segment).
SLOT_LEVELS = ("retiring", "bad_speculation", "frontend_bound",
               "backend_bound")

#: Instruction classes energy is attributed to.  ``unattributed``
#: absorbs component energy whose weight profile is all-zero (e.g.
#: LSQ leakage in a run that commits no memory operation), keeping the
#: class sum equal to the breakdown total in every degenerate case.
ENERGY_CLASSES = (
    "ixu.alu", "ixu.branch", "ixu.load", "ixu.store",
    "oxu.alu", "oxu.branch", "oxu.load", "oxu.store", "oxu.fp",
    "unattributed",
)

_FALLBACK_LEAF = "backend_bound.core.other"


def rollup_slots(slots: Dict[str, int]) -> Dict[str, int]:
    """Sum every dotted prefix of the leaf counts (``backend_bound``,
    ``backend_bound.core``, ...) for hierarchical display."""
    tree: Dict[str, int] = {}
    for leaf, count in slots.items():
        parts = leaf.split(".")
        for depth in range(1, len(parts) + 1):
            prefix = ".".join(parts[:depth])
            tree[prefix] = tree.get(prefix, 0) + count
    return tree


class TopDownCollector:
    """Attributes every issue slot of one core run to the slot tree.

    The per-cycle hook charges ``width`` slots: first to retiring
    (split IXU/OXU via the commit-side ``stats.ixu_executed`` delta),
    then to the outstanding squash debt (``stats.squashed`` delta),
    and the remaining empty slots to the leaf the core's
    ``_topdown_leaf`` refines from its flat stall cause.  The bulk
    hook (fast-forwarded gaps) charges ``width x cycles`` slots the
    same way in O(1) — the gap is zero-commit with frozen state, so no
    new debt accrues and the cause leaf is constant, which makes the
    bulk charge provably equal to the per-cycle sum.

    ``finalize`` charges the in-order drain tail (reported cycles past
    the last tick) to ``backend_bound.core.other`` so the tree always
    sums to ``width x stats.cycles``, prices the full run through
    :class:`~repro.energy.EnergyModel`, and attributes it by class.
    Squash debt that never found an empty slot is reported, not
    silently re-charged (``unpaid_squash_debt``).
    """

    def __init__(self) -> None:
        self.slots: Dict[str, int] = dict.fromkeys(SLOT_LEAVES, 0)
        self.width = 0
        self.cycles = 0
        self.model = ""
        self.benchmark = ""
        self.ff_skipped = 0
        self.energy_by_class: Dict[str, float] = {}
        self.energy_total = 0.0
        self._attached = False
        self._last_ixu = 0
        self._last_squashed = 0
        self._squash_debt = 0

    # ------------------------------------------------------------------

    def attach(self, core) -> None:
        """Bind to ``core`` (called by ``Observability.attach``)."""
        if self._attached:
            raise RuntimeError(
                "a TopDownCollector observes exactly one core run; "
                "build a fresh one per simulation"
            )
        self._attached = True
        self.model = core.config.name
        self.width = core._topdown_width()

    def on_cycle(self, core, committed: int,
                 cause: Optional[str]) -> None:
        """Per-cycle hook: charge this cycle's ``width`` slots."""
        self.cycles += 1
        slots = self.slots
        stats = core.stats
        squashed = stats.squashed
        if squashed != self._last_squashed:
            self._squash_debt += squashed - self._last_squashed
            self._last_squashed = squashed
        empty = self.width
        if committed:
            ixu_now = stats.ixu_executed
            ixu = ixu_now - self._last_ixu
            self._last_ixu = ixu_now
            slots["retiring.ixu"] += ixu
            slots["retiring.oxu"] += committed - ixu
            empty -= committed
            if not empty:
                return
        debt = self._squash_debt
        if debt:
            pay = debt if debt < empty else empty
            slots["bad_speculation.squash"] += pay
            self._squash_debt = debt - pay
            empty -= pay
            if not empty:
                return
        if cause is None:
            # Partial-commit cycle: the shared hook only computes the
            # stall cause on zero-commit cycles, so refine it here
            # (read-only, post-commit state).
            cause = core._stall_cause()
        leaf = core._topdown_leaf(cause)
        if leaf not in slots:
            leaf = _FALLBACK_LEAF
        slots[leaf] += empty

    def on_cycles(self, core, cause: Optional[str],
                  cycles: int) -> None:
        """Bulk hook for ``cycles`` fast-forwarded idle ticks.

        Zero commits and frozen state across the gap: no retiring
        slots, no new squash debt, and one constant cause leaf — the
        serial per-cycle charges collapse into two bulk adds.
        """
        self.cycles += cycles
        empty = self.width * cycles
        debt = self._squash_debt
        if debt:
            pay = debt if debt < empty else empty
            self.slots["bad_speculation.squash"] += pay
            self._squash_debt = debt - pay
            empty -= pay
            if not empty:
                return
        if cause is None:
            cause = core._stall_cause()
        leaf = core._topdown_leaf(cause)
        if leaf not in self.slots:
            leaf = _FALLBACK_LEAF
        self.slots[leaf] += empty

    def finalize(self, core) -> None:
        """Drain-tail charge, fast-forward counter, energy join."""
        from repro.energy import EnergyModel

        stats = core.stats
        drain = stats.cycles - self.cycles
        if drain > 0:
            # The in-order core's reported cycle count extends past its
            # last tick to drain in-flight completions; those cycles
            # issued nothing (mirrors the stall collector's tail).
            self.slots[_FALLBACK_LEAF] += drain * self.width
            self.cycles = stats.cycles
        self.ff_skipped = getattr(core, "_ff_skipped", 0)
        breakdown = EnergyModel(core.config).evaluate(stats)
        self.energy_total = breakdown.total
        self.energy_by_class = attribute_energy_by_class(
            breakdown, ClassMix.from_stats(stats))

    # ------------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.width * self.cycles

    def to_dict(self) -> Dict:
        """JSON-safe payload (what ``--metrics-json`` and the manifest
        aggregates embed); ``slots`` always carries every leaf."""
        return {
            "model": self.model,
            "benchmark": self.benchmark,
            "width": self.width,
            "cycles": self.cycles,
            "total_slots": self.total_slots,
            "slots": dict(self.slots),
            "levels": {
                level: count
                for level, count in sorted(
                    rollup_slots(self.slots).items())
                if level in SLOT_LEVELS
            },
            "ff_skipped_cycles": self.ff_skipped,
            "unpaid_squash_debt": self._squash_debt,
            "energy_by_class": dict(self.energy_by_class),
            "energy_total": self.energy_total,
        }


# ----------------------------------------------------------------------
# Per-instruction-class energy attribution
# ----------------------------------------------------------------------


@dataclass
class ClassMix:
    """Committed-instruction class counts for one run or interval."""

    committed: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    fp: int = 0
    ixu_executed: int = 0
    ixu_mem_ops: int = 0
    ixu_branches: int = 0

    @classmethod
    def from_stats(cls, stats) -> "ClassMix":
        return cls(
            committed=stats.committed,
            loads=stats.committed_loads,
            stores=stats.committed_stores,
            branches=stats.committed_branches,
            fp=stats.committed_fp,
            ixu_executed=stats.ixu_executed,
            ixu_mem_ops=stats.ixu_mem_ops,
            ixu_branches=stats.ixu_branches,
        )

    def rows(self) -> Dict[str, float]:
        """Per-class instruction weights (floats: the IXU's memory ops
        are split load/store proportionally to the overall mix)."""
        mem = self.loads + self.stores
        ixu_loads = (self.ixu_mem_ops * self.loads / mem) if mem else 0.0
        ixu_stores = self.ixu_mem_ops - ixu_loads
        ixu_alu = max(
            0.0, self.ixu_executed - self.ixu_mem_ops - self.ixu_branches)
        alu = max(
            0.0, self.committed - mem - self.branches - self.fp)
        return {
            "ixu.alu": ixu_alu,
            "ixu.branch": float(self.ixu_branches),
            "ixu.load": ixu_loads,
            "ixu.store": ixu_stores,
            "oxu.alu": max(0.0, alu - ixu_alu),
            "oxu.branch": max(0.0, self.branches - self.ixu_branches),
            "oxu.load": max(0.0, self.loads - ixu_loads),
            "oxu.store": max(0.0, self.stores - ixu_stores),
            "oxu.fp": float(self.fp),
        }


def _distribute(total: float, weights: Dict[str, float],
                out: Dict[str, float]) -> None:
    if not total:
        return
    wsum = sum(weights.values())
    if wsum <= 0:
        out["unattributed"] += total
        return
    for key, weight in weights.items():
        if weight:
            out[key] += total * (weight / wsum)


def attribute_energy_by_class(breakdown, mix: ClassMix
                              ) -> Dict[str, float]:
    """Distribute an :class:`~repro.energy.model.EnergyBreakdown` over
    :data:`ENERGY_CLASSES`.

    Component weight profiles encode where each structure's energy
    physically goes:

    * ``IXU`` — the ``ixu.*`` rows (it executes nothing else);
    * ``IQ`` and ``FUs`` — the ``oxu.*`` rows (IXU-executed
      instructions skip the issue queue and the OXU FUs; wrong-path
      and inter-cluster energy is OXU work too);
    * ``FPU`` — ``oxu.fp`` (the IXU has no FP units; its leakage stays
      identifiable under the FP class even in integer-only runs);
    * ``LSQ`` and ``L1D`` — the load/store rows, IXU/OXU split by the
      IXU's share of committed memory ops;
    * everything else (PRF/RAT/decoder/fetch/L1I/L2 and all leakage) —
      the full commit mix.

    Each component's dynamic+static total is split proportionally, so
    the class sums equal ``breakdown.total`` to float round-off (a
    final residual pass pins the last few ulps on the largest class).
    """
    rows = mix.rows()
    out = {key: 0.0 for key in ENERGY_CLASSES}
    ixu_rows = {k: v for k, v in rows.items() if k.startswith("ixu.")}
    oxu_rows = {k: v for k, v in rows.items() if k.startswith("oxu.")}
    mem_rows = {k: rows[k] for k in ("ixu.load", "ixu.store",
                                    "oxu.load", "oxu.store")}
    profiles = {
        Component.IXU: ixu_rows,
        Component.IQ: oxu_rows,
        Component.FUS: oxu_rows,
        Component.FPU: {"oxu.fp": 1.0},
        Component.LSQ: mem_rows,
        Component.L1D: mem_rows,
    }
    for component in Component:
        _distribute(breakdown.component_total(component),
                    profiles.get(component, rows), out)
    residual = breakdown.total - sum(out.values())
    if residual:
        largest = max(out, key=lambda key: out[key])
        out[largest] += residual
    return out


# ----------------------------------------------------------------------
# Aggregation and the terminal report
# ----------------------------------------------------------------------


def merge_topdown_payloads(payloads: Iterable[Dict]) -> Dict:
    """Merge per-benchmark :meth:`TopDownCollector.to_dict` payloads
    of one model into a single suite-level payload (slot counts,
    cycles and energy simply add; the width must agree)."""
    merged: Dict = {
        "model": "", "benchmark": "suite", "width": 0, "cycles": 0,
        "total_slots": 0, "slots": dict.fromkeys(SLOT_LEAVES, 0),
        "ff_skipped_cycles": 0, "unpaid_squash_debt": 0,
        "energy_by_class": {key: 0.0 for key in ENERGY_CLASSES},
        "energy_total": 0.0,
    }
    for payload in payloads:
        merged["model"] = payload.get("model", merged["model"])
        merged["width"] = max(merged["width"],
                              payload.get("width", 0))
        merged["cycles"] += payload.get("cycles", 0)
        merged["total_slots"] += payload.get("total_slots", 0)
        merged["ff_skipped_cycles"] += payload.get(
            "ff_skipped_cycles", 0)
        merged["unpaid_squash_debt"] += payload.get(
            "unpaid_squash_debt", 0)
        merged["energy_total"] += payload.get("energy_total", 0.0)
        for leaf, count in payload.get("slots", {}).items():
            merged["slots"][leaf] = (
                merged["slots"].get(leaf, 0) + count)
        for key, energy in payload.get("energy_by_class", {}).items():
            merged["energy_by_class"][key] = (
                merged["energy_by_class"].get(key, 0.0) + energy)
    merged["levels"] = {
        level: count
        for level, count in sorted(rollup_slots(merged["slots"]).items())
        if level in SLOT_LEVELS
    }
    return merged


def _display_rows() -> List[str]:
    """Hierarchy rows in display order: each unique prefix once, then
    its leaves, preserving :data:`SLOT_LEAVES` order."""
    rows: List[str] = []
    for leaf in SLOT_LEAVES:
        parts = leaf.split(".")
        for depth in range(1, len(parts) + 1):
            prefix = ".".join(parts[:depth])
            if prefix not in rows:
                rows.append(prefix)
    return rows


def format_topdown_report(payloads: Dict[str, Dict],
                          title: str = "Top-down slot accounting"
                          ) -> str:
    """Render merged per-model payloads as an aligned hierarchy table
    (share of ``width x cycles`` per node, one column per model)."""
    models = sorted(payloads)
    rows = _display_rows()
    trees = {model: rollup_slots(payloads[model].get("slots", {}))
             for model in models}
    totals = {model: payloads[model].get("total_slots", 0) or 1
              for model in models}
    label_width = max(len("  " * row.count(".") + row.rsplit(".", 1)[-1])
                      for row in rows) + 2
    lines = [title, "=" * len(title)]
    header = " " * label_width + "".join(
        f"{model:>12s}" for model in models)
    lines.append(header)
    for row in rows:
        depth = row.count(".")
        label = "  " * depth + row.rsplit(".", 1)[-1]
        cells = "".join(
            f"{trees[model].get(row, 0) / totals[model]:>11.1%} "
            for model in models)
        lines.append(f"{label:<{label_width}s}{cells}")
    lines.append("")
    lines.append("slots = commit width x cycles; IXU/OXU split per the "
                 "paper's Figure 6 coverage")
    return "\n".join(lines)


def format_energy_by_class(payloads: Dict[str, Dict],
                           title: str = "Energy by instruction class"
                           ) -> str:
    """Aligned per-class energy shares, one column per model."""
    models = sorted(payloads)
    lines = [title, "=" * len(title)]
    lines.append(" " * 16 + "".join(f"{model:>12s}" for model in models))
    totals = {model: payloads[model].get("energy_total", 0.0) or 1.0
              for model in models}
    for key in ENERGY_CLASSES:
        cells = "".join(
            f"{payloads[model].get('energy_by_class', {}).get(key, 0.0) / totals[model]:>11.1%} "
            for model in models)
        lines.append(f"{key:<16s}{cells}")
    return "\n".join(lines)


__all__ = [
    "SLOT_LEAVES",
    "SLOT_LEVELS",
    "ENERGY_CLASSES",
    "TopDownCollector",
    "ClassMix",
    "attribute_energy_by_class",
    "rollup_slots",
    "merge_topdown_payloads",
    "format_topdown_report",
    "format_energy_by_class",
]

"""Kanata pipeline-trace writer (Konata-compatible).

Emits the tab-separated Onikiri2-Kanata log format that the Konata
visualiser (https://github.com/shioyadan/konata — by the paper's first
author) renders as a per-instruction pipeline diagram::

    Kanata  0004
    C=      <start cycle>
    I       <file id>  <sim id>  <thread>
    L       <file id>  0         <label text>
    S       <file id>  0         <stage>
    E       <file id>  0         <stage>
    R       <file id>  <retire>  <0=commit|1=flush>
    C       <cycles advanced>

The simulator retires (or flushes) instructions with all of their stage
timestamps already stamped on the
:class:`~repro.core.inflight.InFlight` record, so the writer buffers
stage events per instruction and serialises them in global cycle order
on :meth:`close`.  A ``window`` bounds how many instructions are
recorded, keeping traces of long runs small enough to load.

Stage names: ``F`` fetch, ``Rn`` rename, ``X`` IXU execution (FXA),
``Iq`` issue-queue residency, ``Ex`` OXU execute, ``Cm`` completed and
waiting to retire.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

KANATA_HEADER = "Kanata\t0004"


class KanataWriter:
    """Buffering writer for one simulation's pipeline trace.

    Args:
        path: Output file (overwritten on :meth:`close`).
        window: Record at most this many instructions (None = all).
    """

    def __init__(self, path: str, window: Optional[int] = None):
        if window is not None and window <= 0:
            raise ValueError("pipeview window must be positive")
        self.path = path
        self.window = window
        self.recorded = 0
        self._next_id = 0
        self._order = 0
        #: (cycle, emit order, line) triples, sorted on close.
        self._events: List[Tuple[int, int, str]] = []

    # ------------------------------------------------------------------

    @property
    def full(self) -> bool:
        """Has the instruction window been exhausted?"""
        return self.window is not None and self.recorded >= self.window

    def record(self, entry, end_cycle: int, flushed: bool) -> None:
        """Record one retired (or flushed) in-flight instruction.

        Every stage timestamp is read off ``entry``; unset stages
        (``< 0``) are skipped, so partially-advanced flushed
        instructions serialise cleanly.
        """
        if self.full:
            return
        stages = self._stage_starts(entry)
        if not stages:
            return
        self.recorded += 1
        file_id = self._next_id
        self._next_id += 1
        inst = entry.inst
        first_cycle = stages[0][1]
        self._emit(first_cycle, f"I\t{file_id}\t{inst.seq}\t0")
        self._emit(first_cycle,
                   f"L\t{file_id}\t0\t{inst.pc:#x}: {inst.op.name}")
        self._emit(first_cycle,
                   f"L\t{file_id}\t1\tseq={inst.seq} {self._detail(entry)}")
        previous = None
        for name, start in stages:
            if previous is not None:
                self._emit(start, f"E\t{file_id}\t0\t{previous}")
            self._emit(start, f"S\t{file_id}\t0\t{name}")
            previous = name
        end = max(end_cycle, stages[-1][1])
        self._emit(end, f"E\t{file_id}\t0\t{previous}")
        self._emit(end,
                   f"R\t{file_id}\t{inst.seq}\t{1 if flushed else 0}")

    def close(self) -> None:
        """Sort the buffered events into cycle order and write the file.

        A ``.gz`` path is written gzip-compressed (Konata loads both
        forms; long-window traces shrink ~10x).
        """
        lines = [KANATA_HEADER]
        current: Optional[int] = None
        for cycle, _, text in sorted(self._events):
            if current is None:
                lines.append(f"C=\t{cycle}")
            elif cycle > current:
                lines.append(f"C\t{cycle - current}")
            current = cycle
            lines.append(text)
        text = "\n".join(lines) + "\n"
        if self.path.endswith(".gz"):
            import gzip

            # mtime=0 keeps repeated runs byte-identical.
            with gzip.GzipFile(self.path, "wb", mtime=0) as stream:
                stream.write(text.encode())
        else:
            with open(self.path, "w") as stream:
                stream.write(text)

    # ------------------------------------------------------------------

    def _emit(self, cycle: int, text: str) -> None:
        self._events.append((cycle, self._order, text))
        self._order += 1

    @staticmethod
    def _detail(entry) -> str:
        parts = []
        if getattr(entry, "executed_in_ixu", False):
            parts.append(
                f"IXU(stage {entry.ixu_exec_stage},"
                f" cat {entry.ixu_category or '?'})"
            )
        if entry.mispredicted:
            parts.append("mispredicted")
        if entry.squashed:
            parts.append("squashed")
        return " ".join(parts) if parts else "-"

    @staticmethod
    def _stage_starts(entry) -> List[Tuple[str, int]]:
        """Ordered (stage name, start cycle) list from entry timestamps.

        Stage starts are clamped monotonically non-decreasing so a
        coarse timestamp (e.g. a scheduled cycle) can never produce a
        negative-length stage.
        """
        raw: List[Tuple[str, int]] = [("F", entry.fetch_cycle)]
        if entry.rename_cycle >= 0:
            raw.append(("Rn", entry.rename_cycle))
        if getattr(entry, "executed_in_ixu", False):
            raw.append(("X", entry.ixu_exec_cycle))
        if entry.iq_cycle >= 0:
            raw.append(("Iq", entry.iq_cycle))
        if entry.issue_cycle >= 0 and not entry.executed_in_ixu:
            raw.append(("Ex", entry.issue_cycle))
        if entry.complete_cycle >= 0:
            raw.append(("Cm", entry.complete_cycle))
        stages: List[Tuple[str, int]] = []
        floor = None
        for name, start in raw:
            if start < 0:
                continue
            if floor is not None and start < floor:
                start = floor
            stages.append((name, start))
            floor = start
        return stages

"""Chrome-trace-event / Perfetto JSON export of timeline telemetry.

Writes the JSON object form of the Trace Event Format (the schema
``chrome://tracing`` and https://ui.perfetto.dev both load): counter
events (``"ph": "C"``) render each core's interval telemetry as stacked
counter tracks, complete events (``"ph": "X"``) render host-side
wall-clock spans (per pipeline stage of the CLI run, per sweep job),
and metadata events (``"ph": "M"``) name the process rows.

Two clock domains share the one timestamp axis (microseconds):

* **simulated cores** (one process row per core): ``ts`` is the
  interval's starting *cycle*, so a cycle reads as a microsecond and
  the tracks line up across cores on simulated time;
* **the host** (process row 1): ``ts`` is wall-clock microseconds since
  the run started, so sweep-job spans show real scheduling/overlap.

Usage (what the CLI ``--timeline OUT.json`` does)::

    writer = TraceEventWriter()
    writer.add_timeline(collector)           # one call per core
    writer.add_span("sweep", ts_us, dur_us)  # host wall-clock spans
    writer.write("timeline.json")
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.stall import STALL_CAUSES
from repro.obs.timeline import TimelineCollector

#: Process id reserved for host wall-clock spans; simulated cores get
#: pids counting up from HOST_PID + 1 in ``add_timeline`` order.
HOST_PID = 1


class TraceEventWriter:
    """Accumulates trace events; :meth:`write` emits Perfetto JSON."""

    def __init__(self):
        self.events: List[Dict] = []
        self._next_core_pid = HOST_PID + 1
        self._named_pids: Dict[int, str] = {}
        self._name_process(HOST_PID, "host (wall clock)")

    # -- low-level emitters --------------------------------------------

    def _name_process(self, pid: int, name: str) -> None:
        if self._named_pids.get(pid) == name:
            return
        self._named_pids[pid] = name
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    def process_row(self, label: str) -> int:
        """Allocate (or reuse) a named process row and return its pid.

        Distributed-trace export maps each ``host:pid`` participant to
        its own Perfetto process row; repeated calls with the same
        label return the same pid so spans group correctly.
        """
        for pid, name in self._named_pids.items():
            if name == label:
                return pid
        pid = self._next_core_pid
        self._next_core_pid += 1
        self._name_process(pid, label)
        return pid

    def add_counter(self, name: str, ts: float, values: Dict[str, float],
                    pid: int) -> None:
        """One counter sample; multi-key ``values`` stack in one track."""
        self.events.append({
            "name": name, "ph": "C", "ts": ts, "pid": pid,
            "args": values,
        })

    def add_span(self, name: str, ts: float, dur: float,
                 pid: int = HOST_PID, tid: int = 0,
                 args: Optional[Dict] = None) -> None:
        """A complete span (``ts``/``dur`` in microseconds)."""
        event = {
            "name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- core timelines ------------------------------------------------

    def add_timeline(self, collector: TimelineCollector) -> int:
        """Render one core's samples as counter tracks; returns the pid
        allocated for the core's process row."""
        pid = self._next_core_pid
        self._next_core_pid += 1
        label = f"{collector.model} on {collector.benchmark or '?'}"
        self._name_process(pid, label)
        active_causes = [
            cause for cause in STALL_CAUSES
            if any(s.stalls.get(cause) for s in collector.samples)
        ]
        for sample in collector.samples:
            ts = float(sample.start_cycle)
            self.add_counter("ipc", ts, {"ipc": sample.ipc}, pid)
            self.add_counter(
                "stall cycles", ts,
                {cause: float(sample.stalls.get(cause, 0))
                 for cause in active_causes},
                pid)
            self.add_counter(
                "occupancy", ts,
                {name: round(value, 3)
                 for name, value in sample.occupancy.items()},
                pid)
            rates = {
                "branch_miss_rate": round(sample.branch_miss_rate, 4),
                "l1d_miss_rate": round(sample.l1d_miss_rate, 4),
                "l2_miss_rate": round(sample.l2_miss_rate, 4),
            }
            if sample.ixu_executed or collector.model.endswith("FX"):
                rates["ixu_coverage"] = round(sample.ixu_coverage, 4)
            self.add_counter("rates", ts, rates, pid)
            self.add_counter(
                "energy (pJ)", ts,
                {component: round(value, 2)
                 for component, value in sorted(sample.energy.items())},
                pid)
        return pid

    # -- output --------------------------------------------------------

    def to_dict(self) -> Dict:
        """The full trace object, events sorted for monotonic ``ts``."""
        ordered = sorted(
            self.events,
            key=lambda e: (e["ph"] == "M" and -1 or 0,
                           e.get("ts", 0), e["pid"]),
        )
        return {
            "traceEvents": ordered,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.traceevent"},
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
            handle.write("\n")


def export_timelines(collectors: Sequence[TimelineCollector],
                     path: str,
                     spans: Optional[Sequence[Dict]] = None) -> None:
    """One-shot convenience: core timelines + optional host spans.

    ``spans`` entries are dicts with ``name``, ``ts``, ``dur`` and
    optionally ``tid``/``args`` (microseconds, host wall clock).
    """
    writer = TraceEventWriter()
    for collector in collectors:
        writer.add_timeline(collector)
    for span in spans or ():
        writer.add_span(span["name"], span["ts"], span["dur"],
                        tid=span.get("tid", 0), args=span.get("args"))
    writer.write(path)


__all__ = ["HOST_PID", "TraceEventWriter", "export_timelines"]

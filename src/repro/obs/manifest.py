"""Run manifests: a JSON record of how a set of results was produced.

A figure or table is only as trustworthy as the provenance of the runs
behind it.  The manifest captures, for one CLI/runner invocation:

* the full command line and experiment list,
* the simulation parameters (benchmarks, measure/warmup interval, seed),
* the exact code version (the same source hash the disk cache keys on),
* the host (machine, platform, Python) and wall-clock envelope,
* the worker-pool shape, per-job wall times and worker pids, and
* the disk-cache hit/miss/store counters for the invocation.

``fxa-experiments ... --json out.json`` writes ``out.manifest.json``
next to the results; ``--manifest PATH`` emits one explicitly.  The
record round-trips through ``to_dict``/``from_dict`` like every other
result object in the repo.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

from repro.atomicio import replace_json


def host_info() -> Dict[str, object]:
    """The machine fingerprint recorded in every manifest.

    ``cpu_count`` matters for sim-speed comparisons: the regression
    differ (:mod:`repro.obs.diffrun`) only gates on instructions/second
    when two manifests share this fingerprint.
    """
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass
class JobRecord:
    """Per-job pool accounting (mirrors pool.JobResult / pool.JobFailure,
    minus the run payload).

    ``status`` is ``"ok"`` or ``"failed"``; for failed jobs ``cause``
    (exception / timeout / worker-death) and ``error`` carry the
    quarantine reason, and ``attempts`` counts every retry taken.
    """

    job: str                    # SimJob.describe()
    wall_seconds: float = 0.0
    worker_pid: int = 0
    attempts: int = 1
    status: str = "ok"
    cause: str = ""
    error: str = ""
    started_ts: float = 0.0     # host wall clock (time.time) at start

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class RunManifest:
    """Provenance record of one experiment-harness invocation."""

    command: List[str] = field(default_factory=list)
    experiments: List[str] = field(default_factory=list)
    benchmarks: Optional[List[str]] = None      # None = full suite
    measure: int = 0
    warmup: int = 0
    seed: int = 0
    code_version: str = ""
    repro_version: str = ""
    host: Dict[str, object] = field(default_factory=host_info)
    started_at: str = ""
    finished_at: str = ""
    wall_seconds: float = 0.0
    workers: int = 1
    jobs_simulated: int = 0
    jobs_failed: int = 0
    fault_policy: Dict[str, object] = field(default_factory=dict)
    job_records: List[JobRecord] = field(default_factory=list)
    cache: Dict[str, object] = field(default_factory=dict)
    outputs: Dict[str, str] = field(default_factory=dict)
    # Per-(model, benchmark) result aggregates — what diffrun compares
    # and repro-exp report renders.
    # Entries: {model, benchmark, ipc, cycles, committed, energy_total,
    #           energy_per_instruction, stalls, wall_seconds,
    #           insts_per_second, ff_skipped_cycles, topdown};
    #           populated for every run the sweep served, including
    #           cache replays (wall_seconds/insts_per_second only for
    #           freshly simulated jobs; ff_skipped_cycles and the
    #           topdown slot/energy payload only when an observed pass
    #           ran — topdown is None otherwise).
    aggregates: List[Dict] = field(default_factory=list)

    def slowest_jobs(self, count: int = 5) -> List[JobRecord]:
        """The ``count`` slowest simulated jobs, slowest first."""
        ordered = sorted(self.job_records,
                         key=lambda r: r.wall_seconds, reverse=True)
        return ordered[:count]

    def failed_jobs(self) -> List[JobRecord]:
        """Every quarantined job record (the sweep's explicit gaps)."""
        return [r for r in self.job_records if not r.ok]

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["job_records"] = [r.to_dict() for r in self.job_records]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunManifest":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["job_records"] = [
            JobRecord.from_dict(r) for r in data.get("job_records", [])
        ]
        return cls(**kwargs)

    def write(self, path) -> None:
        """Serialise to ``path`` as indented, key-sorted JSON.

        Published atomically (tmp file + ``os.replace``, the disk-cache
        idiom): progress streamers, ``repro-exp diff`` and the job
        server poll manifests while sweeps are still producing them,
        and an in-place write would let them read torn JSON.  A
        serialisation failure leaves any existing manifest untouched.
        """
        replace_json(path, self.to_dict(), indent=2, sort_keys=True,
                     trailing_newline=True)

    @classmethod
    def read(cls, path) -> "RunManifest":
        with open(path) as stream:
            return cls.from_dict(json.load(stream))


def aggregate_entry(run, *, wall_seconds: float = 0.0,
                    stalls: Optional[Dict] = None, ff_skipped: int = 0,
                    topdown: Optional[Dict] = None) -> Dict:
    """One ``aggregates`` row for a served benchmark run.

    ``run`` is any object with the :class:`BenchmarkRun` surface
    (``model``, ``benchmark``, ``ipc``, ``stats``, ``energy``,
    ``total_energy``).  Shared by the CLI sweep and the job server so
    every producer of aggregates emits the exact schema the differ and
    the HTML report consume; ``wall_seconds`` is 0.0 for cache replays
    (``insts_per_second`` then reads 0.0 and is never gated on).
    """
    return {
        "model": run.model,
        "benchmark": run.benchmark,
        "ipc": run.ipc,
        "cycles": run.stats.cycles,
        "committed": run.stats.committed,
        "energy_total": run.total_energy,
        "energy_per_instruction": run.energy.energy_per_instruction,
        "stalls": dict(run.stats.stalls if stalls is None else stalls),
        "wall_seconds": wall_seconds,
        "insts_per_second": (
            run.stats.committed / wall_seconds if wall_seconds else 0.0),
        "ff_skipped_cycles": ff_skipped,
        "topdown": topdown,
    }


def manifest_path_for(json_path: str) -> str:
    """Default manifest location next to a ``--json`` output file."""
    if json_path.endswith(".json"):
        return json_path[: -len(".json")] + ".manifest.json"
    return json_path + ".manifest.json"

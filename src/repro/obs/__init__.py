"""Pipeline observability: metrics, stall attribution, traces, manifests.

The simulator's default answer to "how did this run go" is the
end-of-run aggregate in :class:`~repro.core.stats.CoreStats`.  This
package adds the *why* behind those aggregates, at three granularities:

* :mod:`repro.obs.metrics` — a registry of counters and per-cycle
  occupancy histograms (IQ/ROB/LSQ fill, IXU execute vs. NOP
  passthrough, bypass hits);
* :mod:`repro.obs.stall` — per-cycle attribution of zero-commit cycles
  to a fixed cause taxonomy (where did the cycles go);
* :mod:`repro.obs.pipeview` — per-instruction pipeline-stage traces in
  the Kanata format the Konata visualiser loads;
* :mod:`repro.obs.timeline` — interval telemetry (IPC/stalls/occupancy/
  IXU coverage/energy every N committed instructions), with a terminal
  phase report, a Perfetto exporter (:mod:`repro.obs.traceevent`), and
  a cross-run regression differ (:mod:`repro.obs.diffrun`);
* :mod:`repro.obs.topdown` — TMA-style hierarchical issue-slot
  accounting (retiring IXU/OXU, bad speculation, frontend/backend
  bound) summing exactly to ``width x cycles``, plus per-instruction-
  class energy attribution summing to the run's EnergyBreakdown;
* :mod:`repro.obs.manifest` — a provenance JSON for whole harness
  invocations (config, code hash, host, pool accounting, cache counts);
* :mod:`repro.obs.report` — a self-contained static HTML report
  bundling all of the above per manifest (``repro-exp report``).

Everything is **off by default and free when off**: a core built without
an :class:`Observability` object pays one ``is None`` test per cycle and
nothing else, keeping the hot-loop throughput and the simulated results
bit-identical to an uninstrumented build.  Enable it per run::

    from repro import build_core, generate_trace
    from repro.obs import Observability

    obs = Observability()
    core = build_core("HALF+FX", obs=obs)
    stats = core.run(generate_trace("hmmer", 10_000))
    print(stats.stalls)                    # cause -> cycles
    print(stats.metrics["histograms"])     # occupancy distributions
"""

from __future__ import annotations

from typing import Optional

from repro.obs.manifest import (
    JobRecord,
    RunManifest,
    aggregate_entry,
    host_info,
    manifest_path_for,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    occupancy_bounds,
)
from repro.obs.pipeview import KanataWriter
from repro.obs.stall import (
    STALL_CAUSES,
    StallCollector,
    format_stall_chart,
    format_stall_table,
)
from repro.obs.timeline import (
    DEFAULT_INTERVAL,
    IntervalSample,
    TimelineCollector,
    detect_phases,
    format_timeline_report,
)
from repro.obs.topdown import (
    ENERGY_CLASSES,
    SLOT_LEAVES,
    TopDownCollector,
    attribute_energy_by_class,
    format_energy_by_class,
    format_topdown_report,
    merge_topdown_payloads,
    rollup_slots,
)


class Observability:
    """Per-run bundle of enabled collectors, attached to one core.

    Args:
        metrics: Collect counters and per-cycle occupancy histograms.
        stalls: Attribute every zero-commit cycle to a stall cause.
        pipeview: A :class:`KanataWriter` to stream per-instruction
            pipeline stages into (None = no trace).
        timeline: A :class:`TimelineCollector` to snapshot interval
            telemetry into (None = no timeline).
        topdown: A :class:`TopDownCollector` to account every issue
            slot hierarchically into (None = no top-down tree).

    One instance observes one core for one run; the core calls
    :meth:`attach` when built and :meth:`finalize` when its ``run``
    completes, which copies the collected data onto ``core.stats``.
    (Timeline samples and the top-down tree stay on their collectors,
    not on ``stats``, so an observed run's ``CoreStats`` round trip is
    unchanged.)
    """

    def __init__(self, metrics: bool = True, stalls: bool = True,
                 pipeview: Optional[KanataWriter] = None,
                 timeline: Optional[TimelineCollector] = None,
                 topdown: Optional[TopDownCollector] = None):
        self.metrics = MetricsRegistry() if metrics else None
        self.stalls = StallCollector() if stalls else None
        self.pipeview = pipeview
        self.timeline = timeline
        self.topdown = topdown
        self.commit_cycles = 0
        self._attached = False
        self._iq_hist = None
        self._rob_hist = None
        self._lq_hist = None
        self._sq_hist = None
        self._fq_hist = None

    # ------------------------------------------------------------------

    def attach(self, core) -> None:
        """Bind occupancy histograms to ``core``'s structures."""
        if self._attached:
            raise RuntimeError(
                "an Observability instance observes exactly one core run; "
                "build a fresh one per simulation"
            )
        self._attached = True
        if self.timeline is not None:
            self.timeline.attach(core)
        if self.topdown is not None:
            self.topdown.attach(core)
        metrics = self.metrics
        if metrics is None:
            return
        iq = getattr(core, "iq", None)
        if iq is not None:
            self._iq_hist = metrics.histogram(
                "occupancy.iq", occupancy_bounds(iq.capacity))
            self._rob_hist = metrics.histogram(
                "occupancy.rob", occupancy_bounds(core.rob.capacity))
            self._lq_hist = metrics.histogram(
                "occupancy.lq", occupancy_bounds(core.lsq.load_capacity))
            self._sq_hist = metrics.histogram(
                "occupancy.sq", occupancy_bounds(core.lsq.store_capacity))
        else:
            self._fq_hist = metrics.histogram(
                "occupancy.frontend_queue",
                occupancy_bounds(core.config.frontend_queue_depth))

    def on_cycle(self, core, committed: int) -> None:
        """Per-cycle sampling hook (the cores call this once per tick)."""
        cause = None
        if committed:
            self.commit_cycles += 1
        elif (self.stalls is not None or self.timeline is not None
                or self.topdown is not None):
            # _stall_cause only reads core state, so computing it for
            # the timeline keeps the simulated results bit-identical.
            cause = core._stall_cause()
            if self.stalls is not None:
                self.stalls.charge(cause)
        if self.timeline is not None:
            self.timeline.on_cycle(core, committed, cause)
        if self.topdown is not None:
            self.topdown.on_cycle(core, committed, cause)
        if self.metrics is not None:
            iq_hist = self._iq_hist
            if iq_hist is not None:
                iq_hist.observe(len(core.iq))
                self._rob_hist.observe(len(core.rob))
                lsq = core.lsq
                self._lq_hist.observe(
                    lsq.load_capacity - lsq.loads_free)
                self._sq_hist.observe(
                    lsq.store_capacity - lsq.stores_free)
            else:
                self._fq_hist.observe(len(core.issue_q))

    def on_cycles(self, core, cycles: int) -> None:
        """Bulk hook for ``cycles`` fast-forwarded idle ticks.

        The core guarantees the skipped ticks are identical zero-commit
        cycles with frozen state, so the stall cause and every sampled
        occupancy are computed once and charged ``cycles`` times —
        bit-identical to calling :meth:`on_cycle` per skipped tick.
        """
        cause = None
        if (self.stalls is not None or self.timeline is not None
                or self.topdown is not None):
            cause = core._stall_cause()
            if self.stalls is not None:
                self.stalls.charge(cause, cycles)
        if self.timeline is not None:
            self.timeline.on_cycles(core, cause, cycles)
        if self.topdown is not None:
            self.topdown.on_cycles(core, cause, cycles)
        if self.metrics is not None:
            iq_hist = self._iq_hist
            if iq_hist is not None:
                iq_hist.observe_many(len(core.iq), cycles)
                self._rob_hist.observe_many(len(core.rob), cycles)
                lsq = core.lsq
                self._lq_hist.observe_many(
                    lsq.load_capacity - lsq.loads_free, cycles)
                self._sq_hist.observe_many(
                    lsq.store_capacity - lsq.stores_free, cycles)
            else:
                self._fq_hist.observe_many(len(core.issue_q), cycles)

    def finalize(self, core) -> None:
        """Harvest per-core counters and publish onto ``core.stats``."""
        stats = core.stats
        if self.timeline is not None:
            self.timeline.finalize(core)
        if self.topdown is not None:
            self.topdown.finalize(core)
        if self.stalls is not None:
            # The in-order core's reported cycle count extends past its
            # last tick to drain in-flight completions; charge that tail
            # so causes always sum to cycles - commit_cycles.
            drain = stats.cycles - self.commit_cycles - self.stalls.total
            if drain > 0:
                self.stalls.charge("other", drain)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("cycles.total").add(stats.cycles)
            metrics.counter("cycles.commit").add(self.commit_cycles)
            # Fast-forward engagement: cycles the kernel jumped rather
            # than ticked (0 when REPRO_NO_FASTFORWARD disables it).
            metrics.counter("cycles.fastforwarded").add(
                getattr(core, "_ff_skipped", 0))
            if self.stalls is not None:
                metrics.counter("cycles.stall").add(self.stalls.total)
            ixu_exec = getattr(core, "_ixu_exec_count", None)
            if ixu_exec is not None:
                # NOP passthroughs are exactly the IQ dispatches: every
                # instruction the IXU could not execute flows through it
                # and enters the issue queue.
                metrics.counter("ixu.executed").add(ixu_exec)
                metrics.counter("ixu.nop_passthrough").add(
                    core.iq.dispatches)
                metrics.counter("ixu.bypass_operand_hits").add(
                    core._ixu_bypass_operand_hits)
                metrics.counter("bypass.ixu_broadcasts").add(
                    core.ixu_bypass.broadcasts)
            oxu = getattr(core, "oxu_bypass", None) or getattr(
                core, "bypass", None)
            if oxu is not None:
                metrics.counter("bypass.oxu_broadcasts").add(
                    oxu.broadcasts)
            per_cluster = getattr(core, "issued_per_cluster", None)
            if per_cluster is not None:
                for index, issued in enumerate(per_cluster):
                    metrics.counter(f"cluster.{index}.issued").add(issued)
                metrics.counter("cluster.forwards").add(
                    core.intercluster_forwards)
            stats.metrics = metrics.to_dict()
        if self.stalls is not None:
            stats.stalls = self.stalls.to_dict()


__all__ = [
    "Observability",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "occupancy_bounds",
    "StallCollector",
    "STALL_CAUSES",
    "format_stall_chart",
    "format_stall_table",
    "DEFAULT_INTERVAL",
    "IntervalSample",
    "TimelineCollector",
    "detect_phases",
    "format_timeline_report",
    "TopDownCollector",
    "SLOT_LEAVES",
    "ENERGY_CLASSES",
    "attribute_energy_by_class",
    "rollup_slots",
    "merge_topdown_payloads",
    "format_topdown_report",
    "format_energy_by_class",
    "KanataWriter",
    "JobRecord",
    "RunManifest",
    "host_info",
    "aggregate_entry",
    "manifest_path_for",
]

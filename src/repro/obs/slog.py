"""Structured logging for the serving stack (and anything else).

Thin wrapper over stdlib :mod:`logging` that gives every component two
interchangeable output shapes from the same call sites:

* **console** (the default) — one human-readable line per record, with
  any correlation fields appended as ``key=value`` pairs;
* **JSON lines** (``--log-json``) — one JSON object per record with
  ``ts``/``level``/``logger``/``msg`` plus the correlation fields
  (``trace_id``, ``batch_id``, ``tenant``, ``digest``, ...), ready for
  ingestion by log shippers.

Correlation fields ride through the normal ``extra=`` mechanism::

    log = slog.get_logger("repro.serve")
    log.info("batch admitted", extra={"batch_id": bid, "trace_id": tid})

All repro loggers live under the ``"repro"`` root so one
:func:`configure` call controls the whole tree.  :func:`configure` is
idempotent: calling it again replaces the handler rather than stacking
duplicates, which keeps in-process test servers from double-logging.

CLI entry points share the flag vocabulary through
:func:`add_logging_args` / :func:`configure_from_args`.
"""

from __future__ import annotations

import argparse
import datetime
import json
import logging
import sys
from typing import IO, Optional

#: Root logger name for everything in this package.
ROOT = "repro"

#: LogRecord attribute names that are plumbing, not user payload.  Any
#: record attribute *not* in this set is treated as a correlation field
#: and serialized alongside the message.
_RESERVED = frozenset(vars(logging.makeLogRecord({})).keys()) | {
    "message", "asctime", "taskName",
}


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        key: value for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per line; correlation fields inline."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, datetime.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_extra_fields(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False, default=str)


class ConsoleFormatter(logging.Formatter):
    """Human-readable line: ``HH:MM:SS LEVEL logger: msg key=value ...``"""

    def format(self, record: logging.LogRecord) -> str:
        stamp = datetime.datetime.fromtimestamp(
            record.created).strftime("%H:%M:%S")
        line = f"{stamp} {record.levelname:<7s} {record.name}: " \
               f"{record.getMessage()}"
        fields = _extra_fields(record)
        if fields:
            joined = " ".join(f"{k}={v}" for k, v in fields.items())
            line = f"{line} [{joined}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def get_logger(name: str = ROOT) -> logging.Logger:
    """Logger under the ``repro`` tree (``name`` may already include it)."""
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)


def configure(json_lines: bool = False, level: str = "info",
              stream: Optional[IO[str]] = None) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree.

    Replaces any handler previously installed by this function, so
    repeated calls (e.g. several in-process test servers) never stack
    duplicate handlers.  Returns the root ``repro`` logger.
    """
    root = logging.getLogger(ROOT)
    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    root.propagate = False
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines
                         else ConsoleFormatter())
    handler._repro_slog = True  # type: ignore[attr-defined]
    for existing in list(root.handlers):
        if getattr(existing, "_repro_slog", False):
            root.removeHandler(existing)
    root.addHandler(handler)
    return root


def add_logging_args(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``--log-json`` / ``--log-level`` flags."""
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit JSON-lines structured logs instead of console lines")
    parser.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="log verbosity (default: info)")


def configure_from_args(args: argparse.Namespace) -> logging.Logger:
    """Apply :func:`configure` from a parsed argparse namespace."""
    return configure(json_lines=getattr(args, "log_json", False),
                     level=getattr(args, "log_level", "info"))


__all__ = [
    "ROOT", "JsonFormatter", "ConsoleFormatter", "get_logger",
    "configure", "add_logging_args", "configure_from_args",
]

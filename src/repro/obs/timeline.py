"""Interval timeline telemetry: within-run time series of every
headline metric.

The end-of-run aggregates in :class:`~repro.core.stats.CoreStats`
answer "how did this run go"; this module answers "*when* did it go
that way".  A :class:`TimelineCollector` attached through the usual
:class:`~repro.obs.Observability` bundle snapshots an
:class:`IntervalSample` every N committed instructions (default
:data:`DEFAULT_INTERVAL`): IPC, per-cause stall cycles, mean IQ/ROB/
LQ/SQ occupancy (front-end queue occupancy on the in-order core), IXU
coverage, branch/cache miss rates, and a per-component energy delta
priced by the run's own :class:`~repro.energy.EnergyModel`.  That makes
phase behaviour — IXU coverage collapsing in a pointer-chasing phase,
the IQ filling during an L2-miss burst — visible instead of averaged
away, in the spirit of SimPoint-style interval analysis (Sherwood et
al.).

Like every collector in :mod:`repro.obs`, the timeline is **off by
default and free when off**: an unobserved core pays one ``is None``
test per cycle, and a timeline-observed run's simulated results stay
bit-identical to an unobserved one (the collector only *reads* core
state; ``tests/test_obs_timeline.py`` pins this).

Consumers:

* :func:`format_timeline_report` — terminal phase view (sparklines +
  the :func:`detect_phases` phase-change detector);
* :mod:`repro.obs.traceevent` — Chrome-trace-event/Perfetto export
  (CLI ``--timeline OUT.json``);
* :mod:`repro.obs.diffrun` — cross-run regression diffing of the
  aggregates the samples roll up into.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence

from repro.core.stats import EventCounts
from repro.obs.stall import STALL_CAUSES
from repro.obs.topdown import ClassMix, attribute_energy_by_class

#: Committed instructions per interval sample (the CLI ``--interval``).
DEFAULT_INTERVAL = 1_000


@dataclass
class IntervalSample:
    """One telemetry snapshot covering ``interval`` committed
    instructions (the last sample of a run may cover fewer).

    All counts are *deltas* over the interval, not cumulative totals,
    so samples can be charted or diffed directly.
    """

    index: int = 0
    start_cycle: int = 0
    end_cycle: int = 0          # exclusive
    cycles: int = 0
    committed: int = 0
    stalls: Dict[str, int] = field(default_factory=dict)
    occupancy: Dict[str, float] = field(default_factory=dict)
    ixu_executed: int = 0
    branches: int = 0
    mispredictions: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    energy: Dict[str, float] = field(default_factory=dict)
    # Interval energy re-attributed to instruction classes (IXU/OXU x
    # ALU/branch/load/store/FP; see repro.obs.topdown) — sums to the
    # same total as ``energy``.
    energy_by_class: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def ixu_coverage(self) -> float:
        """Fraction of this interval's commits executed in the IXU."""
        if not self.committed:
            return 0.0
        return self.ixu_executed / self.committed

    @property
    def branch_miss_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def l1d_miss_rate(self) -> float:
        if not self.l1d_accesses:
            return 0.0
        return self.l1d_misses / self.l1d_accesses

    @property
    def l2_miss_rate(self) -> float:
        if not self.l2_accesses:
            return 0.0
        return self.l2_misses / self.l2_accesses

    @property
    def energy_total(self) -> float:
        return sum(self.energy.values())

    @property
    def energy_per_instruction(self) -> float:
        if not self.committed:
            return 0.0
        return self.energy_total / self.committed

    def to_dict(self) -> Dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["stalls"] = dict(self.stalls)
        data["occupancy"] = dict(self.occupancy)
        data["energy"] = dict(self.energy)
        data["energy_by_class"] = dict(self.energy_by_class)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "IntervalSample":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class TimelineCollector:
    """Accumulates :class:`IntervalSample` records for one core run.

    Attach through :class:`~repro.obs.Observability`::

        from repro.obs import Observability, TimelineCollector

        timeline = TimelineCollector(interval=1000)
        obs = Observability(metrics=False, stalls=False,
                            timeline=timeline)
        build_core("HALF+FX", obs=obs).run(trace)
        for sample in timeline.samples:
            print(sample.index, sample.ipc, sample.stalls)

    The per-cycle hook only accumulates occupancy sums and the commit
    count; everything else (counter deltas, energy pricing) happens on
    the cold interval boundary, so the enabled overhead stays small and
    the disabled overhead stays zero.
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL):
        if interval < 1:
            raise ValueError("timeline interval must be >= 1")
        self.interval = interval
        self.samples: List[IntervalSample] = []
        self.model = ""
        self.benchmark = ""
        self._attached = False
        # Per-interval accumulators (reset at each boundary).
        self._cycles = 0
        self._committed = 0
        self._stalls: Dict[str, int] = {}
        self._occ_iq = 0
        self._occ_rob = 0
        self._occ_lq = 0
        self._occ_sq = 0
        self._occ_fq = 0
        # Cumulative baselines of the previous boundary.
        self._cycle_base = 0
        self._prev = _CounterSnapshot()
        self._prev_events = EventCounts()
        self._energy_model = None
        self._has_backend = False

    # ------------------------------------------------------------------

    def attach(self, core) -> None:
        """Bind to ``core`` (called by ``Observability.attach``)."""
        from repro.energy import EnergyModel

        if self._attached:
            raise RuntimeError(
                "a TimelineCollector observes exactly one core run; "
                "build a fresh one per simulation"
            )
        self._attached = True
        self.model = core.config.name
        self._energy_model = EnergyModel(core.config)
        self._has_backend = getattr(core, "iq", None) is not None

    def on_cycle(self, core, committed: int,
                 cause: Optional[str]) -> None:
        """Per-cycle hook (hot): accumulate, sample on the boundary."""
        self._cycles += 1
        if committed:
            self._committed += committed
        elif cause is not None:
            stalls = self._stalls
            stalls[cause] = stalls.get(cause, 0) + 1
        if self._has_backend:
            self._occ_iq += len(core.iq)
            self._occ_rob += len(core.rob)
            lsq = core.lsq
            self._occ_lq += lsq.load_capacity - lsq.loads_free
            self._occ_sq += lsq.store_capacity - lsq.stores_free
        else:
            self._occ_fq += len(core.issue_q)
        if self._committed >= self.interval:
            self._take_sample(core)

    def on_cycles(self, core, cause: Optional[str],
                  cycles: int) -> None:
        """Bulk accumulation for ``cycles`` fast-forwarded idle ticks.

        The skipped ticks commit nothing and freeze every occupancy, so
        the accumulators advance by ``cycles`` times the current values.
        No interval boundary can fall inside the gap: sampling is
        commit-gated and ``_committed`` does not change here.
        """
        self._cycles += cycles
        if cause is not None:
            stalls = self._stalls
            stalls[cause] = stalls.get(cause, 0) + cycles
        if self._has_backend:
            self._occ_iq += len(core.iq) * cycles
            self._occ_rob += len(core.rob) * cycles
            lsq = core.lsq
            self._occ_lq += (lsq.load_capacity - lsq.loads_free) * cycles
            self._occ_sq += (
                lsq.store_capacity - lsq.stores_free) * cycles
        else:
            self._occ_fq += len(core.issue_q) * cycles

    def finalize(self, core) -> None:
        """Flush the trailing partial interval (if it saw any cycles)."""
        if self._cycles:
            self._take_sample(core)

    # ------------------------------------------------------------------

    def _take_sample(self, core) -> None:
        """Cold path, once per interval: delta every counter and price
        the interval's events into an energy breakdown."""
        cycles = self._cycles
        now = _CounterSnapshot.capture(core)
        events = core.snapshot_events()
        delta = events.delta(self._prev_events)
        breakdown = self._energy_model.price_events(
            delta, benchmark=self.benchmark,
            committed=self._committed)
        if self._has_backend:
            occupancy = {
                "iq": self._occ_iq / cycles,
                "rob": self._occ_rob / cycles,
                "lq": self._occ_lq / cycles,
                "sq": self._occ_sq / cycles,
            }
        else:
            occupancy = {"frontend_queue": self._occ_fq / cycles}
        prev = self._prev
        mix = ClassMix(
            committed=self._committed,
            loads=now.committed_loads - prev.committed_loads,
            stores=now.committed_stores - prev.committed_stores,
            branches=now.committed_branches - prev.committed_branches,
            fp=now.committed_fp - prev.committed_fp,
            ixu_executed=now.ixu_executed - prev.ixu_executed,
            ixu_mem_ops=now.ixu_mem_ops - prev.ixu_mem_ops,
            ixu_branches=now.ixu_branches - prev.ixu_branches,
        )
        self.samples.append(IntervalSample(
            index=len(self.samples),
            start_cycle=self._cycle_base,
            end_cycle=self._cycle_base + cycles,
            cycles=cycles,
            committed=self._committed,
            stalls=self._stalls,
            occupancy=occupancy,
            ixu_executed=now.ixu_executed - prev.ixu_executed,
            branches=now.branches - prev.branches,
            mispredictions=now.mispredictions - prev.mispredictions,
            l1i_misses=now.l1i_misses - prev.l1i_misses,
            l1d_accesses=now.l1d_accesses - prev.l1d_accesses,
            l1d_misses=now.l1d_misses - prev.l1d_misses,
            l2_accesses=now.l2_accesses - prev.l2_accesses,
            l2_misses=now.l2_misses - prev.l2_misses,
            energy={
                component.value: (breakdown.dynamic.get(component, 0.0)
                                  + breakdown.static.get(component, 0.0))
                for component in breakdown.dynamic
            },
            energy_by_class=attribute_energy_by_class(breakdown, mix),
        ))
        self._cycle_base += cycles
        self._prev = now
        self._prev_events = events
        self._cycles = 0
        self._committed = 0
        self._stalls = {}
        self._occ_iq = self._occ_rob = 0
        self._occ_lq = self._occ_sq = self._occ_fq = 0

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe dump of the whole timeline."""
        return {
            "model": self.model,
            "benchmark": self.benchmark,
            "interval": self.interval,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TimelineCollector":
        collector = cls(interval=data.get("interval", DEFAULT_INTERVAL))
        collector.model = data.get("model", "")
        collector.benchmark = data.get("benchmark", "")
        collector.samples = [
            IntervalSample.from_dict(s) for s in data.get("samples", [])
        ]
        return collector


class _CounterSnapshot:
    """Cumulative live-counter values at one interval boundary."""

    __slots__ = ("ixu_executed", "branches", "mispredictions",
                 "l1i_misses", "l1d_accesses", "l1d_misses",
                 "l2_accesses", "l2_misses",
                 # Commit-class counters for per-interval energy
                 # attribution (repro.obs.topdown.ClassMix).
                 "committed_loads", "committed_stores",
                 "committed_branches", "committed_fp",
                 "ixu_mem_ops", "ixu_branches")

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    @classmethod
    def capture(cls, core) -> "_CounterSnapshot":
        snapshot = cls()
        stats = core.stats
        snapshot.ixu_executed = stats.ixu_executed
        snapshot.branches = stats.branches
        snapshot.mispredictions = stats.mispredictions
        snapshot.committed_loads = stats.committed_loads
        snapshot.committed_stores = stats.committed_stores
        snapshot.committed_branches = stats.committed_branches
        snapshot.committed_fp = stats.committed_fp
        snapshot.ixu_mem_ops = stats.ixu_mem_ops
        snapshot.ixu_branches = stats.ixu_branches
        hierarchy = core.hierarchy
        snapshot.l1i_misses = hierarchy.l1i.stats.misses
        snapshot.l1d_accesses = hierarchy.l1d.stats.accesses
        snapshot.l1d_misses = hierarchy.l1d.stats.misses
        snapshot.l2_accesses = hierarchy.l2.stats.accesses
        snapshot.l2_misses = hierarchy.l2.stats.misses
        return snapshot


# ----------------------------------------------------------------------
# Phase detection and the terminal report
# ----------------------------------------------------------------------


def _feature_vector(sample: IntervalSample,
                    ipc_scale: float) -> List[float]:
    """Normalised behaviour vector for phase comparison (every element
    in roughly [0, 1] so no metric dominates the distance)."""
    cycles = sample.cycles or 1
    vector = [
        sample.ipc / ipc_scale if ipc_scale else 0.0,
        sample.ixu_coverage,
        sample.branch_miss_rate,
        sample.l1d_miss_rate,
        sample.l2_miss_rate,
    ]
    vector.extend(
        sample.stalls.get(cause, 0) / cycles for cause in STALL_CAUSES
    )
    return vector


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def detect_phases(samples: Sequence[IntervalSample],
                  window: int = 4,
                  threshold: float = 0.25) -> List[int]:
    """Sliding-window phase-change detector; returns phase-start
    indices (always beginning with 0 for a non-empty timeline).

    Each sample is reduced to a normalised behaviour vector (IPC, IXU
    coverage, miss rates, stall-cause shares); a new phase starts when
    a sample's vector is more than ``threshold`` (Euclidean distance)
    from the mean vector of the trailing ``window`` samples of the
    current phase.
    """
    if window < 1:
        raise ValueError("phase window must be >= 1")
    if not samples:
        return []
    ipc_scale = max(s.ipc for s in samples) or 1.0
    vectors = [_feature_vector(s, ipc_scale) for s in samples]
    phases = [0]
    history = [vectors[0]]
    for index in range(1, len(samples)):
        recent = history[-window:]
        mean = [sum(col) / len(recent) for col in zip(*recent)]
        if _distance(vectors[index], mean) > threshold:
            phases.append(index)
            history = [vectors[index]]
        else:
            history.append(vectors[index])
    return phases


def dominant_stall(sample_range: Sequence[IntervalSample]) -> str:
    """The stall cause with the most cycles over ``sample_range``
    (``"-"`` when nothing stalled)."""
    totals: Dict[str, int] = {}
    for sample in sample_range:
        for cause, cycles in sample.stalls.items():
            totals[cause] = totals.get(cause, 0) + cycles
    if not totals:
        return "-"
    return max(totals, key=lambda cause: (totals[cause], cause))


def format_timeline_report(collectors: Sequence[TimelineCollector],
                           window: int = 4,
                           threshold: float = 0.25) -> str:
    """Terminal phase view: one block per observed core with IPC and
    energy-per-instruction sparklines plus the detected phase table."""
    from repro.experiments.textchart import sparkline

    lines: List[str] = []
    for collector in collectors:
        samples = collector.samples
        label = f"{collector.model}/{collector.benchmark or '?'}"
        lines.append(
            f"-- {label}: {len(samples)} interval(s) x "
            f"{collector.interval} insts"
        )
        if not samples:
            lines.append("   (no samples)")
            continue
        ipcs = [s.ipc for s in samples]
        epis = [s.energy_per_instruction for s in samples]
        lines.append(f"   IPC    {sparkline(ipcs)}  "
                     f"[{min(ipcs):.2f}..{max(ipcs):.2f}]")
        lines.append(f"   pJ/in  {sparkline(epis)}  "
                     f"[{min(epis):.1f}..{max(epis):.1f}]")
        starts = detect_phases(samples, window=window,
                               threshold=threshold)
        bounds = starts + [len(samples)]
        for number, (begin, end) in enumerate(
                zip(bounds, bounds[1:]), start=1):
            span = samples[begin:end]
            cycles = sum(s.cycles for s in span) or 1
            committed = sum(s.committed for s in span)
            lines.append(
                f"   phase {number}: intervals {begin}-{end - 1}, "
                f"IPC {committed / cycles:.3f}, "
                f"dominant stall {dominant_stall(span)}"
            )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_INTERVAL",
    "IntervalSample",
    "TimelineCollector",
    "detect_phases",
    "dominant_stall",
    "format_timeline_report",
]

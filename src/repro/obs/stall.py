"""Per-cycle stall-cause attribution ("where did the cycles go").

Every simulated cycle in which the core commits nothing is a *stall
cycle*, and the collector charges it to exactly one cause from a fixed
taxonomy — so the per-cause counts always sum to the total number of
stall cycles, and stall cycles plus commit cycles always sum to the
simulated cycle count.  The cause itself comes from the core's
``_stall_cause()`` hook, which inspects the pipeline state the moment
the stall is observed (rename blocked on a full structure, ROB head
waiting on memory, front end recovering from a branch, ...).

The attribution is *hierarchical*: a cycle is charged to the most
specific blocking condition, with backend resource exhaustion taking
priority over front-end causes (a full IQ hides whatever the front end
was doing, exactly as in top-down analyses such as Yasin's TMA or
gem5's stall accounting).
"""

from __future__ import annotations

from typing import Dict, Mapping

#: The fixed cause taxonomy, in report order.
#:
#: * ``iq_full`` / ``rob_full`` / ``lsq_full`` / ``prf_full`` — rename
#:   blocked on a full backend structure (window pressure).
#: * ``dcache_miss`` — the ROB head is an issued load still waiting on
#:   the data memory hierarchy.
#: * ``operand_wait`` — the ROB head has not finished executing (waiting
#:   on operands, FU arbitration or a long-latency unit).
#: * ``branch_recovery`` — the front end is stopped on an unresolved
#:   misprediction or a redirect.
#: * ``icache_miss`` — fetch is waiting on an instruction-cache refill.
#: * ``frontend_fill`` — the backend is empty and the front-end pipe is
#:   still filling (start-up, post-squash refill, fetch-queue bubbles).
#: * ``other`` — anything else (commit-width limits, writeback races).
STALL_CAUSES = (
    "iq_full",
    "rob_full",
    "lsq_full",
    "prf_full",
    "dcache_miss",
    "operand_wait",
    "branch_recovery",
    "icache_miss",
    "frontend_fill",
    "other",
)


class StallCollector:
    """Accumulates one cause per zero-commit cycle."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: Dict[str, int] = dict.fromkeys(STALL_CAUSES, 0)

    def charge(self, cause: str, cycles: int = 1) -> None:
        """Charge ``cycles`` stall cycles to ``cause``."""
        counts = self.counts
        if cause not in counts:
            cause = "other"
        counts[cause] += cycles

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def to_dict(self) -> Dict[str, int]:
        """Cause -> cycles, every taxonomy cause present (zeros kept so
        tables across benchmarks align)."""
        return dict(self.counts)


def format_stall_table(
    reports: Mapping[str, Mapping[str, int]],
    total_cycles: Mapping[str, int],
    title: str = "Stall-cause breakdown",
) -> str:
    """Render ``{run label: {cause: cycles}}`` as an aligned table.

    ``total_cycles`` maps the same labels to the run's simulated cycle
    count, so each row also shows the busy (non-stall) share.
    """
    labels = list(reports)
    causes = [
        c for c in STALL_CAUSES
        if any(reports[label].get(c, 0) for label in labels)
    ]
    label_width = max([len(label) for label in labels] + [len("run")])
    widths = [max(len(c), 7) + 2 for c in causes]
    header = (f"{'run':<{label_width}}  {'cycles':>8s} {'stall%':>7s}"
              + "".join(f"{c:>{w}s}" for c, w in zip(causes, widths)))
    lines = [title, header]
    for label in labels:
        counts = reports[label]
        cycles = total_cycles.get(label, 0)
        stalled = sum(counts.values())
        share = stalled / cycles if cycles else 0.0
        cells = "".join(
            f"{counts.get(c, 0):>{w}d}" for c, w in zip(causes, widths)
        )
        lines.append(
            f"{label:<{label_width}}  {cycles:>8d} {share:>6.1%}{cells}"
        )
    return "\n".join(lines)


def format_stall_chart(
    reports: Mapping[str, Mapping[str, int]],
    title: str = "Stall cycles by cause",
    width: int = 50,
) -> str:
    """Stacked text chart: one bar per run, partitioned by cause."""
    from repro.experiments.textchart import stacked_chart

    ordered = {
        label: {
            cause: counts.get(cause, 0)
            for cause in STALL_CAUSES if counts.get(cause, 0)
        }
        for label, counts in reports.items()
    }
    return stacked_chart(ordered, title=title, width=width)

"""Cross-run regression diffing of run manifests.

A :class:`~repro.obs.manifest.RunManifest` now carries per-(model,
benchmark) result aggregates (IPC, energy, stall mix, sim speed).  This
module compares two manifests of the same sweep — typically "main" vs
"this branch", or yesterday's nightly vs today's — and classifies each
metric change:

* ``regression`` — IPC dropped or energy/instruction rose past the
  threshold; these trip the gate (exit code :data:`EXIT_REGRESSION`).
* ``warning`` — sim-speed dropped past its (looser) threshold, or a
  (model, benchmark) pair disappeared.  Sim speed is only compared when
  the two manifests share a host fingerprint (hostname, platform,
  python, cpu_count) *and* worker count — wall-clock numbers from
  different machines are not comparable.
* ``info`` — the stall-cause mix shifted (where the cycles went moved,
  even if IPC held); improvements are reported here too.

Entry points::

    repro-exp diff A.manifest.json B.manifest.json   # console script
    repro-exp report RUN.manifest.json OUT.html      # HTML report
    fxa-experiments ... --baseline A.manifest.json   # gate a CLI run

and :func:`append_trajectory` accumulates each run's aggregates into a
``BENCH_trajectory.json`` history so the perf trajectory of the repo
builds up run over run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atomicio import locked, replace_json
from repro.obs.manifest import RunManifest

#: Exit code of ``repro-exp diff`` / the CLI ``--baseline`` gate when at
#: least one metric regressed past its threshold.  Distinct from 1
#: (crash) and 2 (usage error / aborted sweep).
EXIT_REGRESSION = 3


@dataclass
class DiffThresholds:
    """Relative-change tolerances; changes inside them are ignored."""

    ipc: float = 0.02            # IPC drop > 2 % -> regression
    energy: float = 0.02         # energy/instruction rise > 2 %
    sim_speed: float = 0.30      # insts/second drop > 30 % -> warning
    stall_share: float = 0.05    # stall-mix share move > 5 pts -> info


@dataclass
class MetricDelta:
    """One metric's change between the two manifests."""

    model: str
    benchmark: str
    metric: str
    base: float
    new: float
    severity: str                # "regression" | "warning" | "info"
    note: str = ""

    @property
    def rel_change(self) -> float:
        if not self.base:
            return 0.0
        return self.new / self.base - 1.0

    def describe(self) -> str:
        where = f"{self.model}/{self.benchmark}" if self.benchmark \
            else self.model
        text = (f"{self.severity:>10s}  {where:28s} {self.metric:24s} "
                f"{self.base:12.4f} -> {self.new:12.4f} "
                f"({self.rel_change:+.1%})")
        if self.note:
            text += f"  [{self.note}]"
        return text

    def to_dict(self) -> Dict:
        return {
            "model": self.model, "benchmark": self.benchmark,
            "metric": self.metric, "base": self.base, "new": self.new,
            "rel_change": self.rel_change, "severity": self.severity,
            "note": self.note,
        }


@dataclass
class DiffReport:
    """Everything :func:`diff_manifests` found, worst first."""

    deltas: List[MetricDelta] = field(default_factory=list)
    compared: int = 0            # (model, benchmark) pairs compared
    sim_speed_compared: bool = False

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.severity == "regression"]

    @property
    def warnings(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict:
        return {
            "compared": self.compared,
            "sim_speed_compared": self.sim_speed_compared,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "warnings": len(self.warnings),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _aggregate_index(manifest: RunManifest) -> Dict[Tuple[str, str],
                                                    Dict]:
    return {
        (entry["model"], entry["benchmark"]): entry
        for entry in manifest.aggregates
    }


def _hosts_comparable(a: RunManifest, b: RunManifest) -> bool:
    keys = ("hostname", "platform", "python", "cpu_count")
    return (all(a.host.get(k) == b.host.get(k) for k in keys)
            and a.workers == b.workers)


def diff_manifests(base: RunManifest, new: RunManifest,
                   thresholds: Optional[DiffThresholds] = None
                   ) -> DiffReport:
    """Compare ``new`` against ``base`` per (model, benchmark) pair.

    Only pairs present in both manifests are metric-compared; pairs
    that disappeared become warnings, new pairs are informational.
    """
    thresholds = thresholds or DiffThresholds()
    base_index = _aggregate_index(base)
    new_index = _aggregate_index(new)
    report = DiffReport(
        sim_speed_compared=_hosts_comparable(base, new))

    for key in sorted(set(base_index) - set(new_index)):
        report.deltas.append(MetricDelta(
            model=key[0], benchmark=key[1], metric="present",
            base=1.0, new=0.0, severity="warning",
            note="pair missing from new manifest"))
    for key in sorted(set(new_index) - set(base_index)):
        report.deltas.append(MetricDelta(
            model=key[0], benchmark=key[1], metric="present",
            base=0.0, new=1.0, severity="info",
            note="pair new in this manifest"))

    for key in sorted(set(base_index) & set(new_index)):
        model, benchmark = key
        old, cur = base_index[key], new_index[key]
        report.compared += 1

        old_ipc, cur_ipc = old.get("ipc", 0.0), cur.get("ipc", 0.0)
        if old_ipc > 0 and cur_ipc > 0:
            change = cur_ipc / old_ipc - 1.0
            if change < -thresholds.ipc:
                report.deltas.append(MetricDelta(
                    model, benchmark, "ipc", old_ipc, cur_ipc,
                    "regression"))
            elif change > thresholds.ipc:
                report.deltas.append(MetricDelta(
                    model, benchmark, "ipc", old_ipc, cur_ipc,
                    "info", note="improvement"))

        old_epi = old.get("energy_per_instruction", 0.0)
        cur_epi = cur.get("energy_per_instruction", 0.0)
        if old_epi > 0 and cur_epi > 0:
            change = cur_epi / old_epi - 1.0
            if change > thresholds.energy:
                report.deltas.append(MetricDelta(
                    model, benchmark, "energy_per_instruction",
                    old_epi, cur_epi, "regression"))
            elif change < -thresholds.energy:
                report.deltas.append(MetricDelta(
                    model, benchmark, "energy_per_instruction",
                    old_epi, cur_epi, "info", note="improvement"))

        _diff_stall_mix(report, model, benchmark,
                        old.get("stalls") or {}, cur.get("stalls") or {},
                        thresholds.stall_share)

        if report.sim_speed_compared:
            old_speed = old.get("insts_per_second", 0.0)
            cur_speed = cur.get("insts_per_second", 0.0)
            if old_speed > 0 and cur_speed > 0:
                change = cur_speed / old_speed - 1.0
                if change < -thresholds.sim_speed:
                    report.deltas.append(MetricDelta(
                        model, benchmark, "insts_per_second",
                        old_speed, cur_speed, "warning",
                        note="simulator slowdown"))

    rank = {"regression": 0, "warning": 1, "info": 2}
    report.deltas.sort(
        key=lambda d: (rank[d.severity], d.model, d.benchmark, d.metric))
    return report


def _diff_stall_mix(report: DiffReport, model: str, benchmark: str,
                    old: Dict[str, int], cur: Dict[str, int],
                    threshold: float) -> None:
    """Share-of-total comparison of the stall-cause mix (info only:
    cycles moving between causes is diagnosis, not a gate)."""
    old_total, cur_total = sum(old.values()), sum(cur.values())
    if not old_total or not cur_total:
        return
    for cause in sorted(set(old) | set(cur)):
        old_share = old.get(cause, 0) / old_total
        cur_share = cur.get(cause, 0) / cur_total
        if abs(cur_share - old_share) > threshold:
            report.deltas.append(MetricDelta(
                model, benchmark, f"stall_share.{cause}",
                old_share, cur_share, "info",
                note="stall mix shifted"))


def format_diff_report(report: DiffReport, base_label: str = "base",
                       new_label: str = "new") -> str:
    """Human-readable summary, regressions first."""
    lines = [
        f"Manifest diff: {new_label} vs {base_label} "
        f"({report.compared} pair(s) compared"
        + ("" if report.sim_speed_compared
           else "; sim-speed skipped: different hosts") + ")"
    ]
    if not report.deltas:
        lines.append("  no changes beyond thresholds")
    for delta in report.deltas:
        lines.append("  " + delta.describe())
    lines.append(
        f"result: {'OK' if report.ok else 'REGRESSED'} "
        f"({len(report.regressions)} regression(s), "
        f"{len(report.warnings)} warning(s))")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Benchmark trajectory history
# ----------------------------------------------------------------------


def append_trajectory(manifest: RunManifest, path: str) -> Dict:
    """Append this run's per-model aggregate roll-up to the JSON
    history at ``path`` (created on first use); returns the entry.

    Each entry reduces the manifest's aggregates to one row per model
    (mean IPC, mean energy/instruction, benchmark count) plus enough
    provenance (code version, host, timestamps, sweep shape) to plot a
    perf trajectory across commits.
    """
    models: Dict[str, Dict] = {}
    for aggregate in manifest.aggregates:
        row = models.setdefault(aggregate["model"], {
            "ipc_sum": 0.0, "epi_sum": 0.0, "benchmarks": 0,
        })
        row["ipc_sum"] += aggregate.get("ipc", 0.0)
        row["epi_sum"] += aggregate.get("energy_per_instruction", 0.0)
        row["benchmarks"] += 1
    entry = {
        "finished_at": manifest.finished_at,
        "code_version": manifest.code_version,
        "repro_version": manifest.repro_version,
        "host": manifest.host,
        "measure": manifest.measure,
        "warmup": manifest.warmup,
        "seed": manifest.seed,
        "workers": manifest.workers,
        "wall_seconds": manifest.wall_seconds,
        "jobs_simulated": manifest.jobs_simulated,
        "models": {
            model: {
                "mean_ipc": row["ipc_sum"] / row["benchmarks"],
                "mean_energy_per_instruction":
                    row["epi_sum"] / row["benchmarks"],
                "benchmarks": row["benchmarks"],
            }
            for model, row in sorted(models.items())
        },
    }
    return append_history_entry(entry, path)


def append_history_entry(entry: Dict, path: str) -> Dict:
    """Append ``entry`` to the ``{"entries": [...]}`` JSON history at
    ``path`` (created on first use); returns the entry.  Shared by the
    ``--trajectory`` IPC/energy history and the simspeed throughput
    history (BENCH_simspeed.json) so both files read identically.

    Safe under concurrency: the read-modify-write runs under an
    exclusive lock on a ``<path>.lock`` sidecar and the new history is
    published with tmp file + ``os.replace``, so two sweeps appending
    to one trajectory file lose no entries and concurrent readers
    never see torn JSON.  A corrupt or truncated history (which may
    hold months of trajectory) is preserved as ``<path>.corrupt``
    before a fresh history is started, never silently discarded.
    """
    with locked(path):
        history: object = None
        corrupt = False
        try:
            with open(path) as handle:
                history = json.load(handle)
        except FileNotFoundError:
            pass
        except (json.JSONDecodeError, UnicodeDecodeError):
            corrupt = True
        if not (history is None or isinstance(history, dict)):
            corrupt = True
        if corrupt:
            os.replace(path, f"{path}.corrupt")
            history = None
        if history is None:
            history = {"entries": []}
        history.setdefault("entries", []).append(entry)
        replace_json(path, history, indent=2, sort_keys=True,
                     trailing_newline=True)
    return entry


# ----------------------------------------------------------------------
# The repro-exp console script
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Manifest-level experiment utilities.")
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff", help="compare two run manifests for regressions "
                     f"(exit {EXIT_REGRESSION} on a threshold breach)")
    diff.add_argument("base", help="baseline *.manifest.json")
    diff.add_argument("new", help="candidate *.manifest.json")
    diff.add_argument("--threshold", type=float, default=None,
                      metavar="FRAC",
                      help="IPC/energy regression tolerance "
                           "(default 0.02 = 2%%)")
    diff.add_argument("--json", metavar="PATH", default=None,
                      help="also write the report as JSON")
    diff.add_argument("--trajectory", metavar="PATH", default=None,
                      help="append the candidate manifest's aggregates "
                           "to this history file")

    report = sub.add_parser(
        "report", help="render a manifest as a self-contained static "
                       "HTML report (offline-viewable, no JS/assets)")
    report.add_argument("manifest", help="run *.manifest.json")
    report.add_argument("output", help="output HTML path")
    report.add_argument("--baseline", metavar="MANIFEST", default=None,
                        help="baseline manifest for an A/B section")
    report.add_argument("--title", default=None,
                        help="report title (default derives from the "
                             "manifest path)")

    # Lazy import: repro.experiments.cli imports this module at import
    # time, so pulling in the experiments package here would cycle.
    from repro.experiments import dse as dse_module
    from repro.serve import server as serve_module
    from repro.serve import spool as spool_module
    from repro.serve import top as top_module

    dse = sub.add_parser(
        "dse", help="design-space autotuner: successive-halving sweep "
                    "over a config space, exact (IPC, energy, area) "
                    "Pareto frontier")
    dse_module.configure_parser(dse)

    serve = sub.add_parser(
        "serve", help="simulation-as-a-service: asyncio HTTP/JSON job "
                      "server over the sweep engine (cache dedup, "
                      "fault-tolerant pool, streamed progress)")
    serve_module.configure_parser(serve)

    worker = sub.add_parser(
        "spool-worker", help="claim and execute queued jobs from a "
                             "shared spool directory (multi-host "
                             "execution behind repro-exp serve)")
    spool_module.configure_parser(worker)

    top = sub.add_parser(
        "top", help="live terminal dashboard for a running server: "
                    "queue depth, hit ratio, latency percentiles, "
                    "throughput sparklines from /v1/metrics")
    top_module.configure_parser(top)

    args = parser.parse_args(argv)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "dse":
        return dse_module.cmd(args)
    if args.command == "serve":
        return serve_module.cmd(args)
    if args.command == "spool-worker":
        return spool_module.cmd(args)
    if args.command == "top":
        return top_module.cmd(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


def _cmd_diff(args) -> int:
    thresholds = DiffThresholds()
    if args.threshold is not None:
        if args.threshold <= 0:
            print("--threshold must be positive", file=sys.stderr)
            return 2
        thresholds.ipc = thresholds.energy = args.threshold
    try:
        base = RunManifest.read(args.base)
        new = RunManifest.read(args.new)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"repro-exp diff: cannot load manifest: {exc}",
              file=sys.stderr)
        return 2
    if not base.aggregates or not new.aggregates:
        print("repro-exp diff: manifest has no aggregates "
              "(produced by an older harness version?)",
              file=sys.stderr)
        return 2
    report = diff_manifests(base, new, thresholds)
    print(format_diff_report(report, base_label=args.base,
                             new_label=args.new))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    if args.trajectory:
        append_trajectory(new, args.trajectory)
        print(f"trajectory appended to {args.trajectory}")
    return 0 if report.ok else EXIT_REGRESSION


def _cmd_report(args) -> int:
    from repro.obs.report import write_report

    try:
        manifest = RunManifest.read(args.manifest)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"repro-exp report: cannot load manifest: {exc}",
              file=sys.stderr)
        return 2
    baseline = None
    if args.baseline is not None:
        try:
            baseline = RunManifest.read(args.baseline)
        except (OSError, json.JSONDecodeError, KeyError,
                TypeError) as exc:
            print(f"repro-exp report: cannot load baseline: {exc}",
                  file=sys.stderr)
            return 2
    title = args.title or f"FXA experiment report - {args.manifest}"
    write_report(args.output, manifest, baseline=baseline,
                 base_label=args.baseline or "baseline", title=title)
    print(f"report written to {args.output}")
    return 0


def run() -> None:
    """Console-script entry point (``repro-exp``)."""
    raise SystemExit(main())


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "EXIT_REGRESSION",
    "DiffThresholds",
    "MetricDelta",
    "DiffReport",
    "diff_manifests",
    "format_diff_report",
    "append_trajectory",
    "main",
    "run",
]

"""Self-contained static HTML run reports (``repro-exp report``).

One invocation of the experiment harness leaves several artifacts
behind — a manifest, ``--metrics-json`` payloads, timelines, stall
tables.  This module folds them into a single offline-viewable HTML
file: provenance, per-run aggregates, the top-down slot trees and
energy-by-class tables from :mod:`repro.obs.topdown`, stall-mix bars,
timeline sparklines, and (optionally) an A/B section rendered from the
same :func:`~repro.obs.diffrun.diff_manifests` comparison the
``--baseline`` gate uses.

The output is deliberately dependency-free: no JavaScript, no external
stylesheets, fonts or images — bars are CSS widths, sparklines are
inline SVG polylines — so the file renders anywhere (CI artifact
viewers, ``file://``, mail attachments) exactly as generated.

Entry points::

    repro-exp report RUN.manifest.json OUT.html [--baseline BASE]
    fxa-experiments ... --report OUT.html [--report-baseline BASE]

The CLI path passes live collector payloads; the ``repro-exp`` path
recovers the top-down payloads embedded in the manifest aggregates, so
a report can be (re)built from a manifest alone, after the fact.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence

from repro.obs.manifest import RunManifest
from repro.obs.topdown import (
    ENERGY_CLASSES,
    SLOT_LEAVES,
    merge_topdown_payloads,
    rollup_slots,
)

#: Top-level category colours (muted, print-safe).
_CATEGORY_COLORS = {
    "retiring": "#2e7d32",
    "bad_speculation": "#c62828",
    "frontend_bound": "#ef6c00",
    "backend_bound": "#1565c0",
}

_SEVERITY_COLORS = {
    "regression": "#c62828",
    "warning": "#ef6c00",
    "info": "#546e7a",
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #212121;
       line-height: 1.45; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1565c0;
     padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 2em; color: #1565c0; }
h3 { font-size: 1em; margin-bottom: .3em; }
table { border-collapse: collapse; margin: .6em 0; font-size: .85em; }
th, td { border: 1px solid #ddd; padding: .25em .6em;
         text-align: right; }
th { background: #f5f5f5; }
td.l, th.l { text-align: left; }
.bar { display: inline-block; height: .75em; vertical-align: baseline;
       background: #90a4ae; }
.tree td.label { text-align: left; font-family: monospace;
                 white-space: pre; }
.muted { color: #757575; font-size: .85em; }
.mono { font-family: monospace; }
.sev { font-weight: 600; }
svg.spark { vertical-align: middle; }
"""


def _fmt(value, digits: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return escape(str(value))


def _sparkline(values: Sequence[float], width: int = 260,
               height: int = 36) -> str:
    """Inline SVG polyline of ``values`` (empty string when < 2)."""
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{index * step:.1f},"
        f"{height - 2 - (value - low) / span * (height - 4):.1f}"
        for index, value in enumerate(values))
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#1565c0" stroke-width="1.2" '
            f'points="{points}"/></svg>')


def _bar(share: float, color: str, scale: float = 220) -> str:
    width = max(0.0, min(1.0, share)) * scale
    return (f'<span class="bar" '
            f'style="width:{width:.1f}px;background:{color}"></span>')


def _kv_table(rows: Sequence[tuple]) -> List[str]:
    parts = ["<table>"]
    for key, value in rows:
        parts.append(f'<tr><th class="l">{escape(str(key))}</th>'
                     f'<td class="l">{_fmt(value)}</td></tr>')
    parts.append("</table>")
    return parts


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------


def _provenance_section(manifest: RunManifest) -> List[str]:
    host = manifest.host or {}
    cache = manifest.cache or {}
    rows = [
        ("command", " ".join(manifest.command) or "-"),
        ("experiments", ", ".join(manifest.experiments) or "-"),
        ("benchmarks", ", ".join(manifest.benchmarks)
            if manifest.benchmarks else "full suite"),
        ("measure / warmup / seed",
         f"{manifest.measure} / {manifest.warmup} / {manifest.seed}"),
        ("code version", manifest.code_version or "-"),
        ("host", f"{host.get('hostname', '?')} "
                 f"({host.get('platform', '?')}, "
                 f"python {host.get('python', '?')}, "
                 f"{host.get('cpu_count', '?')} cpus)"),
        ("started / finished",
         f"{manifest.started_at or '?'} - {manifest.finished_at or '?'}"),
        ("wall seconds", round(manifest.wall_seconds, 2)),
        ("workers", manifest.workers),
        ("jobs simulated / failed",
         f"{manifest.jobs_simulated} / {manifest.jobs_failed}"),
        ("cache", ", ".join(f"{key}={value}"
                            for key, value in sorted(cache.items()))
            or "-"),
    ]
    return ["<h2>Provenance</h2>", *_kv_table(rows)]


def _aggregates_section(manifest: RunManifest) -> List[str]:
    if not manifest.aggregates:
        return []
    parts = ["<h2>Run aggregates</h2>", "<table>",
             '<tr><th class="l">model</th><th class="l">benchmark</th>'
             "<th>IPC</th><th>cycles</th><th>committed</th>"
             "<th>energy (pJ)</th><th>pJ/inst</th>"
             "<th>insts/s</th><th>FF cycles</th></tr>"]
    for entry in sorted(manifest.aggregates,
                        key=lambda e: (e.get("model", ""),
                                       e.get("benchmark", ""))):
        parts.append(
            "<tr>"
            f'<td class="l">{escape(str(entry.get("model", "?")))}</td>'
            f'<td class="l">'
            f'{escape(str(entry.get("benchmark", "?")))}</td>'
            f"<td>{_fmt(entry.get('ipc', 0.0))}</td>"
            f"<td>{_fmt(entry.get('cycles', 0))}</td>"
            f"<td>{_fmt(entry.get('committed', 0))}</td>"
            f"<td>{_fmt(entry.get('energy_total', 0.0), 1)}</td>"
            f"<td>{_fmt(entry.get('energy_per_instruction', 0.0))}</td>"
            f"<td>{_fmt(entry.get('insts_per_second', 0.0), 0)}</td>"
            f"<td>{_fmt(entry.get('ff_skipped_cycles', 0))}</td>"
            "</tr>")
    parts.append("</table>")
    parts.append('<p class="muted">FF cycles = cycles the fast-forward '
                 'kernel jumped instead of ticking serially.</p>')
    return parts


def topdowns_from_manifest(manifest: RunManifest) -> Dict[str, Dict]:
    """Recover per-model merged top-down payloads from the ``topdown``
    key the CLI embeds in each manifest aggregate entry (empty dict
    when the sweep ran without ``--topdown``/``--report``)."""
    per_model: Dict[str, List[Dict]] = {}
    for entry in manifest.aggregates:
        payload = entry.get("topdown")
        if payload:
            per_model.setdefault(entry.get("model", "?"),
                                 []).append(payload)
    return {model: merge_topdown_payloads(payloads)
            for model, payloads in sorted(per_model.items())}


def _topdown_section(merged: Dict[str, Dict]) -> List[str]:
    if not merged:
        return []
    parts = ["<h2>Top-down slot accounting</h2>",
             '<p class="muted">Every issue slot (commit width &times; '
             "cycles) attributed hierarchically; retiring is split by "
             "execution unit (IXU vs OXU, the paper's Figure 6 "
             "coverage).</p>"]
    rows: List[str] = []
    for leaf in SLOT_LEAVES:
        leaf_parts = leaf.split(".")
        for depth in range(1, len(leaf_parts) + 1):
            prefix = ".".join(leaf_parts[:depth])
            if prefix not in rows:
                rows.append(prefix)
    for model, payload in merged.items():
        total = payload.get("total_slots", 0) or 1
        tree = rollup_slots(payload.get("slots", {}))
        parts.append(f"<h3>{escape(model)} "
                     f'<span class="muted">({_fmt(total)} slots, '
                     f'width {payload.get("width", "?")})</span></h3>')
        parts.append('<table class="tree">')
        parts.append('<tr><th class="l">category</th>'
                     "<th>share</th><th>slots</th>"
                     '<th class="l">&nbsp;</th></tr>')
        for row in rows:
            count = tree.get(row, 0)
            share = count / total
            depth = row.count(".")
            label = "  " * depth + row.rsplit(".", 1)[-1]
            color = _CATEGORY_COLORS.get(
                row.split(".", 1)[0], "#90a4ae")
            parts.append(
                "<tr>"
                f'<td class="label">{escape(label)}</td>'
                f"<td>{share:.1%}</td><td>{_fmt(count)}</td>"
                f'<td class="l">{_bar(share, color)}</td></tr>')
        parts.append("</table>")
    return parts


def _energy_section(merged: Dict[str, Dict]) -> List[str]:
    if not merged:
        return []
    models = list(merged)
    parts = ["<h2>Energy by instruction class</h2>", "<table>",
             '<tr><th class="l">class</th>'
             + "".join(f"<th>{escape(model)} (pJ)</th><th>share</th>"
                       for model in models) + "</tr>"]
    totals = {model: merged[model].get("energy_total", 0.0) or 1.0
              for model in models}
    for key in ENERGY_CLASSES:
        cells = []
        for model in models:
            energy = merged[model].get(
                "energy_by_class", {}).get(key, 0.0)
            cells.append(f"<td>{_fmt(energy, 1)}</td>"
                         f"<td>{energy / totals[model]:.1%}</td>")
        parts.append(f'<tr><td class="l mono">{escape(key)}</td>'
                     + "".join(cells) + "</tr>")
    parts.append('<tr><th class="l">total</th>'
                 + "".join(f"<th>{_fmt(merged[m].get('energy_total', 0.0), 1)}"
                           f"</th><th>100%</th>" for m in models)
                 + "</tr>")
    parts.append("</table>")
    return parts


def _stalls_section(manifest: RunManifest) -> List[str]:
    entries = [e for e in manifest.aggregates if e.get("stalls")]
    if not entries:
        return []
    parts = ["<h2>Stall-cause mix</h2>"]
    for entry in sorted(entries, key=lambda e: (e.get("model", ""),
                                                e.get("benchmark", ""))):
        stalls = entry["stalls"]
        total = sum(stalls.values()) or 1
        parts.append(
            f"<h3>{escape(str(entry.get('model', '?')))}/"
            f"{escape(str(entry.get('benchmark', '?')))} "
            f'<span class="muted">({_fmt(total)} stall cycles)'
            "</span></h3>")
        parts.append("<table>")
        for cause, cycles in sorted(stalls.items(),
                                    key=lambda kv: -kv[1]):
            if not cycles:
                continue
            share = cycles / total
            parts.append(
                f'<tr><td class="l mono">{escape(cause)}</td>'
                f"<td>{share:.1%}</td><td>{_fmt(cycles)}</td>"
                f'<td class="l">{_bar(share, "#90a4ae")}</td></tr>')
        parts.append("</table>")
    return parts


def _timeline_section(timelines) -> List[str]:
    if not timelines:
        return []
    parts = ["<h2>Timelines</h2>",
             '<p class="muted">Per-interval IPC and energy per '
             "instruction (one point per sampling interval).</p>"]
    for collector in timelines:
        samples = getattr(collector, "samples", [])
        label = (f"{getattr(collector, 'model', '?')}/"
                 f"{getattr(collector, 'benchmark', '?')}")
        parts.append(f"<h3>{escape(label)} "
                     f'<span class="muted">({len(samples)} '
                     "interval(s))</span></h3>")
        if not samples:
            continue
        ipcs = [s.ipc for s in samples]
        epis = [s.energy_per_instruction for s in samples]
        parts.append("<table>")
        parts.append(f'<tr><td class="l">IPC</td>'
                     f"<td>{min(ipcs):.2f}..{max(ipcs):.2f}</td>"
                     f'<td class="l">{_sparkline(ipcs)}</td></tr>')
        parts.append(f'<tr><td class="l">pJ/inst</td>'
                     f"<td>{min(epis):.1f}..{max(epis):.1f}</td>"
                     f'<td class="l">{_sparkline(epis)}</td></tr>')
        parts.append("</table>")
    return parts


def _diff_section(manifest: RunManifest, baseline: RunManifest,
                  base_label: str) -> List[str]:
    from repro.obs.diffrun import diff_manifests

    report = diff_manifests(baseline, manifest)
    parts = ["<h2>A/B vs baseline</h2>",
             f'<p class="muted">Baseline: {escape(base_label)} '
             f"({report.compared} pair(s) compared"
             + ("" if report.sim_speed_compared
                else "; sim-speed skipped: different hosts") + ")</p>"]
    if not report.deltas:
        parts.append("<p>No changes beyond thresholds.</p>")
        return parts
    parts.append("<table>")
    parts.append('<tr><th class="l">severity</th><th class="l">where'
                 '</th><th class="l">metric</th><th>base</th>'
                 "<th>new</th><th>change</th>"
                 '<th class="l">note</th></tr>')
    for delta in report.deltas:
        color = _SEVERITY_COLORS.get(delta.severity, "#546e7a")
        where = (f"{delta.model}/{delta.benchmark}"
                 if delta.benchmark else delta.model)
        parts.append(
            "<tr>"
            f'<td class="l sev" style="color:{color}">'
            f"{escape(delta.severity)}</td>"
            f'<td class="l">{escape(where)}</td>'
            f'<td class="l mono">{escape(delta.metric)}</td>'
            f"<td>{_fmt(delta.base, 4)}</td>"
            f"<td>{_fmt(delta.new, 4)}</td>"
            f"<td>{delta.rel_change:+.1%}</td>"
            f'<td class="l">{escape(delta.note)}</td></tr>')
    parts.append("</table>")
    verdict = "OK" if report.ok else "REGRESSED"
    parts.append(f"<p><b>Result: {verdict}</b> "
                 f"({len(report.regressions)} regression(s), "
                 f"{len(report.warnings)} warning(s))</p>")
    return parts


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def render_report(manifest: RunManifest, *,
                  topdowns: Optional[Dict[str, Dict]] = None,
                  timelines=None,
                  baseline: Optional[RunManifest] = None,
                  base_label: str = "baseline",
                  title: str = "FXA experiment report") -> str:
    """Render the full HTML document as a string.

    Args:
        manifest: The run to report on.
        topdowns: Per-model *merged* top-down payloads
            (:func:`~repro.obs.topdown.merge_topdown_payloads`); when
            None they are recovered from the manifest aggregates.
        timelines: Optional sequence of
            :class:`~repro.obs.TimelineCollector` (live or rebuilt via
            ``from_dict``) for the sparkline section.
        baseline: Optional baseline manifest for the A/B section.
        base_label: Label naming the baseline (usually its path).
        title: Document title.
    """
    if topdowns is None:
        topdowns = topdowns_from_manifest(manifest)
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
    ]
    parts += _provenance_section(manifest)
    parts += _aggregates_section(manifest)
    parts += _topdown_section(topdowns)
    parts += _energy_section(topdowns)
    parts += _stalls_section(manifest)
    parts += _timeline_section(timelines)
    if baseline is not None:
        parts += _diff_section(manifest, baseline, base_label)
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(path: str, manifest: RunManifest, **kwargs) -> None:
    """Render and write the report to ``path``."""
    document = render_report(manifest, **kwargs)
    with open(path, "w") as stream:
        stream.write(document)
        stream.write("\n")


__all__ = [
    "render_report",
    "write_report",
    "topdowns_from_manifest",
]

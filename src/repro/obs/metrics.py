"""Metrics registry: named counters and bucketed histograms.

The observability layer records two kinds of measurements:

* **Counters** — monotonic event totals (IXU executes vs. NOP
  passthroughs, bypass-operand hits, stall/commit cycle counts).
* **Histograms** — per-cycle samples bucketed against fixed boundaries
  (IQ/ROB/LSQ occupancy), cheap enough to take every simulated cycle.

Everything here is disabled-by-default and zero-cost when off: the cores
only touch the registry behind a single ``is None`` guard per cycle, and
library users who want unconditional instrumentation sites can hold the
:data:`NULL_METRICS` registry, whose counters and histograms are shared
no-op singletons.

The registry serialises to a plain JSON-safe dict (``to_dict``), which is
how it rides inside :class:`~repro.core.stats.CoreStats` through the disk
cache and the CLI ``--json`` output.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A bucketed histogram with fixed upper-bound boundaries.

    ``bounds`` are inclusive upper edges; a sample lands in the first
    bucket whose bound is >= the sample, with one overflow bucket past
    the last bound (``counts`` has ``len(bounds) + 1`` cells).
    """

    __slots__ = ("name", "bounds", "counts", "total", "samples")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.samples = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.samples += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical samples (fast-forwarded cycles)."""
        self.counts[bisect_left(self.bounds, value)] += count
        self.total += value * count
        self.samples += count

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def to_dict(self) -> Dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict) -> "Histogram":
        hist = cls(name, data["bounds"])
        hist.counts = list(data["counts"])
        hist.total = data.get("total", 0.0)
        hist.samples = data.get("samples", 0)
        return hist

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} samples={self.samples} "
                f"mean={self.mean:.2f}>")


class _NullCounter:
    """Shared do-nothing counter (the disabled registry hands it out)."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def add(self, amount: int = 1) -> None:
        pass


class _NullHistogram:
    """Shared do-nothing histogram."""

    __slots__ = ()
    name = "<null>"
    bounds: List[float] = []
    counts: List[int] = []
    total = 0.0
    samples = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, count: int) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Create-on-demand store of named counters and histograms."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            if bounds is None:
                raise KeyError(
                    f"histogram {name!r} does not exist and no bounds "
                    f"were given to create it"
                )
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def to_dict(self) -> Dict:
        """JSON-safe dump: ``{"counters": {...}, "histograms": {...}}``."""
        return {
            "counters": self.counters(),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry._counters[name] = Counter(name, value)
        for name, payload in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(name, payload)
        return registry


class NullMetricsRegistry:
    """Disabled registry: every lookup returns a shared no-op object.

    Instrumentation sites that cannot afford a branch can hold this and
    call ``counter(...).add()`` unconditionally; nothing is recorded.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counters(self) -> Dict[str, int]:
        return {}

    def histograms(self) -> Dict:
        return {}

    def to_dict(self) -> Dict:
        return {"counters": {}, "histograms": {}}


#: The registry handed out when observability is off.
NULL_METRICS = NullMetricsRegistry()


def occupancy_bounds(capacity: int, buckets: int = 8) -> List[int]:
    """Evenly-spaced occupancy bucket bounds for a structure of
    ``capacity`` entries (last bound = capacity, so the overflow bucket
    stays empty and the distribution is exhaustive)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    buckets = min(buckets, capacity)
    bounds = sorted({
        max(1, (capacity * i) // buckets) for i in range(1, buckets + 1)
    })
    if bounds[-1] != capacity:
        bounds.append(capacity)
    return bounds

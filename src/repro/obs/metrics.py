"""Metrics registry: named counters and bucketed histograms.

The observability layer records two kinds of measurements:

* **Counters** — monotonic event totals (IXU executes vs. NOP
  passthroughs, bypass-operand hits, stall/commit cycle counts).
* **Histograms** — per-cycle samples bucketed against fixed boundaries
  (IQ/ROB/LSQ occupancy), cheap enough to take every simulated cycle.

Everything here is disabled-by-default and zero-cost when off: the cores
only touch the registry behind a single ``is None`` guard per cycle, and
library users who want unconditional instrumentation sites can hold the
:data:`NULL_METRICS` registry, whose counters and histograms are shared
no-op singletons.

The registry serialises to a plain JSON-safe dict (``to_dict``), which is
how it rides inside :class:`~repro.core.stats.CoreStats` through the disk
cache and the CLI ``--json`` output.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """A bucketed histogram with fixed upper-bound boundaries.

    ``bounds`` are inclusive upper edges; a sample lands in the first
    bucket whose bound is >= the sample, with one overflow bucket past
    the last bound (``counts`` has ``len(bounds) + 1`` cells).
    """

    __slots__ = ("name", "bounds", "counts", "total", "samples")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.samples = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.samples += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical samples (fast-forwarded cycles)."""
        self.counts[bisect_left(self.bounds, value)] += count
        self.total += value * count
        self.samples += count

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def to_dict(self) -> Dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict) -> "Histogram":
        hist = cls(name, data["bounds"])
        hist.counts = list(data["counts"])
        hist.total = data.get("total", 0.0)
        hist.samples = data.get("samples", 0)
        return hist

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} samples={self.samples} "
                f"mean={self.mean:.2f}>")


class Gauge:
    """A named value that can go up and down (queue depth, backlog)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


#: Family kinds recognised by :class:`Family` (Prometheus vocabulary).
FAMILY_KINDS = ("counter", "gauge", "histogram")


class Family:
    """A labeled metric family: one child metric per label-value tuple.

    Mirrors the Prometheus data model — ``labels(route="/v1/status",
    code="200")`` returns (creating on demand) the child
    :class:`Counter` / :class:`Gauge` / :class:`Histogram` for that
    label combination.  Children are keyed by the tuple of label values
    in declaration order, so lookup is a dict probe, not string
    formatting.
    """

    __slots__ = ("name", "kind", "label_names", "help", "bounds",
                 "_children")

    def __init__(self, name: str, kind: str,
                 label_names: Sequence[str], help_text: str = "",
                 bounds: Optional[Sequence[float]] = None):
        if kind not in FAMILY_KINDS:
            raise ValueError(f"unknown family kind {kind!r}")
        if kind == "histogram" and not bounds:
            raise ValueError("histogram family needs bucket bounds")
        self.name = name
        self.kind = kind
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self.help = help_text
        self.bounds = list(bounds) if bounds else None
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """Child metric for this label combination (created on demand)."""
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as exc:
            raise KeyError(
                f"family {self.name!r} requires labels "
                f"{self.label_names}, got {sorted(labels)}") from exc
        if len(labels) != len(self.label_names):
            raise KeyError(
                f"family {self.name!r} requires labels "
                f"{self.label_names}, got {sorted(labels)}")
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter(self.name)
            elif self.kind == "gauge":
                child = Gauge(self.name)
            else:
                child = Histogram(self.name, self.bounds or [1.0])
            self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs sorted by label values."""
        return sorted(self._children.items())

    def __repr__(self) -> str:
        return (f"<Family {self.name} kind={self.kind} "
                f"children={len(self._children)}>")


class _NullCounter:
    """Shared do-nothing counter (the disabled registry hands it out)."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def add(self, amount: int = 1) -> None:
        pass


class _NullHistogram:
    """Shared do-nothing histogram."""

    __slots__ = ()
    name = "<null>"
    bounds: List[float] = []
    counts: List[int] = []
    total = 0.0
    samples = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, count: int) -> None:
        pass


class _NullGauge:
    """Shared do-nothing gauge."""

    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float = 1.0) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_GAUGE = _NullGauge()


class _NullFamily:
    """Shared do-nothing family: ``labels(...)`` returns a no-op child."""

    __slots__ = ("_child",)
    name = "<null>"
    label_names: Tuple[str, ...] = ()
    help = ""

    def __init__(self, child):
        self._child = child

    def labels(self, **labels: object):
        return self._child

    def children(self) -> List:
        return []


_NULL_COUNTER_FAMILY = _NullFamily(_NULL_COUNTER)
_NULL_GAUGE_FAMILY = _NullFamily(_NULL_GAUGE)
_NULL_HISTOGRAM_FAMILY = _NullFamily(_NULL_HISTOGRAM)


class MetricsRegistry:
    """Create-on-demand store of named counters and histograms."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._families: Dict[str, Family] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            if bounds is None:
                raise KeyError(
                    f"histogram {name!r} does not exist and no bounds "
                    f"were given to create it"
                )
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def family(self, name: str, kind: str,
               label_names: Sequence[str], help_text: str = "",
               bounds: Optional[Sequence[float]] = None) -> Family:
        """Labeled metric family (created on first use).

        Re-requesting an existing family validates that kind and label
        names match the original declaration — a mismatch is a
        programming error, not a merge.
        """
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = Family(
                name, kind, label_names, help_text, bounds)
        elif (family.kind != kind
              or family.label_names != tuple(label_names)):
            raise ValueError(
                f"family {name!r} redeclared with different "
                f"kind/labels ({family.kind}{family.label_names} vs "
                f"{kind}{tuple(label_names)})")
        return family

    def counter_family(self, name: str, label_names: Sequence[str],
                       help_text: str = "") -> Family:
        return self.family(name, "counter", label_names, help_text)

    def gauge_family(self, name: str, label_names: Sequence[str],
                     help_text: str = "") -> Family:
        return self.family(name, "gauge", label_names, help_text)

    def histogram_family(self, name: str, label_names: Sequence[str],
                         bounds: Sequence[float],
                         help_text: str = "") -> Family:
        return self.family(name, "histogram", label_names, help_text,
                           bounds)

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def gauges(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def families(self) -> Dict[str, Family]:
        return dict(sorted(self._families.items()))

    def to_dict(self) -> Dict:
        """JSON-safe dump: ``{"counters": {...}, "histograms": {...}}``.

        Gauges and families are serving-side constructs; the keys only
        appear when populated so simulator results (which never use
        them) stay byte-identical to earlier releases.
        """
        data = {
            "counters": self.counters(),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }
        if self._gauges:
            data["gauges"] = self.gauges()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry._counters[name] = Counter(name, value)
        for name, payload in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(name, payload)
        for name, value in data.get("gauges", {}).items():
            registry._gauges[name] = Gauge(name, value)
        return registry


class NullMetricsRegistry:
    """Disabled registry: every lookup returns a shared no-op object.

    Instrumentation sites that cannot afford a branch can hold this and
    call ``counter(...).add()`` unconditionally; nothing is recorded.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def family(self, name: str, kind: str,
               label_names: Sequence[str], help_text: str = "",
               bounds: Optional[Sequence[float]] = None) -> _NullFamily:
        if kind == "gauge":
            return _NULL_GAUGE_FAMILY
        if kind == "histogram":
            return _NULL_HISTOGRAM_FAMILY
        return _NULL_COUNTER_FAMILY

    def counter_family(self, name: str, label_names: Sequence[str],
                       help_text: str = "") -> _NullFamily:
        return _NULL_COUNTER_FAMILY

    def gauge_family(self, name: str, label_names: Sequence[str],
                     help_text: str = "") -> _NullFamily:
        return _NULL_GAUGE_FAMILY

    def histogram_family(self, name: str, label_names: Sequence[str],
                         bounds: Sequence[float],
                         help_text: str = "") -> _NullFamily:
        return _NULL_HISTOGRAM_FAMILY

    def counters(self) -> Dict[str, int]:
        return {}

    def histograms(self) -> Dict:
        return {}

    def gauges(self) -> Dict[str, float]:
        return {}

    def families(self) -> Dict:
        return {}

    def to_dict(self) -> Dict:
        return {"counters": {}, "histograms": {}}


#: The registry handed out when observability is off.
NULL_METRICS = NullMetricsRegistry()


def occupancy_bounds(capacity: int, buckets: int = 8) -> List[int]:
    """Evenly-spaced occupancy bucket bounds for a structure of
    ``capacity`` entries (last bound = capacity, so the overflow bucket
    stays empty and the distribution is exhaustive)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    buckets = min(buckets, capacity)
    bounds = sorted({
        max(1, (capacity * i) // buckets) for i in range(1, buckets + 1)
    })
    if bounds[-1] != capacity:
        bounds.append(capacity)
    return bounds

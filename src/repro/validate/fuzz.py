"""Seeded configuration/workload fuzzer for the validation harness.

Each fuzz case is a deterministic function of ``(seed, index)``: a
benchmark, a trace seed and length, and one jittered configuration per
core family (in-order, out-of-order, FXA, clustered).  All four cores
run the identical trace under full differential + invariant validation
(:mod:`repro.validate.checker`), so a case fails when any model
diverges from the golden oracle or trips a microarchitectural
invariant.

CLI (also reachable as ``fxa-experiments --fuzz N --seed S``)::

    python -m repro.validate.fuzz --n 25 --seed 7
    python -m repro.validate.fuzz --seed 7 --case 13 --max-len 120 -v

``--case`` re-runs one failing case in isolation and ``--max-len``
truncates its trace — together they binary-search a minimal reproducer
(see VALIDATION.md).  ``--report`` writes the full JSON divergence
report (CI uploads it as an artifact on failure).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ClusterConfig, CoreConfig, IXUConfig
from repro.core.ooo import SimulationError
from repro.validate.checker import ValidationReport, Violation
from repro.validate.differential import validate_core
from repro.validate.oracle import GoldenOracle
from repro.workloads import ALL_BENCHMARKS
from repro.workloads.generator import generate_trace

_PREDICTORS = ("gshare", "bimodal", "tournament")
_IXU_STAGE_FUS: Tuple[Tuple[int, ...], ...] = (
    (3, 1, 1), (2, 1, 1), (2, 1), (1, 1), (2, 2, 2), (4, 1),
)
_STEERINGS = ("dependence", "roundrobin")


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic fuzz case: a workload plus four configs."""

    index: int
    benchmark: str
    trace_seed: int
    length: int
    configs: Tuple[CoreConfig, ...]

    def describe(self) -> str:
        models = ", ".join(c.name for c in self.configs)
        return (f"case {self.index}: {self.benchmark} "
                f"(trace seed {self.trace_seed}, {self.length} insts) "
                f"on {models}")


@dataclass
class FuzzResult:
    """Outcome of one fuzz sweep."""

    seed: int
    cases: List[FuzzCase] = field(default_factory=list)
    reports: List[ValidationReport] = field(default_factory=list)
    failing_case_indices: List[int] = field(default_factory=list)

    @property
    def failures(self) -> List[ValidationReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "cases": len(self.cases),
            "ok": self.ok,
            "reports": [r.to_dict() for r in self.reports],
        }


def sample_case(seed: int, index: int,
                max_len: Optional[int] = None) -> FuzzCase:
    """Derive fuzz case ``index`` of sweep ``seed`` (pure function)."""
    rng = random.Random(f"fxa-fuzz:{seed}:{index}")
    benchmark = rng.choice(ALL_BENCHMARKS)
    trace_seed = rng.randrange(1 << 30)
    length = rng.randrange(300, 901)
    if max_len is not None:
        length = min(length, max_len)

    def pipeline_jitter() -> Dict:
        return {
            "pht_entries": rng.choice((256, 1024, 4096)),
            "btb_entries": rng.choice((64, 256, 512)),
            "ras_depth": rng.choice((4, 8, 16)),
            "predictor_kind": rng.choice(_PREDICTORS),
            "fetch_to_rename": rng.randrange(2, 7),
            "decode_redirect_latency": rng.randrange(1, 4),
            "frontend_queue_depth": rng.randrange(4, 25),
        }

    inorder = CoreConfig(
        name=f"fuzz{index}-inorder",
        core_type="inorder",
        fetch_width=rng.randrange(1, 4),
        rename_width=1,
        issue_width=rng.randrange(1, 4),
        commit_width=4,
        iq_entries=1,
        rob_entries=1,
        fu_int=rng.randrange(1, 3),
        fu_mem=rng.randrange(1, 3),
        fu_fp=rng.randrange(1, 3),
        fetch_breaks_on_taken=rng.random() < 0.5,
        **pipeline_jitter(),
    )

    def ooo_kwargs() -> Dict:
        width = rng.randrange(1, 5)
        return {
            "core_type": "ooo",
            "fetch_width": rng.randrange(1, 5),
            "rename_width": width,
            "issue_width": rng.randrange(1, 5),
            "commit_width": rng.randrange(1, 5),
            "iq_entries": rng.randrange(4, 65),
            "rob_entries": rng.randrange(16, 129),
            "int_prf_entries": rng.randrange(40, 129),
            "fp_prf_entries": rng.randrange(40, 97),
            "lq_entries": rng.randrange(4, 33),
            "sq_entries": rng.randrange(4, 33),
            "fu_int": rng.randrange(1, 4),
            "fu_mem": rng.randrange(1, 3),
            "fu_fp": rng.randrange(1, 3),
            "prf_read_ports": rng.randrange(4, 13),
            "move_elimination": rng.random() < 0.5,
            "rename_to_dispatch": rng.randrange(1, 3),
            "dispatch_to_issue": rng.randrange(1, 4),
            **pipeline_jitter(),
        }

    ooo = CoreConfig(name=f"fuzz{index}-ooo", **ooo_kwargs())

    stage_fus = rng.choice(_IXU_STAGE_FUS)
    fxa = CoreConfig(
        name=f"fuzz{index}-fxa",
        ixu=IXUConfig(
            stage_fus=stage_fus,
            bypass_stage_limit=rng.choice(
                (None, 1, 2, len(stage_fus))
            ),
            execute_mem_ops=rng.random() < 0.8,
            execute_branches=rng.random() < 0.8,
        ),
        **ooo_kwargs(),
    )

    clustered = CoreConfig(
        name=f"fuzz{index}-ca",
        clusters=ClusterConfig(
            count=rng.randrange(2, 4),
            issue_width_per_cluster=rng.randrange(1, 3),
            int_fus_per_cluster=rng.randrange(1, 3),
            inter_cluster_delay=rng.randrange(0, 3),
            steering=rng.choice(_STEERINGS),
        ),
        **ooo_kwargs(),
    )

    return FuzzCase(index=index, benchmark=benchmark,
                    trace_seed=trace_seed, length=length,
                    configs=(inorder, ooo, fxa, clustered))


def run_case(case: FuzzCase,
             invariants: bool = True) -> List[ValidationReport]:
    """Validate every config of ``case`` on its shared trace."""
    trace = generate_trace(case.benchmark, case.length, case.trace_seed)
    reference = GoldenOracle().run(trace)
    reports = []
    for config in case.configs:
        try:
            report = validate_core(
                config, trace, invariants=invariants,
                benchmark=case.benchmark, reference=reference,
            )
        except SimulationError as error:
            # A wedged pipeline is a finding, not a fuzzer crash.
            report = ValidationReport(model=config.name,
                                      benchmark=case.benchmark)
            report.violations.append(Violation(
                kind="simulation_error", cycle=-1, seq=None,
                message=str(error),
            ))
        reports.append(report)
    return reports


def fuzz(n: int, seed: int, invariants: bool = True,
         case_index: Optional[int] = None,
         max_len: Optional[int] = None,
         verbose: bool = False) -> FuzzResult:
    """Run ``n`` fuzz cases (or just ``case_index``) for ``seed``."""
    result = FuzzResult(seed=seed)
    indices = ([case_index] if case_index is not None
               else list(range(n)))
    for index in indices:
        case = sample_case(seed, index, max_len=max_len)
        if verbose:
            print(case.describe())
        reports = run_case(case, invariants=invariants)
        result.cases.append(case)
        result.reports.extend(reports)
        if any(not r.ok for r in reports):
            result.failing_case_indices.append(case.index)
        if verbose:
            for report in reports:
                print(f"  {report.summary()}")
    return result


def render_failures(result: FuzzResult) -> str:
    """Human-readable first-divergence report for failing cases."""
    lines = []
    for report in result.failures:
        lines.append(report.describe())
        lines.append("")
    return "\n".join(lines).rstrip()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fuzz the core models against the golden oracle "
                    "and the microarchitectural invariant checkers.",
    )
    parser.add_argument("--n", type=int, default=25,
                        help="Number of fuzz cases (default 25).")
    parser.add_argument("--seed", type=int, default=0,
                        help="Sweep seed (default 0).")
    parser.add_argument("--case", type=int, default=None, metavar="K",
                        help="Run only case K of the sweep "
                             "(failure minimization).")
    parser.add_argument("--max-len", type=int, default=None, metavar="N",
                        help="Cap every case's trace length at N "
                             "(failure minimization).")
    parser.add_argument("--no-invariants", action="store_true",
                        help="Differential checks only (faster; used to "
                             "bisect oracle vs invariant failures).")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="Write the JSON divergence report to PATH.")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="Print each case and per-model outcome.")
    args = parser.parse_args(argv)
    if args.n < 1:
        parser.error("--n must be >= 1")
    result = fuzz(args.n, args.seed,
                  invariants=not args.no_invariants,
                  case_index=args.case, max_len=args.max_len,
                  verbose=args.verbose)
    if args.report:
        with open(args.report, "w") as stream:
            json.dump(result.to_dict(), stream, indent=2,
                      sort_keys=True)
        print(f"fuzz report written to {args.report}")
    checked = len(result.reports)
    if result.ok:
        print(f"fuzz OK: {len(result.cases)} case(s), {checked} "
              f"validated runs, seed {result.seed} — no divergence, "
              f"no invariant violation")
        return 0
    print(render_failures(result))
    print(f"fuzz FAILED: {len(result.failures)} of {checked} runs "
          f"across {len(result.cases)} case(s), seed {result.seed}")
    failing = result.failing_case_indices
    if failing:
        print(f"re-run one case with: python -m repro.validate.fuzz "
              f"--seed {result.seed} --case {failing[0]} -v")
    return 1


if __name__ == "__main__":
    sys.exit(main())

"""Differential and invariant checking attached to a running core.

A :class:`Validator` plugs into any core model through the same
optional-bundle pattern as :class:`repro.obs.Observability`: the core
holds it in ``self._validator`` and pays one ``is None`` test per hook
site when validation is off.  When attached, it performs two families
of checks:

**Differential (golden-oracle) checks**, at every commit:

* commits happen in program order, each sequence number exactly once
  (``commit_order``);
* the committed instruction is the trace's instruction for that
  sequence number (``commit_mismatch``);
* a shadow :class:`~repro.validate.oracle.GoldenOracle` replays the
  committed stream, and the final architectural register/memory state
  must equal the reference execution (``arch_state``);
* every trace instruction has committed by the end of the run
  (``commit_missing``).

**Microarchitectural invariants**, per cycle / per event:

* ``occupancy_*`` — ROB/IQ/LQ/SQ/free-list/front-end-queue occupancy
  never exceeds the configured capacity, and commit bandwidth never
  exceeds ``commit_width``;
* ``freelist_*`` / ``refcount`` — the free lists and the renamer's
  alias reference counts always partition the PRF: a physical register
  is free (refcount 0) or live (refcount > 0), never both, never
  neither (audited every ``audit_interval`` cycles and at the end);
* ``rat_recovery`` — after every squash, the speculative RAT must
  equal an independently-maintained shadow map recovered walk-back
  style (and the shadow is re-audited at run end);
* ``ixu_oxu_exclusive`` — an instruction executed in the IXU must
  never also have issued from the OXU issue queue (the paper's
  filtering invariant);
* ``lsq_order_unrecovered`` / ``ixu_store_premise`` /
  ``ixu_load_premise`` — whenever a store executes, no younger load to
  the same address may survive un-squashed having executed earlier;
  the IXU access-omission premises (paper Section II-D3) are checked
  explicitly;
* ``violation_unhandled`` — a detected store→load order violation must
  actually squash the violating load.

Violations are recorded (bounded by ``max_violations``) with
pipeview-style context: the last few committed instructions with their
issue/complete cycles, so a first divergence is immediately placeable
in the pipeline.  ``strict=True`` raises on the first violation
instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst
from repro.isa.registers import RegClass
from repro.validate.oracle import GoldenOracle, OracleResult

#: How many recent commits the divergence context shows.
CONTEXT_DEPTH = 8


class ValidationError(AssertionError):
    """Raised in strict mode on the first violated check."""


@dataclass(frozen=True)
class Violation:
    """One violated check."""

    kind: str
    cycle: int
    seq: Optional[int]
    message: str
    context: str = ""

    def describe(self) -> str:
        lines = [f"[{self.kind}] cycle {self.cycle}"
                 + (f" seq {self.seq}" if self.seq is not None else "")
                 + f": {self.message}"]
        if self.context:
            lines.append(self.context)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "seq": self.seq,
            "message": self.message,
            "context": self.context,
        }


@dataclass
class ValidationReport:
    """Outcome of one validated simulation."""

    model: str
    benchmark: str = ""
    committed: int = 0
    cycles: int = 0
    checked_commits: int = 0
    audits: int = 0
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        label = self.model + (f"/{self.benchmark}" if self.benchmark
                              else "")
        return (f"{label}: {state} "
                f"({self.committed} commits, {self.cycles} cycles, "
                f"{self.audits} audits)")

    def describe(self) -> str:
        lines = [self.summary()]
        for violation in self.violations:
            lines.append(violation.describe())
        if self.truncated:
            lines.append("... further violations suppressed")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "model": self.model,
            "benchmark": self.benchmark,
            "ok": self.ok,
            "committed": self.committed,
            "cycles": self.cycles,
            "checked_commits": self.checked_commits,
            "audits": self.audits,
            "truncated": self.truncated,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass(frozen=True)
class _CommitFrame:
    """Pipeview-style context line for one committed instruction."""

    cycle: int
    inst: DynInst
    fetch_cycle: int
    issue_cycle: int
    complete_cycle: int
    in_ixu: bool

    def describe(self) -> str:
        where = "IXU" if self.in_ixu else "OXU"
        return (f"  c{self.cycle:>6} {where} "
                f"f{self.fetch_cycle}/x{self.issue_cycle}"
                f"/w{self.complete_cycle}  {self.inst!r}")


class Validator:
    """Golden-oracle differential checker plus invariant checkers.

    Args:
        trace: The measured trace the core will run (``trace[i].seq ==
            i``); the oracle reference is computed from it up front.
        invariants: Also run the per-cycle/per-event microarchitectural
            invariant checks (differential checks always run).
        strict: Raise :class:`ValidationError` on the first violation
            instead of recording it.
        max_violations: Recording stops after this many violations (the
            first divergence is what matters; later ones are usually
            cascade noise).
        audit_interval: Cycle period of the O(PRF) free-list/refcount
            audit and the RAT shadow comparison.
        reference: A precomputed oracle execution of ``trace``.  The
            fuzzer validates several cores against one trace and passes
            the shared reference so the oracle runs once per trace.

    One instance validates exactly one core run, like an
    ``Observability`` bundle.
    """

    def __init__(self, trace: Sequence[DynInst], invariants: bool = True,
                 strict: bool = False, max_violations: int = 20,
                 audit_interval: int = 64,
                 reference: Optional[OracleResult] = None):
        if trace and trace[0].seq != 0:
            raise ValueError("validated trace must start at seq 0")
        self.trace = trace
        self.reference: OracleResult = (
            reference if reference is not None
            else GoldenOracle().run(trace)
        )
        self.invariants = invariants
        self.strict = strict
        self.max_violations = max_violations
        self.audit_interval = max(1, audit_interval)
        self.report = ValidationReport(model="?")
        self._shadow = GoldenOracle()
        self._expected_seq = 0
        self._context: Deque[_CommitFrame] = deque(maxlen=CONTEXT_DEPTH)
        self._attached = False
        self._has_renamer = False
        self._has_lsq = False
        # Independent walk-back RAT shadow: logical -> physical per
        # class, plus an undo log ordered by sequence number.
        self._shadow_rat: Dict[RegClass, Dict] = {}
        self._rat_undo: Deque[Tuple[int, RegClass, object, int]] = deque()

    # ------------------------------------------------------------------
    # Attachment (called from the core constructor)
    # ------------------------------------------------------------------

    def attach(self, core) -> None:
        if self._attached:
            raise RuntimeError(
                "a Validator validates exactly one core run; build a "
                "fresh one per simulation"
            )
        self._attached = True
        self._core = core
        self.report.model = core.config.name
        renamer = getattr(core, "renamer", None)
        self._has_renamer = renamer is not None
        self._has_lsq = getattr(core, "lsq", None) is not None
        if self._has_renamer:
            self._shadow_rat = {
                cls: rat.snapshot() for cls, rat in renamer.rat.items()
            }

    # ------------------------------------------------------------------
    # Violation recording
    # ------------------------------------------------------------------

    def _record(self, kind: str, cycle: int, seq: Optional[int],
                message: str, with_context: bool = True) -> None:
        context = self.format_context() if with_context else ""
        violation = Violation(kind=kind, cycle=cycle, seq=seq,
                              message=message, context=context)
        if self.strict:
            raise ValidationError(violation.describe())
        if len(self.report.violations) >= self.max_violations:
            self.report.truncated = True
            return
        self.report.violations.append(violation)

    def format_context(self) -> str:
        """Pipeview-style rendering of the most recent commits."""
        if not self._context:
            return "  (no commits yet)"
        header = "  recent commits (cycle, unit, fetch/exec/writeback):"
        return "\n".join(
            [header] + [frame.describe() for frame in self._context]
        )

    # ------------------------------------------------------------------
    # Differential hooks
    # ------------------------------------------------------------------

    def on_commit(self, core, entry) -> None:
        """One instruction committed (program-order callback)."""
        cycle = core.cycle
        inst = entry.inst
        self.report.checked_commits += 1
        expected = self._expected_seq
        if inst.seq != expected:
            self._record(
                "commit_order", cycle, inst.seq,
                f"committed seq {inst.seq}, expected seq {expected} "
                f"(out-of-order or duplicated commit)",
            )
            # Resynchronise past the divergence so later checks stay
            # meaningful rather than cascading.
            self._expected_seq = inst.seq + 1
        else:
            self._expected_seq = expected + 1
        reference = self.reference.records
        if inst.seq < len(reference):
            golden = reference[inst.seq].inst
            if golden is not inst and golden != inst:
                self._record(
                    "commit_mismatch", cycle, inst.seq,
                    f"committed {inst!r} but the trace holds {golden!r}",
                )
        else:
            self._record(
                "commit_mismatch", cycle, inst.seq,
                f"committed seq {inst.seq} beyond the "
                f"{len(reference)}-instruction trace",
            )
        # Architectural shadow replay of the committed stream.
        self._shadow.step(inst)
        self._context.append(_CommitFrame(
            cycle=cycle,
            inst=inst,
            fetch_cycle=entry.fetch_cycle,
            issue_cycle=(entry.ixu_exec_cycle if entry.executed_in_ixu
                         else entry.issue_cycle),
            complete_cycle=entry.complete_cycle,
            in_ixu=entry.executed_in_ixu,
        ))
        if self.invariants:
            if entry.executed_in_ixu and entry.issued:
                self._record(
                    "ixu_oxu_exclusive", cycle, inst.seq,
                    f"{inst!r} executed in the IXU and also issued "
                    f"from the OXU issue queue",
                )
            # The undo log only needs squashable (in-flight) entries.
            undo = self._rat_undo
            while undo and undo[0][0] <= inst.seq:
                undo.popleft()

    # ------------------------------------------------------------------
    # Invariant hooks
    # ------------------------------------------------------------------

    def on_rename(self, core, entry) -> None:
        """An instruction was renamed (shadow-RAT bookkeeping)."""
        if not self.invariants:
            return
        renamed = entry.renamed
        if renamed is None or renamed.dest_cls is None:
            return
        logical = entry.inst.dest
        shadow = self._shadow_rat[renamed.dest_cls]
        self._rat_undo.append(
            (entry.seq, renamed.dest_cls, logical, shadow[logical])
        )
        shadow[logical] = renamed.dest

    def on_squash(self, core, boundary_seq: int) -> None:
        """The core squashed everything younger than ``boundary_seq``."""
        if not self.invariants:
            return
        undo = self._rat_undo
        while undo and undo[-1][0] > boundary_seq:
            _, cls, logical, old_physical = undo.pop()
            self._shadow_rat[cls][logical] = old_physical
        self._check_rat_shadow(core, f"after squash to seq "
                                     f"{boundary_seq}")

    def _check_rat_shadow(self, core, when: str) -> None:
        for cls, rat in core.renamer.rat.items():
            actual = rat.snapshot()
            shadow = self._shadow_rat[cls]
            if actual != shadow:
                diffs = [
                    f"{logical!r}: core p{actual[logical]} != "
                    f"shadow p{shadow[logical]}"
                    for logical in sorted(actual, key=lambda r: r.index)
                    if actual[logical] != shadow[logical]
                ]
                self._record(
                    "rat_recovery", core.cycle, None,
                    f"{cls.value} RAT diverged from walk-back shadow "
                    f"{when}: " + "; ".join(diffs[:4]),
                )
                # Resynchronise to avoid cascading reports.
                self._shadow_rat[cls] = actual

    def on_violation(self, core, load_entry, store_entry) -> None:
        """The core detected a store→load order violation.

        Called after recovery ran: the violating load must be squashed.
        """
        if not self.invariants:
            return
        if not load_entry.squashed:
            self._record(
                "violation_unhandled", core.cycle, load_entry.seq,
                f"order violation of {load_entry.inst!r} by "
                f"{store_entry.inst!r} did not squash the load",
            )

    def on_store_executed(self, core, store_entry, in_ixu: bool) -> None:
        """A store just executed; audit the LSQ ordering invariants."""
        if not self.invariants or not self._has_lsq:
            return
        addr = store_entry.inst.mem_addr
        seq = store_entry.seq
        for load in core.lsq.loads:
            if (load.seq > seq and load.mem_executed
                    and not load.squashed
                    and load.inst.mem_addr == addr):
                if in_ixu:
                    kind = "ixu_store_premise"
                    message = (
                        f"IXU-executed store {store_entry.inst!r} "
                        f"skipped the violation search but younger "
                        f"load {load.inst!r} had already executed"
                    )
                elif not load.lsq_written:
                    kind = "ixu_load_premise"
                    message = (
                        f"load {load.inst!r} omitted its LSQ write "
                        f"(older-stores-executed premise) but older "
                        f"store {store_entry.inst!r} executed later"
                    )
                else:
                    kind = "lsq_order_unrecovered"
                    message = (
                        f"store {store_entry.inst!r} executed after "
                        f"younger same-address load {load.inst!r} "
                        f"without triggering recovery"
                    )
                self._record(kind, core.cycle, load.seq, message)

    def on_cycle(self, core, committed: int) -> None:
        """Per-cycle invariant sampling (cheap checks + periodic audit)."""
        if not self.invariants:
            return
        cycle = core.cycle
        config = core.config
        if committed > config.commit_width:
            self._record(
                "commit_width", cycle, None,
                f"committed {committed} > commit width "
                f"{config.commit_width}",
            )
        if self._has_renamer:
            rob = core.rob
            if len(rob) > rob.capacity:
                self._record(
                    "occupancy_rob", cycle, None,
                    f"ROB holds {len(rob)} > {rob.capacity}",
                )
            iq = core.iq
            if len(iq) > iq.capacity:
                self._record(
                    "occupancy_iq", cycle, None,
                    f"IQ holds {len(iq)} > {iq.capacity}",
                )
            lsq = core.lsq
            if lsq.loads_free < 0:
                self._record(
                    "occupancy_lq", cycle, None,
                    f"load queue exceeds its "
                    f"{lsq.load_capacity}-entry capacity",
                )
            if lsq.stores_free < 0:
                self._record(
                    "occupancy_sq", cycle, None,
                    f"store queue exceeds its "
                    f"{lsq.store_capacity}-entry capacity",
                )
            for cls, free in core.renamer.free.items():
                if len(free) > free.capacity:
                    self._record(
                        "occupancy_freelist", cycle, None,
                        f"{cls.value} free list holds {len(free)} > "
                        f"capacity {free.capacity}",
                    )
            if cycle % self.audit_interval == 0:
                self._audit_freelists(core)
        else:
            queue = getattr(core, "issue_q", None)
            if (queue is not None
                    and len(queue) > config.frontend_queue_depth):
                self._record(
                    "occupancy_frontend_queue", cycle, None,
                    f"front-end queue holds {len(queue)} > "
                    f"{config.frontend_queue_depth}",
                )

    def _audit_freelists(self, core, quiescent: bool = False) -> None:
        """Free lists and refcounts partition the PRF exactly.

        When ``quiescent`` (end of run, nothing in flight) additionally
        requires every live register's refcount to equal the number of
        RAT entries aliasing it.
        """
        self.report.audits += 1
        renamer = core.renamer
        for cls, free in renamer.free.items():
            refcounts = renamer.refcounts(cls)
            free_ids = list(free)
            free_set = set(free_ids)
            if len(free_set) != len(free_ids):
                dupes = sorted(
                    i for i in free_set if free_ids.count(i) > 1
                )
                self._record(
                    "freelist_double_free", core.cycle, None,
                    f"{cls.value} free list holds duplicate ids "
                    f"{dupes[:8]}",
                )
            live = 0
            for preg, count in enumerate(refcounts):
                if count < 0:
                    self._record(
                        "refcount", core.cycle, None,
                        f"{cls.value} p{preg} refcount is {count}",
                    )
                in_free = preg in free_set
                if in_free and count > 0:
                    self._record(
                        "freelist_double_free", core.cycle, None,
                        f"{cls.value} p{preg} is free but still "
                        f"referenced (refcount {count})",
                    )
                elif not in_free and count == 0:
                    self._record(
                        "freelist_leak", core.cycle, None,
                        f"{cls.value} p{preg} has refcount 0 but is "
                        f"not on the free list (leaked)",
                    )
                if count > 0:
                    live += 1
            if live + len(free_set) != free.capacity:
                self._record(
                    "freelist_leak", core.cycle, None,
                    f"{cls.value} live ({live}) + free "
                    f"({len(free_set)}) != capacity {free.capacity}",
                )
            if quiescent:
                mapped: Dict[int, int] = {}
                for preg in renamer.rat[cls].snapshot().values():
                    mapped[preg] = mapped.get(preg, 0) + 1
                for preg, count in enumerate(refcounts):
                    expected = mapped.get(preg, 0)
                    if count != expected:
                        self._record(
                            "refcount", core.cycle, None,
                            f"{cls.value} p{preg} refcount {count} != "
                            f"{expected} RAT aliases at quiescence",
                        )

    # ------------------------------------------------------------------
    # Finalisation (called from core.run)
    # ------------------------------------------------------------------

    def finalize(self, core) -> ValidationReport:
        report = self.report
        report.committed = core.stats.committed
        report.cycles = core.stats.cycles
        benchmark = getattr(core.stats, "benchmark", "")
        if benchmark:
            report.benchmark = benchmark
        if self._expected_seq != len(self.trace):
            self._record(
                "commit_missing", core.cycle, self._expected_seq,
                f"run ended with {self._expected_seq} of "
                f"{len(self.trace)} instructions committed",
            )
        regs, mem = self._shadow.snapshot()
        reference = self.reference
        if regs != reference.final_regs:
            diffs = sorted(
                (reg for reg in set(regs) | set(reference.final_regs)
                 if regs.get(reg) != reference.final_regs.get(reg)),
                key=lambda r: (r.cls.value, r.index),
            )
            self._record(
                "arch_state", core.cycle, None,
                f"final register state diverges from the oracle on "
                f"{len(diffs)} register(s): "
                + ", ".join(repr(r) for r in diffs[:8]),
            )
        if mem != reference.final_mem:
            diffs = sorted(
                addr for addr in set(mem) | set(reference.final_mem)
                if mem.get(addr) != reference.final_mem.get(addr)
            )
            self._record(
                "arch_state", core.cycle, None,
                f"final memory state diverges from the oracle at "
                f"{len(diffs)} address(es): "
                + ", ".join(hex(a) for a in diffs[:8]),
            )
        if self.invariants and self._has_renamer:
            self._check_rat_shadow(core, "at end of run")
            self._audit_freelists(core, quiescent=True)
        return report

"""Run a core model under differential + invariant validation.

These are the entry points the CLI, the fuzzer and the test suite
share: build a :class:`~repro.validate.checker.Validator` for a trace,
attach it to a freshly-built core, run, and return the
:class:`~repro.validate.checker.ValidationReport`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.presets import MODEL_NAMES, build_core, model_config
from repro.isa.instruction import DynInst
from repro.validate.checker import ValidationReport, Validator
from repro.validate.oracle import GoldenOracle, OracleResult
from repro.workloads.generator import generate_trace

#: Models the ``--validate`` sweep covers: all Table I models plus the
#: clustered comparator, i.e. every core class in the repository.
VALIDATE_MODELS: Tuple[str, ...] = MODEL_NAMES + ("CA",)

#: Default ``--validate`` workload subset: one IXU-friendly integer
#: benchmark, one memory-ordering-heavy one, one FP-heavy one.
VALIDATE_BENCHMARKS: Tuple[str, ...] = ("hmmer", "mcf", "lbm")


def validate_core(spec: Union[str, CoreConfig],
                  trace: Sequence[DynInst],
                  invariants: bool = True,
                  strict: bool = False,
                  max_violations: int = 20,
                  benchmark: str = "",
                  reference: Optional[OracleResult] = None,
                  ) -> ValidationReport:
    """Simulate ``trace`` on one core model under full validation.

    Args:
        spec: Model name (``model_config`` key) or explicit config.
        trace: Measured trace with ``trace[i].seq == i``.
        invariants: Also run the microarchitectural invariant checks.
        strict: Raise on the first violation instead of recording.
        benchmark: Label recorded in the report.
        reference: Optional precomputed oracle result for ``trace``.

    Returns:
        The validation report (``report.ok`` when everything held).
    """
    config = model_config(spec) if isinstance(spec, str) else spec
    validator = Validator(trace, invariants=invariants, strict=strict,
                          max_violations=max_violations,
                          reference=reference)
    core = build_core(config, validator=validator)
    core.run(list(trace))
    if benchmark:
        validator.report.benchmark = benchmark
    return validator.report


def validate_model(model: str, benchmark: str, n: int = 2000,
                   seed: int = 0, **kwargs) -> ValidationReport:
    """Generate a trace and validate ``model`` on it."""
    trace = generate_trace(benchmark, n, seed)
    return validate_core(model, trace, benchmark=benchmark, **kwargs)


def validate_all(benchmarks: Optional[Sequence[str]] = None,
                 models: Sequence[str] = VALIDATE_MODELS,
                 n: int = 2000, seed: int = 0,
                 invariants: bool = True) -> List[ValidationReport]:
    """Validate every model on every benchmark; one report per pair.

    The oracle runs once per benchmark trace and is shared across the
    models (they all consume the identical instruction stream).
    """
    reports: List[ValidationReport] = []
    for benchmark in benchmarks or VALIDATE_BENCHMARKS:
        trace = generate_trace(benchmark, n, seed)
        reference = GoldenOracle().run(trace)
        for model in models:
            reports.append(validate_core(
                model, trace, invariants=invariants,
                benchmark=benchmark, reference=reference,
            ))
    return reports

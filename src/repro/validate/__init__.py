"""Differential validation harness (golden oracle + invariants + fuzz).

Three layers, documented in VALIDATION.md:

* :mod:`repro.validate.oracle` — the golden-execution oracle: a
  program-order functional executor defining the canonical
  architectural semantics of a trace.
* :mod:`repro.validate.checker` — the :class:`Validator` a core carries
  (``build_core(config, validator=...)``): per-commit differential
  checks against the oracle plus per-cycle microarchitectural
  invariant checks, behind the same ``is None`` guard as
  :mod:`repro.obs`.
* :mod:`repro.validate.fuzz` — the seeded configuration/workload
  fuzzer (``python -m repro.validate.fuzz`` or
  ``fxa-experiments --fuzz N --seed S``).
"""

from repro.validate.checker import (
    ValidationError,
    ValidationReport,
    Validator,
    Violation,
)
from repro.validate.differential import (
    VALIDATE_BENCHMARKS,
    VALIDATE_MODELS,
    validate_all,
    validate_core,
    validate_model,
)
from repro.validate.oracle import (
    CommitRecord,
    GoldenOracle,
    OracleResult,
    execute_trace,
    initial_mem_value,
    initial_reg_value,
    mix64,
)

__all__ = [
    "CommitRecord",
    "GoldenOracle",
    "OracleResult",
    "VALIDATE_BENCHMARKS",
    "VALIDATE_MODELS",
    "ValidationError",
    "ValidationReport",
    "Validator",
    "Violation",
    "execute_trace",
    "initial_mem_value",
    "initial_reg_value",
    "mix64",
    "validate_all",
    "validate_core",
    "validate_model",
]

"""Golden-execution oracle: a program-order functional executor.

The timing models are trace-driven — branch outcomes and effective
addresses are baked into the :class:`~repro.isa.DynInst` stream — so
the *architectural* semantics of a run are fully determined by the
trace alone.  The oracle makes those semantics explicit: it executes a
trace in program order under a canonical value model and produces the
reference commit trace and final architectural state every core model
must reproduce at commit.

Canonical value semantics (documented in VALIDATION.md):

* Every architectural register starts with a value derived from its
  class and index; every memory double-word starts with a value derived
  from its address.  Both derivations use a fixed 64-bit mixing
  function, so initial state is identical across processes and Python
  versions (no reliance on ``hash()``).
* ``MOV`` copies its source value exactly — this is what makes RENO
  move elimination checkable: an eliminated move must still behave as a
  copy at the architectural level.
* A load's destination receives the current memory value at its
  effective address (8-byte granularity, keyed by the exact address —
  the same address-equality model the LSQ uses).
* A store writes its data-source value (the last source operand) to
  memory; a store without a data source writes a value derived from
  its pc.
* Every other value-producing operation writes
  ``mix(op, pc, *source values)`` — a compression function, so any
  difference in executed operands or instruction identity propagates
  into every dependent value.
* Writes to the hard-wired zero register (r31/f31) are discarded and
  reads of it return zero, after the Alpha convention.
* Branches and other destination-less instructions change no
  architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst
from repro.isa.opclass import OpClass
from repro.isa.registers import Reg, RegClass

_MASK = (1 << 64) - 1

#: Stable small integers per op class (enum declaration order), used in
#: place of the enum's string value so mixing stays cheap.
_OP_TAG = {op: index for index, op in enumerate(OpClass)}

#: Domain tags keeping register and memory initial values disjoint.
_INT_REG_DOMAIN = 0x1
_FP_REG_DOMAIN = 0x2
_MEM_DOMAIN = 0x3


def mix64(*parts: int) -> int:
    """Deterministic 64-bit compression of integer parts.

    A splitmix64-style avalanche applied per part; used for initial
    state derivation and for every computed result value.
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc ^= part & _MASK
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _MASK
        acc ^= acc >> 31
    return acc


def initial_reg_value(reg: Reg) -> int:
    """Canonical power-on value of an architectural register."""
    if reg.is_zero:
        return 0
    domain = (_INT_REG_DOMAIN if reg.cls is RegClass.INT
              else _FP_REG_DOMAIN)
    return mix64(domain, reg.index)


def initial_mem_value(addr: int) -> int:
    """Canonical power-on value of the double-word at ``addr``."""
    return mix64(_MEM_DOMAIN, addr)


@dataclass(frozen=True)
class CommitRecord:
    """One architectural step of the oracle (program order).

    Attributes:
        inst: The executed dynamic instruction.
        dest_value: Value written to ``inst.dest`` (None when the
            instruction produces no register result).
        store_addr/store_value: The memory write performed, for stores.
    """

    inst: DynInst
    dest_value: Optional[int] = None
    store_addr: Optional[int] = None
    store_value: Optional[int] = None


@dataclass
class OracleResult:
    """Reference execution of one trace: commit trace + final state."""

    records: List[CommitRecord] = field(default_factory=list)
    final_regs: Dict[Reg, int] = field(default_factory=dict)
    final_mem: Dict[int, int] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return len(self.records)


class GoldenOracle:
    """Program-order functional executor over ``DynInst`` streams.

    Stateful: :meth:`step` executes one instruction and returns its
    :class:`CommitRecord`; :meth:`run` executes a whole trace.  The
    differential checker replays the very same class over a core's
    committed stream, so oracle and shadow can never drift apart on
    semantics — only on the instruction sequence actually executed.
    """

    def __init__(self) -> None:
        # Registers are materialised lazily from the canonical initial
        # values so the final-state dicts only carry touched entries.
        self._regs: Dict[Reg, int] = {}
        self._mem: Dict[int, int] = {}
        self.executed = 0

    # ---------------- state access ----------------

    def read_reg(self, reg: Reg) -> int:
        if reg.is_zero:
            return 0
        value = self._regs.get(reg)
        if value is None:
            value = initial_reg_value(reg)
            self._regs[reg] = value
        return value

    def _write_reg(self, reg: Reg, value: int) -> None:
        if not reg.is_zero:
            self._regs[reg] = value

    def read_mem(self, addr: int) -> int:
        value = self._mem.get(addr)
        if value is None:
            value = initial_mem_value(addr)
            self._mem[addr] = value
        return value

    # ---------------- execution ----------------

    def step(self, inst: DynInst) -> CommitRecord:
        """Execute one instruction architecturally."""
        self.executed += 1
        srcs: Tuple[int, ...] = tuple(self.read_reg(s) for s in inst.srcs)
        if inst.is_store:
            # Sources are (address source[, data source]); the data
            # value is the last operand when present.
            value = srcs[-1] if len(srcs) > 1 else mix64(inst.pc)
            self._mem[inst.mem_addr] = value
            return CommitRecord(inst=inst, store_addr=inst.mem_addr,
                                store_value=value)
        dest = inst.dest
        if dest is None:
            return CommitRecord(inst=inst)
        if inst.is_load:
            value = self.read_mem(inst.mem_addr)
        elif inst.op is OpClass.MOV:
            value = srcs[0] if srcs else 0
        else:
            value = mix64(_OP_TAG[inst.op], inst.pc, *srcs)
        self._write_reg(dest, value)
        return CommitRecord(inst=inst, dest_value=value)

    def snapshot(self) -> Tuple[Dict[Reg, int], Dict[int, int]]:
        """Copies of the touched register and memory state."""
        return dict(self._regs), dict(self._mem)

    def run(self, trace: Sequence[DynInst]) -> OracleResult:
        """Execute ``trace`` in program order; return the reference."""
        records = [self.step(inst) for inst in trace]
        regs, mem = self.snapshot()
        return OracleResult(records=records, final_regs=regs,
                            final_mem=mem)


def execute_trace(trace: Sequence[DynInst]) -> OracleResult:
    """Convenience wrapper: run a fresh oracle over ``trace``."""
    return GoldenOracle().run(trace)

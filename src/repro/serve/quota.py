"""Per-tenant admission control for the job server.

Tenancy here is cooperative (a label on each batch), but the
accounting is real: a tenant may only keep ``max_queued`` jobs
admitted-but-unfinished at a time and submit at most ``max_batch``
jobs per request; anything beyond answers HTTP 429 without touching
the scheduler.  ``priority`` orders the batch queue — the scheduler
always starts the highest-priority waiting batch next (FIFO within a
priority level), so an interactive tenant's two-job probe is never
stuck behind a bulk tenant's thousand-job sweep.

Policies load from a JSON file (``repro-exp serve --quotas``)::

    {"default": {"max_queued": 256, "max_batch": 256, "priority": 0},
     "tenants": {"ci":    {"max_queued": 64, "priority": 10},
                 "bulk":  {"max_queued": 1024, "priority": -10}}}

Unknown tenants fall back to the ``default`` policy.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional


class QuotaExceeded(Exception):
    """A submission over the tenant's budget; answered with HTTP 429."""


@dataclass(frozen=True)
class TenantPolicy:
    """Limits and scheduling weight for one tenant."""

    name: str = "default"
    max_queued: int = 256      # admitted-but-unfinished jobs at once
    max_batch: int = 256       # jobs per single submission
    priority: int = 0          # higher = scheduled first

    def to_dict(self) -> Dict:
        return {"max_queued": self.max_queued,
                "max_batch": self.max_batch,
                "priority": self.priority}


_POLICY_KEYS = frozenset({"max_queued", "max_batch", "priority"})


def _policy_from(name: str, data: Mapping,
                 base: TenantPolicy) -> TenantPolicy:
    unknown = set(data) - _POLICY_KEYS
    if unknown:
        raise ValueError(f"tenant {name!r}: unknown quota key(s) "
                         f"{sorted(unknown)}; known: "
                         f"{sorted(_POLICY_KEYS)}")
    policy = replace(base, name=name, **dict(data))
    if policy.max_queued < 1 or policy.max_batch < 1:
        raise ValueError(f"tenant {name!r}: max_queued and max_batch "
                         "must be >= 1")
    return policy


class QuotaRegistry:
    """Tenant policies plus live per-tenant accounting.

    Thread-safe: ``admit`` runs on the event loop but ``release`` can
    arrive from executor callbacks, so the counters sit behind a lock.
    """

    def __init__(self, default: Optional[TenantPolicy] = None,
                 tenants: Optional[Dict[str, TenantPolicy]] = None):
        self.default = default or TenantPolicy()
        self.tenants = dict(tenants or {})
        self._lock = threading.Lock()
        self._active: Dict[str, int] = {}
        self._admitted: Dict[str, int] = {}
        self._rejected: Dict[str, int] = {}

    @classmethod
    def from_file(cls, path) -> "QuotaRegistry":
        with open(path) as stream:
            data = json.load(stream)
        if not isinstance(data, Mapping):
            raise ValueError(f"{path}: quota file must be an object")
        unknown = set(data) - {"default", "tenants"}
        if unknown:
            raise ValueError(f"{path}: unknown key(s) {sorted(unknown)}")
        default = _policy_from("default", data.get("default", {}),
                               TenantPolicy())
        tenants = {
            name: _policy_from(name, entry, default)
            for name, entry in (data.get("tenants") or {}).items()
        }
        return cls(default=default, tenants=tenants)

    def policy(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, replace(self.default,
                                                name=tenant))

    def admit(self, tenant: str, jobs: int) -> TenantPolicy:
        """Reserve ``jobs`` slots for ``tenant`` or raise
        :class:`QuotaExceeded`; pair every success with one
        :meth:`release` when the batch finishes."""
        policy = self.policy(tenant)
        with self._lock:
            if jobs > policy.max_batch:
                self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
                raise QuotaExceeded(
                    f"tenant {tenant!r}: batch of {jobs} exceeds "
                    f"max_batch={policy.max_batch}")
            active = self._active.get(tenant, 0)
            if active + jobs > policy.max_queued:
                self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
                raise QuotaExceeded(
                    f"tenant {tenant!r}: {active} job(s) already "
                    f"queued; admitting {jobs} more exceeds "
                    f"max_queued={policy.max_queued}")
            self._active[tenant] = active + jobs
            self._admitted[tenant] = self._admitted.get(tenant, 0) + jobs
        return policy

    def release(self, tenant: str, jobs: int) -> None:
        with self._lock:
            self._active[tenant] = max(
                0, self._active.get(tenant, 0) - jobs)

    def snapshot(self) -> Dict[str, Dict]:
        """Per-tenant accounting for the status endpoint."""
        with self._lock:
            names = (set(self._active) | set(self._admitted)
                     | set(self._rejected) | set(self.tenants))
            return {
                name: {
                    "active_jobs": self._active.get(name, 0),
                    "admitted_jobs": self._admitted.get(name, 0),
                    "rejected_batches": self._rejected.get(name, 0),
                    "policy": self.policy(name).to_dict(),
                }
                for name in sorted(names)
            }


__all__ = ["QuotaExceeded", "TenantPolicy", "QuotaRegistry"]

"""Wire protocol of the simulation job server: JSON in, JSON out.

A **job spec** names one simulation as data::

    {"model": "HALF+FX",            # any Table-I preset, or "CA"
     "overrides": {"iq_entries": 16,
                   "hierarchy.l2_kb": 256},   # optional, dse vocabulary
     "benchmark": "hmmer",
     "measure": 8000, "warmup": 30000, "seed": 0}

A **batch** wraps a list of them plus submission options::

    {"tenant": "alice",             # quota/priority bucket
     "resume": false,               # clear quarantine records and retry
     "trace_id": "4bf92f35...",     # optional: join an existing trace
     "jobs": [ {...}, {...} ]}

Every spec maps deterministically onto a :class:`CoreConfig` (the
``overrides`` vocabulary is exactly the design-space autotuner's, see
:func:`repro.experiments.dse.apply_overrides`) and from there onto the
same content-address the disk cache keys on — which is what makes the
server's dedup exact: two specs with one digest are one simulation,
and a digest the cache has already seen is served with zero simulation.

When a spec has no overrides its config *is* the preset config, name
included, so server digests are identical to the ones CLI sweeps
produce and the two share cache entries bidirectionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core import MODEL_NAMES, CoreConfig, model_config
from repro.experiments.diskcache import fingerprint
from repro.experiments.dse import (
    SpaceError,
    _validate_overrides,
    apply_overrides,
)
from repro.experiments.pool import SimJob
from repro.experiments.runner import DEFAULT_MEASURE, DEFAULT_WARMUP
from repro.workloads import ALL_BENCHMARKS

#: Models a job spec may name (the CLI's observed-model list).
SERVE_MODELS: Tuple[str, ...] = MODEL_NAMES + ("CA",)

_JOB_KEYS = frozenset(
    {"model", "overrides", "benchmark", "measure", "warmup", "seed"})
_BATCH_KEYS = frozenset({"tenant", "resume", "jobs", "trace_id"})


class ProtocolError(ValueError):
    """A malformed request; the server answers it with HTTP 400."""


@dataclass(frozen=True)
class JobSpec:
    """One validated simulation request."""

    benchmark: str
    model: str = "HALF+FX"
    overrides: Tuple[Tuple[str, object], ...] = ()
    measure: int = DEFAULT_MEASURE
    warmup: int = DEFAULT_WARMUP
    seed: int = 0

    def config(self) -> CoreConfig:
        """The :class:`CoreConfig` this spec addresses.

        Without overrides this is the preset itself (preset name
        included), so the fingerprint matches what a CLI sweep of the
        same model produces and cache entries are shared both ways.
        """
        base = model_config(self.model)
        if not self.overrides:
            return base
        return apply_overrides(base, dict(self.overrides),
                               f"serve/{self.model}")

    def sim_job(self) -> SimJob:
        return SimJob(config=self.config(), benchmark=self.benchmark,
                      measure=self.measure, warmup=self.warmup,
                      seed=self.seed)

    def digest(self) -> str:
        """The content address the disk cache keys this job on."""
        return fingerprint(self.config(), self.benchmark, self.measure,
                           self.warmup, self.seed)

    def describe(self) -> str:
        return (f"{self.model}/{self.benchmark}"
                f"(measure={self.measure}, warmup={self.warmup},"
                f" seed={self.seed})")

    def to_dict(self) -> Dict:
        return {
            "model": self.model,
            "overrides": dict(self.overrides),
            "benchmark": self.benchmark,
            "measure": self.measure,
            "warmup": self.warmup,
            "seed": self.seed,
        }


@dataclass
class BatchSpec:
    """One validated batch submission."""

    jobs: List[JobSpec]
    tenant: str = "default"
    resume: bool = False
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict:
        data = {"tenant": self.tenant, "resume": self.resume,
                "jobs": [job.to_dict() for job in self.jobs]}
        if self.trace_id:
            data["trace_id"] = self.trace_id
        return data


def _int_field(data: Mapping, key: str, default: int, minimum: int) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{key!r} must be an integer, got {value!r}")
    if value < minimum:
        raise ProtocolError(f"{key!r} must be >= {minimum}, got {value}")
    return value


def parse_job(data: object) -> JobSpec:
    """Validate one job-spec object; raises :class:`ProtocolError`."""
    if not isinstance(data, Mapping):
        raise ProtocolError(f"job spec must be an object, got {data!r}")
    unknown = set(data) - _JOB_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown job key(s) {sorted(unknown)}; known: "
            f"{sorted(_JOB_KEYS)}")
    benchmark = data.get("benchmark")
    if benchmark not in ALL_BENCHMARKS:
        raise ProtocolError(
            f"unknown benchmark {benchmark!r}; known: "
            f"{sorted(ALL_BENCHMARKS)}")
    model = data.get("model", "HALF+FX")
    if model not in SERVE_MODELS:
        raise ProtocolError(
            f"unknown model {model!r}; known: {sorted(SERVE_MODELS)}")
    overrides = data.get("overrides") or {}
    try:
        _validate_overrides(overrides, "overrides")
    except SpaceError as error:
        raise ProtocolError(str(error)) from None
    spec = JobSpec(
        benchmark=benchmark,
        model=model,
        overrides=tuple(sorted(overrides.items())),
        measure=_int_field(data, "measure", DEFAULT_MEASURE, 1),
        warmup=_int_field(data, "warmup", DEFAULT_WARMUP, 0),
        seed=_int_field(data, "seed", 0, 0),
    )
    try:
        spec.config()  # surface invalid override combinations now
    except SpaceError as error:
        raise ProtocolError(str(error)) from None
    return spec


def parse_batch(data: object, max_jobs: Optional[int] = None) -> BatchSpec:
    """Validate a batch submission (or a bare job spec, promoted to a
    one-job batch); raises :class:`ProtocolError`."""
    if not isinstance(data, Mapping):
        raise ProtocolError(f"request body must be an object, got "
                            f"{data!r}")
    if "jobs" not in data:
        return BatchSpec(jobs=[parse_job(data)])
    unknown = set(data) - _BATCH_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown batch key(s) {sorted(unknown)}; known: "
            f"{sorted(_BATCH_KEYS)}")
    jobs = data["jobs"]
    if not isinstance(jobs, list) or not jobs:
        raise ProtocolError("'jobs' must be a non-empty array")
    if max_jobs is not None and len(jobs) > max_jobs:
        raise ProtocolError(
            f"batch of {len(jobs)} exceeds the {max_jobs}-job limit")
    tenant = data.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(f"'tenant' must be a non-empty string, "
                            f"got {tenant!r}")
    resume = data.get("resume", False)
    if not isinstance(resume, bool):
        raise ProtocolError(f"'resume' must be a boolean, got {resume!r}")
    trace_id = data.get("trace_id")
    if trace_id is not None:
        from repro.serve.telemetry import TRACE_ID_RE

        if (not isinstance(trace_id, str)
                or TRACE_ID_RE.match(trace_id) is None):
            raise ProtocolError(
                f"'trace_id' must be 8-64 lowercase hex characters, "
                f"got {trace_id!r}")
    return BatchSpec(jobs=[parse_job(entry) for entry in jobs],
                     tenant=tenant, resume=resume, trace_id=trace_id)


__all__ = [
    "SERVE_MODELS",
    "ProtocolError",
    "JobSpec",
    "BatchSpec",
    "parse_job",
    "parse_batch",
]

"""Minimal stdlib client for the simulation job server.

``http.client`` only — the same no-third-party-deps rule the server
follows.  The streaming endpoint uses chunked transfer encoding, which
``http.client`` decodes transparently, so :meth:`ServeClient.stream`
is a plain line-by-line JSON reader.

    from repro.obs import slog

    log = slog.get_logger("repro.serve.client")
    client = ServeClient("127.0.0.1", 8023)
    submitted = client.submit({"jobs": [{"benchmark": "hmmer"}]})
    for event in client.stream(submitted["batch_id"]):
        log.info("event", extra={"event": event["event"],
                                 "job": event.get("job", ""),
                                 "trace_id": event.get("trace_id")})
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional


class ServeError(RuntimeError):
    """A non-2xx answer from the server; carries status and payload."""

    def __init__(self, status: int, payload: Dict):
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}")


class ServeClient:
    """One server endpoint; every call opens a fresh connection (the
    server closes connections per request)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode() or "null")
            if response.status >= 400:
                raise ServeError(response.status, data or {})
            return data
        finally:
            connection.close()

    def submit(self, batch: Dict) -> Dict:
        """POST one batch (or bare job spec); returns the admission
        record (``batch_id``, digests, URLs).  Raises
        :class:`ServeError` on a 400 (protocol) or 429 (quota)."""
        return self._request("POST", "/v1/batches", batch)

    def batch(self, batch_id: str) -> Dict:
        """GET the non-streaming batch snapshot."""
        return self._request("GET", f"/v1/batches/{batch_id}")

    def status(self) -> Dict:
        """GET the server's counter/queue/tenant status."""
        return self._request("GET", "/v1/status")

    def metrics_text(self) -> str:
        """GET the raw Prometheus exposition from ``/v1/metrics``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            text = response.read().decode()
            if response.status >= 400:
                raise ServeError(response.status, {"error": text})
            return text
        finally:
            connection.close()

    def metrics(self) -> Dict:
        """GET ``/v1/metrics`` parsed into ``{name: [(labels, value)]}``
        (see :func:`repro.serve.telemetry.parse_prometheus_text`)."""
        from repro.serve.telemetry import parse_prometheus_text

        return parse_prometheus_text(self.metrics_text())

    def stream(self, batch_id: str) -> Iterator[Dict]:
        """Yield the batch's JSON-lines events until ``batch_end``.

        Connecting after completion replays the full event history, so
        submit-then-stream is race-free.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/v1/batches/{batch_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                raise ServeError(
                    response.status,
                    json.loads(response.read().decode() or "{}"))
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            connection.close()

    def run_batch(self, batch: Dict) -> List[Dict]:
        """Submit a batch and block until it finishes; returns the full
        event list (``batch_start``, per-job events, ``batch_end``)."""
        submitted = self.submit(batch)
        return list(self.stream(submitted["batch_id"]))


__all__ = ["ServeClient", "ServeError"]

"""Shared spool directory: multi-host job distribution for the server.

One server host cannot simulate a million-user backlog alone.  The
spool turns any shared filesystem (NFS, a bind mount, plain
``/tmp`` in tests) into a work queue multiple worker *hosts* drain::

    spool/
      queued/<digest>.json            submitted, unowned
      claimed/<digest>.<worker>.json  owned by exactly one worker
      done/<digest>.json              finished (result payload inside)
      failed/<digest>.json            quarantined (failure payload)

Claiming is a single ``os.replace`` of the queued file into
``claimed/`` under the worker's own name: rename within one filesystem
is atomic, so exactly one of N racing workers wins a job and the
losers see ``FileNotFoundError`` and move on — no lock server, no
heartbeat protocol.  Every payload is published with the
:mod:`repro.atomicio` tmp + replace idiom, so readers on other hosts
never see torn JSON (this is the scenario the ``.tmp.<pid>``
collision fix in the disk cache exists for).

Workers (``repro-exp spool-worker``) execute claims through
:func:`repro.experiments.runner.run_sweep` against a shared disk
cache, so results land both as a spool ``done/`` marker (what the
server streams) and as ordinary content-addressed cache entries (what
makes the *next* submission of the same digest a pure cache hit on
any host).  A worker that dies mid-job leaves its claim file behind;
:meth:`Spool.reclaim_stale` moves claims older than a deadline back
to ``queued/`` so the job is re-run by someone else.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.atomicio import _HOST, replace_json

_STATES = ("queued", "claimed", "done", "failed")


class SpoolClaim:
    """One job this worker owns until ``complete``/``fail`` is called."""

    __slots__ = ("digest", "path", "request")

    def __init__(self, digest: str, path: Path, request: Dict):
        self.digest = digest
        self.path = path
        self.request = request


class Spool:
    """A spool directory handle (server and worker sides share it)."""

    def __init__(self, root):
        self.root = Path(root)
        for state in _STATES:
            (self.root / state).mkdir(parents=True, exist_ok=True)
        self.worker_id = f"{_HOST}.{os.getpid()}"
        #: Cumulative count of stale claims this handle requeued
        #: (surfaced on /v1/status and /v1/metrics).
        self.reclaimed = 0

    def _queued(self, digest: str) -> Path:
        return self.root / "queued" / f"{digest}.json"

    def _marker(self, state: str, digest: str) -> Path:
        return self.root / state / f"{digest}.json"

    def enqueue(self, digest: str, request: Dict) -> str:
        """Queue one job unless it is already in flight or finished.

        Returns the job's state after the call (``"queued"`` also when
        it was already queued) — enqueueing is idempotent per digest,
        which is what makes cross-batch dedup free: two batches naming
        one digest share one spool entry.
        """
        state = self.state(digest)[0]
        if state is not None:
            return state
        replace_json(self._queued(digest),
                     {"digest": digest, "request": request,
                      "enqueued_by": self.worker_id})
        return "queued"

    def claim(self) -> Optional[SpoolClaim]:
        """Atomically take ownership of one queued job, oldest first.

        The ``os.replace`` into ``claimed/`` under this worker's name
        is the entire claim protocol: exactly one racing worker wins,
        the rest lose the rename and try the next file.
        """
        queued = sorted(self.root.glob("queued/*.json"),
                        key=lambda p: (p.stat().st_mtime, p.name)
                        if p.exists() else (0.0, p.name))
        for path in queued:
            digest = path.stem
            target = (self.root / "claimed"
                      / f"{digest}.{self.worker_id}.json")
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # lost the race to another worker
            except OSError:
                continue
            try:
                with open(target) as stream:
                    request = json.load(stream)["request"]
            except (OSError, ValueError, KeyError):
                # Torn or malformed queue entry: quarantine it.
                self._publish("failed", digest, {
                    "digest": digest, "status": "failed",
                    "failure": {"cause": "exception",
                                "error": "unreadable spool entry",
                                "error_type": "SpoolError",
                                "attempts": 1},
                    "worker": self.worker_id})
                try:
                    target.unlink()
                except OSError:
                    pass
                continue
            return SpoolClaim(digest, target, request)
        return None

    def _publish(self, state: str, digest: str, payload: Dict) -> None:
        replace_json(self._marker(state, digest), payload)

    def complete(self, claim: SpoolClaim, payload: Dict) -> None:
        """Publish a finished job's result and release the claim."""
        self._publish("done", digest=claim.digest, payload=payload)
        try:
            claim.path.unlink()
        except OSError:
            pass

    def fail(self, claim: SpoolClaim, payload: Dict) -> None:
        """Publish a quarantined job's failure and release the claim."""
        self._publish("failed", digest=claim.digest, payload=payload)
        try:
            claim.path.unlink()
        except OSError:
            pass

    def state(self, digest: str) -> Tuple[Optional[str], Optional[Dict]]:
        """Where one digest currently is: done/failed markers carry
        their payload; returns ``(None, None)`` for an unknown job."""
        for state in ("done", "failed"):
            path = self._marker(state, digest)
            try:
                with open(path) as stream:
                    return state, json.load(stream)
            except (OSError, ValueError):
                continue
        if self._queued(digest).exists():
            return "queued", None
        if any(self.root.glob(f"claimed/{digest}.*.json")):
            return "claimed", None
        return None, None

    def forget_failure(self, digest: str) -> bool:
        """Drop a failed marker so a resume submission can requeue the
        job (the spool-side analogue of ``DiskCache.clear_failure``)."""
        try:
            self._marker("failed", digest).unlink()
        except OSError:
            return False
        return True

    def reclaim_stale(self, max_age_seconds: float) -> int:
        """Requeue claims older than ``max_age_seconds`` (their worker
        presumably died); returns how many jobs went back to queued."""
        requeued = 0
        now = time.time()
        for path in self.root.glob("claimed/*.json"):
            digest = path.name.split(".", 1)[0]
            try:
                if now - path.stat().st_mtime <= max_age_seconds:
                    continue
                os.replace(path, self._queued(digest))
            except OSError:
                continue  # the worker finished or another host won
            requeued += 1
        self.reclaimed += requeued
        return requeued

    def depth(self) -> Dict[str, int]:
        """Entry counts per state, for the status endpoint."""
        return {state: sum(1 for _ in self.root.glob(f"{state}/*.json"))
                for state in _STATES}


# ----------------------------------------------------------------------
# The worker loop (repro-exp spool-worker)
# ----------------------------------------------------------------------


def execute_claim(claim: SpoolClaim, cache) -> Dict:
    """Run one claimed job and build its done/failed payload.

    The request's job spec and fault policy ride in the spool entry;
    execution goes through :func:`runner.run_sweep` so the retry /
    quarantine semantics and the disk-cache persistence are exactly
    the local pool's.

    When the request carries a trace context (``"trace"`` wire dict,
    see :class:`repro.serve.telemetry.TraceContext`), the payload
    returns a ``"spans"`` list — one ``claim`` span covering this
    worker's ownership plus one ``simulate``/``retry`` span per
    execution attempt — which the server stitches into the batch's
    distributed trace.
    """
    from repro.experiments.runner import run_sweep
    from repro.serve.protocol import ProtocolError, parse_job
    from repro.serve.telemetry import TraceContext

    worker = f"{_HOST}.{os.getpid()}"
    trace = TraceContext.from_wire(claim.request.get("trace"))
    claim_ts = time.time()
    spans = []
    claim_ctx = trace
    if trace is not None:
        enqueued_ts = claim.request.get("enqueued_ts")
        claim_span = trace.span(
            "claim", claim_ts, 0.0,
            args={"digest": claim.digest, "worker": worker,
                  **({"spool_wait_seconds":
                      round(claim_ts - enqueued_ts, 6)}
                     if isinstance(enqueued_ts, (int, float)) else {})})
        spans.append(claim_span)
        claim_ctx = TraceContext(trace.trace_id, claim_span["span_id"])

    def _finish(payload: Dict) -> Dict:
        if spans:
            spans[0]["duration"] = max(0.0, time.time() - claim_ts)
            payload["spans"] = spans
        return payload

    def on_attempt(job, attempt, started_ts, duration, status,
                   worker_pid) -> None:
        if claim_ctx is None:
            return
        spans.append(claim_ctx.span(
            "simulate" if attempt == 1 else "retry",
            started_ts, duration,
            args={"digest": claim.digest, "benchmark": job.benchmark,
                  "attempt": attempt, "status": status,
                  "worker_pid": worker_pid}))

    try:
        spec = parse_job(claim.request.get("job"))
    except ProtocolError as error:
        return _finish({
            "digest": claim.digest, "status": "failed",
            "failure": {"cause": "exception", "error": str(error),
                        "error_type": "ProtocolError", "attempts": 1},
            "worker": worker})
    policy = claim.request.get("policy") or {}
    outcome = run_sweep(
        [spec.sim_job()],
        workers=1,
        cache=cache,
        timeout=policy.get("timeout"),
        retries=int(policy.get("retries", 0)),
        retry_backoff=float(policy.get("retry_backoff", 0.25)),
        resume=bool(claim.request.get("resume", False)),
        on_attempt=on_attempt,
    )[0]
    if outcome.ok:
        return _finish({
            "digest": claim.digest, "status": "ok",
            "source": outcome.source,
            "run": outcome.run.to_dict(),
            "wall_seconds": outcome.wall_seconds,
            "attempts": outcome.attempts,
            "worker": worker})
    return _finish({
        "digest": claim.digest, "status": "failed",
        "failure": outcome.failure.to_dict(),
        "worker": worker})


def run_worker(spool: Spool, cache=None, poll: float = 0.5,
               max_jobs: Optional[int] = None,
               idle_exit: Optional[float] = None,
               reclaim_after: Optional[float] = None,
               log=None) -> int:
    """Claim-and-execute loop; returns the number of jobs executed.

    Runs until ``max_jobs`` jobs are done or the spool has been empty
    for ``idle_exit`` seconds (forever when both are None).
    """
    from repro.obs import slog

    logger = slog.get_logger("repro.serve.spool")
    executed = 0
    idle_since: Optional[float] = None
    while max_jobs is None or executed < max_jobs:
        if reclaim_after is not None:
            requeued = spool.reclaim_stale(reclaim_after)
            if requeued:
                logger.warning("reclaimed stale claims",
                               extra={"requeued": requeued,
                                      "worker": spool.worker_id})
        claim = spool.claim()
        if claim is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_exit is not None and now - idle_since >= idle_exit:
                break
            time.sleep(poll)
            continue
        idle_since = None
        payload = execute_claim(claim, cache)
        if payload["status"] == "ok":
            spool.complete(claim, payload)
        else:
            spool.fail(claim, payload)
        trace = claim.request.get("trace")
        logger.info(
            "job %s", payload["status"],
            extra={"digest": claim.digest,
                   "batch_id": claim.request.get("batch_id"),
                   "worker": spool.worker_id,
                   **({"trace_id": trace.get("trace_id")}
                      if isinstance(trace, dict) else {})})
        if log is not None:    # legacy callback, kept for embedders
            log(f"[spool-worker] {claim.digest[:12]} "
                f"{payload['status']}")
        executed += 1
    return executed


def configure_parser(parser) -> None:
    parser.add_argument("--spool", required=True, metavar="DIR",
                        help="shared spool directory (same --spool the "
                             "server was started with)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache shared "
                             "with the server (default "
                             "~/.cache/fxa-repro)")
    parser.add_argument("--poll", type=float, default=0.5,
                        metavar="SECONDS",
                        help="sleep between empty queue scans "
                             "(default 0.5)")
    parser.add_argument("--max-jobs", type=int, default=None,
                        metavar="N",
                        help="exit after executing N jobs "
                             "(default: run forever)")
    parser.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after the queue has been empty this "
                             "long (default: run forever)")
    parser.add_argument("--reclaim-after", type=float, default=None,
                        metavar="SECONDS",
                        help="requeue claims idle longer than this "
                             "(another worker died mid-job)")
    from repro.obs import slog

    slog.add_logging_args(parser)


def cmd(args) -> int:
    from repro.experiments.diskcache import DiskCache
    from repro.obs import slog

    slog.configure_from_args(args)
    logger = slog.get_logger("repro.serve.spool")
    spool = Spool(args.spool)
    cache = DiskCache(args.cache_dir)
    logger.info("draining spool",
                extra={"worker": spool.worker_id,
                       "spool": str(spool.root),
                       "cache": str(cache.root)})
    executed = run_worker(spool, cache=cache, poll=args.poll,
                          max_jobs=args.max_jobs,
                          idle_exit=args.idle_exit,
                          reclaim_after=args.reclaim_after)
    logger.info("worker exit",
                extra={"worker": spool.worker_id, "executed": executed})
    return 0


__all__ = ["Spool", "SpoolClaim", "execute_claim", "run_worker"]

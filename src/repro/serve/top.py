"""``repro-exp top`` — a live terminal dashboard for a running server.

Polls ``GET /v1/status`` and ``GET /v1/metrics`` on an interval and
renders one screenful: queue depth, cache hit ratio, request latency
percentiles (p50/p95 estimated from the histogram buckets the server
exports), and per-interval throughput sparklines built from counter
deltas.  Pure stdlib + :mod:`repro.experiments.textchart`, same as
every other view in the repo — point it at any ``repro-exp serve``
instance::

    repro-exp top --url http://127.0.0.1:8023

``--iterations N`` renders N frames and exits (tests and CI use
``--iterations 1``); the default is to run until interrupted.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.textchart import sparkline
from repro.serve.client import ServeClient, ServeError
from repro.serve.telemetry import (
    parse_prometheus_text,
    quantile_from_buckets,
    sample_value,
)

#: Sparkline history length (frames) and render width.
HISTORY = 60

#: Counters whose per-interval deltas become throughput sparklines,
#: as (title, metric name, unit) rows.
RATE_ROWS: Tuple[Tuple[str, str, str], ...] = (
    ("requests", "repro_http_requests_total", "req/s"),
    ("jobs", "repro_jobs_total", "job/s"),
    ("attempts", "repro_job_attempts_total", "att/s"),
)


def _total(samples: Dict[str, List[Tuple[Dict[str, str], float]]],
           name: str, **labels: str) -> float:
    """Sum every sample of ``name`` whose labels include ``labels``."""
    total = 0.0
    for sample_labels, value in samples.get(name, ()):
        if all(sample_labels.get(k) == str(v)
               for k, v in labels.items()):
            total += value
    return total


def _buckets(samples: Dict[str, List[Tuple[Dict[str, str], float]]],
             name: str, **labels: str) -> List[Tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs for one histogram, with the
    label-partitioned buckets summed back together (quantiles over all
    routes, not per route)."""
    merged: Dict[float, float] = {}
    for sample_labels, value in samples.get(f"{name}_bucket", ()):
        if not all(sample_labels.get(k) == str(v)
                   for k, v in labels.items()):
            continue
        le = sample_labels.get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        merged[bound] = merged.get(bound, 0.0) + value
    return sorted(merged.items())


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


class TopView:
    """Holds the rolling counter history and renders one frame."""

    def __init__(self) -> None:
        self._last: Optional[Dict[str, float]] = None
        self._last_ts: Optional[float] = None
        self._rates: Dict[str, List[float]] = {
            name: [] for _, name, _ in RATE_ROWS}

    def _update_rates(self, samples, now: float) -> Dict[str, float]:
        """Fold this scrape's counter totals into the per-second rate
        history; returns the latest rate per tracked counter."""
        totals = {name: _total(samples, name) for _, name, _ in RATE_ROWS}
        latest: Dict[str, float] = {}
        if self._last is not None and self._last_ts is not None:
            elapsed = max(now - self._last_ts, 1e-9)
            for name, value in totals.items():
                rate = max(0.0, value - self._last[name]) / elapsed
                history = self._rates[name]
                history.append(rate)
                del history[:-HISTORY]
                latest[name] = rate
        self._last = totals
        self._last_ts = now
        return latest

    def render(self, status: Dict, metrics_text: str,
               now: Optional[float] = None) -> str:
        """One dashboard frame as a string (no terminal control)."""
        samples = parse_prometheus_text(metrics_text)
        latest = self._update_rates(
            samples, time.monotonic() if now is None else now)

        server = status.get("server", {})
        queue = status.get("queue", {})
        cache = status.get("cache", {})
        spool = status.get("spool")

        hits = float(cache.get("hits", 0) or 0)
        misses = float(cache.get("misses", 0) or 0)
        lookups = hits + misses
        hit_ratio = hits / lookups if lookups else 0.0

        lines = [
            (f"repro-exp top — {server.get('hostname', '?')}:"
             f"{server.get('port', '?')}  mode={server.get('mode', '?')}"
             f"  workers={server.get('workers', '?')}"
             f"  up {_fmt_uptime(server.get('uptime_seconds', 0))}"),
            "",
            (f"queue depth {queue.get('depth', 0):>4}   "
             f"running {'yes' if queue.get('running') else 'no '}   "
             f"batches {queue.get('batches_total', 0):>4}   "
             f"cache hit ratio {hit_ratio:6.1%}"
             f" ({int(hits)}/{int(lookups)})"),
        ]

        if spool:
            lines.append(
                "spool  " + "  ".join(
                    f"{state}={spool.get(state, 0)}"
                    for state in ("queued", "claimed", "done", "failed",
                                  "reclaimed")))

        lines.append("")
        for label, metric in (
                ("http p50/p95", "repro_http_request_duration_seconds"),
                ("queue wait  ", "repro_batch_queue_wait_seconds"),
                ("sim seconds ", "repro_job_simulation_seconds")):
            buckets = _buckets(samples, metric)
            count = sum(
                v for _, v in samples.get(f"{metric}_count", ()))
            p50 = quantile_from_buckets(buckets, 0.50)
            p95 = quantile_from_buckets(buckets, 0.95)
            lines.append(
                f"{label}  {_fmt_seconds(p50):>8} / "
                f"{_fmt_seconds(p95):>8}   n={int(count)}")

        lines.append("")
        for title, name, unit in RATE_ROWS:
            history = self._rates[name]
            rate = latest.get(name)
            rate_text = f"{rate:8.2f} {unit}" if rate is not None else (
                " " * 8 + f" {unit}")
            lines.append(f"{title:<9} {rate_text}  "
                         f"{sparkline(history, width=HISTORY)}")

        streams = sample_value(samples, "repro_stream_subscribers")
        backlog = sample_value(samples, "repro_stream_backlog_events")
        lines.append("")
        lines.append(
            f"streams {int(streams or 0)}  backlog "
            f"{int(backlog or 0)} events  "
            f"rejections quota={int(_total(samples, 'repro_quota_rejections_total'))}"
            f" protocol={int(_total(samples, 'repro_protocol_rejections_total'))}")
        return "\n".join(lines)


def _parse_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` (or bare ``host:port``) → ``(host, port)``."""
    stripped = url.strip()
    if "://" in stripped:
        scheme, _, rest = stripped.partition("://")
        if scheme != "http":
            raise ValueError(f"only http:// is supported, got {url!r}")
        stripped = rest
    stripped = stripped.rstrip("/")
    host, _, port_text = stripped.partition(":")
    if not host or not port_text:
        raise ValueError(f"expected http://host:port, got {url!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in {url!r}") from None
    return host, port


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="http://127.0.0.1:8023",
                        help="server base URL "
                             "(default http://127.0.0.1:8023)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="poll interval (default 2.0)")
    parser.add_argument("--iterations", type=int, default=0,
                        metavar="N",
                        help="render N frames then exit "
                             "(default 0 = run until interrupted)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing "
                             "in place (log-friendly)")


def cmd(args: argparse.Namespace) -> int:
    try:
        host, port = _parse_url(args.url)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.interval <= 0:
        print("--interval must be positive", file=sys.stderr)
        return 2
    client = ServeClient(host, port, timeout=max(args.interval * 2, 5.0))
    view = TopView()
    frames = 0
    try:
        while True:
            try:
                status = client.status()
                metrics_text = client.metrics_text()
            except (OSError, ServeError, ValueError) as error:
                print(f"poll failed: {error}", file=sys.stderr)
                return 1
            frame = view.render(status, metrics_text)
            if args.no_clear or not sys.stdout.isatty():
                print(frame)
                print()
            else:
                # Home the cursor and wipe the scrollback-free region;
                # plain ANSI so no curses dependency.
                sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
                sys.stdout.flush()
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


__all__ = ["TopView", "configure_parser", "cmd"]

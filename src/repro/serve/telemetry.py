"""Operational telemetry for the serving stack.

Three concerns live here, all stdlib-only:

* **Distributed trace context.**  A :class:`TraceContext` is minted at
  batch admission (``trace_id`` + root ``span_id``); every unit of work
  after that — queue wait, cache dedup, spool claim, each simulation
  attempt, publish, stream — records a span dict that names its parent.
  The context crosses process/host boundaries as a two-key wire dict
  (:meth:`TraceContext.to_wire` / :meth:`TraceContext.from_wire`)
  riding inside spool request payloads, so spans recorded by a
  ``repro-exp spool-worker`` on another host stitch into the same
  trace.  :func:`write_perfetto_trace` renders one batch's spans into
  the Trace Event JSON the existing
  :class:`~repro.obs.traceevent.TraceEventWriter` already emits — one
  Perfetto process row per participating ``host:pid``.

* **Prometheus metrics.**  :class:`ServeTelemetry` owns a
  :class:`~repro.obs.metrics.MetricsRegistry` populated with labeled
  families (request duration by route, queue wait, simulation seconds
  by source, quota rejections by tenant, spool depth by state, ...)
  and renders the text exposition format (version 0.0.4) for
  ``GET /v1/metrics``.  Every observation and the render itself take
  one lock, so a scrape is a consistent snapshot: histogram ``_count``
  == ``sum(buckets)`` and the ``le`` series is monotone by
  construction, which the invariant tests pin.

* **Scrape-side helpers.**  :func:`parse_prometheus_text` (used by the
  ``repro-exp top`` dashboard and the conformance tests) and
  :func:`quantile_from_buckets` (p50/p95 from cumulative buckets by
  linear interpolation).
"""

from __future__ import annotations

import math
import os
import re
import threading
import uuid
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.atomicio import _HOST
from repro.obs.metrics import MetricsRegistry

#: Content-Type for the ``/v1/metrics`` response.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Client-suppliable trace ids: 8..64 lowercase hex chars.
TRACE_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")


# ----------------------------------------------------------------------
# Trace context and spans
# ----------------------------------------------------------------------


def _span_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceContext:
    """An active position in a distributed trace.

    ``trace_id`` identifies the whole story (one per admitted batch);
    ``span_id`` is the span new child spans will name as their parent.
    Immutable by convention: derive with :meth:`child`.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: Optional[str] = None):
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else _span_id()

    @classmethod
    def new(cls, trace_id: Optional[str] = None) -> "TraceContext":
        """Mint a fresh trace (or adopt a client-supplied ``trace_id``)."""
        return cls(trace_id or uuid.uuid4().hex)

    def child(self) -> "TraceContext":
        """A context whose spans will parent under a fresh span id."""
        return TraceContext(self.trace_id)

    def span(self, name: str, start_ts: float, duration: float,
             args: Optional[Dict] = None,
             span_id: Optional[str] = None) -> Dict:
        """A span parented under this context's ``span_id``.

        ``start_ts`` is epoch seconds (shared clock across hosts),
        ``duration`` wall seconds.  Pass ``span_id`` to make the span
        *be* this context's own span (a root or carried-over span)
        rather than a child of it.
        """
        own = span_id if span_id is not None else _span_id()
        parent = None if span_id is not None else self.span_id
        return {
            "name": name,
            "trace_id": self.trace_id,
            "span_id": own,
            "parent_span": parent,
            "start_ts": start_ts,
            "duration": max(0.0, duration),
            "host": _HOST,
            "pid": os.getpid(),
            "args": dict(args or {}),
        }

    def to_wire(self) -> Dict[str, str]:
        """The cross-process form: receivers parent under our span."""
        return {"trace_id": self.trace_id, "parent_span": self.span_id}

    @classmethod
    def from_wire(cls, data: Optional[Dict]) -> Optional["TraceContext"]:
        """Rebuild a context from a wire dict; ``None``/garbage -> None
        (telemetry must never fail a job)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = data.get("parent_span")
        if not isinstance(parent, str) or not parent:
            parent = None
        return cls(trace_id, parent if parent else _span_id())

    def __repr__(self) -> str:
        return f"<TraceContext {self.trace_id[:12]}/{self.span_id}>"


def write_perfetto_trace(spans: Sequence[Dict], path: str) -> None:
    """Render one trace's span dicts as loadable Perfetto JSON.

    Each distinct ``host:pid`` participant gets its own process row
    (the server on one row, every spool worker on its own), so a
    multi-host batch reads as one aligned timeline.  Timestamps are
    microseconds relative to the earliest span.
    """
    from repro.obs.traceevent import TraceEventWriter

    writer = TraceEventWriter()
    ordered = sorted(spans, key=lambda s: (s.get("start_ts", 0.0),
                                           s.get("name", "")))
    t0 = ordered[0].get("start_ts", 0.0) if ordered else 0.0
    for span in ordered:
        label = f"{span.get('host', '?')} pid {span.get('pid', '?')}"
        pid = writer.process_row(label)
        args = {
            "trace_id": span.get("trace_id"),
            "span_id": span.get("span_id"),
            "parent_span": span.get("parent_span"),
        }
        args.update(span.get("args") or {})
        writer.add_span(
            span.get("name", "?"),
            (span.get("start_ts", 0.0) - t0) * 1e6,
            max(0.0, span.get("duration", 0.0)) * 1e6,
            pid=pid, tid=0,
            args={k: v for k, v in args.items() if v is not None})
    writer.write(path)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _labels_text(names: Sequence[str], values: Sequence[str],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_exposition(registry: MetricsRegistry,
                      gauge_help: Optional[Dict[str, str]] = None) -> str:
    """The registry's families and gauges in text format 0.0.4.

    Only families and gauges render — the plain dot-named counters the
    simulator side uses are not valid Prometheus names and stay on the
    ``/v1/status`` JSON surface.  Callers serialise against their own
    lock; this function only reads.
    """
    lines: List[str] = []
    for name, family in registry.families().items():
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for values, child in family.children():
            if family.kind == "histogram":
                counts = list(child.counts)
                total_count = sum(counts)
                cumulative = 0
                for bound, count in zip(child.bounds, counts):
                    cumulative += count
                    labels = _labels_text(
                        family.label_names, values,
                        extra=("le", _format_value(float(bound))))
                    lines.append(
                        f"{name}_bucket{labels} {cumulative}")
                labels = _labels_text(family.label_names, values,
                                      extra=("le", "+Inf"))
                lines.append(f"{name}_bucket{labels} {total_count}")
                plain = _labels_text(family.label_names, values)
                lines.append(
                    f"{name}_sum{plain} {_format_value(float(child.total))}")
                lines.append(f"{name}_count{plain} {total_count}")
            else:
                labels = _labels_text(family.label_names, values)
                lines.append(
                    f"{name}{labels} {_format_value(child.value)}")
    help_for = gauge_help or {}
    for name, value in registry.gauges().items():
        if help_for.get(name):
            lines.append(f"# HELP {name} {help_for[name]}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else "\n"


# ----------------------------------------------------------------------
# Scrape-side parsing (tests and the `repro-exp top` dashboard)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$")
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
_UNESCAPE_RE = re.compile(r'\\(\\|"|n)')


def _unescape_label(value: str) -> str:
    return _UNESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus_text(text: str) -> Dict[str, List[Tuple[Dict[str, str],
                                                             float]]]:
    """Samples by metric name: ``{name: [(labels, value), ...]}``.

    Comment/``# TYPE``/``# HELP`` lines are skipped; label values are
    unescaped.  Raises ``ValueError`` on a malformed sample line, which
    is exactly what the conformance test wants.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {raw!r}")
        name, label_blob, value_text = match.groups()
        labels: Dict[str, str] = {}
        if label_blob:
            for label_match in _LABEL_RE.finditer(label_blob):
                labels[label_match.group(1)] = _unescape_label(
                    label_match.group(2))
        samples.setdefault(name, []).append(
            (labels, _parse_number(value_text)))
    return samples


def sample_value(samples: Dict[str, List[Tuple[Dict[str, str], float]]],
                 name: str, **labels: str) -> Optional[float]:
    """The first sample of ``name`` whose labels include ``labels``."""
    for sample_labels, value in samples.get(name, ()):
        if all(sample_labels.get(k) == str(v) for k, v in labels.items()):
            return value
    return None


def quantile_from_buckets(buckets: Sequence[Tuple[float, float]],
                          quantile: float) -> float:
    """Estimate a quantile from cumulative ``(le, count)`` buckets.

    Standard Prometheus-style linear interpolation within the bucket
    that crosses the target rank; the +Inf bucket resolves to the last
    finite bound.  Returns 0.0 for an empty histogram.
    """
    ordered = sorted(buckets, key=lambda item: item[0])
    if not ordered or ordered[-1][1] <= 0:
        return 0.0
    total = ordered[-1][1]
    target = quantile * total
    prev_bound = 0.0
    prev_cum = 0.0
    for bound, cum in ordered:
        if cum >= target:
            if math.isinf(bound):
                return prev_bound
            span = cum - prev_cum
            frac = 0.0 if span <= 0 else (target - prev_cum) / span
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_cum = bound, cum
    return prev_bound if not math.isinf(prev_bound) else 0.0


# ----------------------------------------------------------------------
# The serving metric schema
# ----------------------------------------------------------------------

#: Request-duration bounds (seconds): sub-millisecond status probes up
#: to minute-long streamed batches.
DURATION_BOUNDS = [0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0]

#: Queue-wait bounds (seconds): an idle server admits in microseconds;
#: a backlogged one can hold a batch for minutes.
WAIT_BOUNDS = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
               30.0, 60.0, 300.0]

#: Per-job wall-time bounds (seconds): cache hits land in the first
#: bucket, real simulations spread across the tail.
SIM_BOUNDS = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
              60.0, 120.0, 300.0]

_GAUGE_HELP = {
    "repro_queue_depth": "Batches waiting for the scheduler",
    "repro_stream_subscribers": "Open /events streaming connections",
    "repro_stream_backlog_events":
        "Events buffered across live batches awaiting stream delivery",
    "repro_uptime_seconds": "Seconds since the server process started",
}


def normalize_route(path: str) -> str:
    """Collapse a request path to its route template so batch ids do
    not explode the label cardinality."""
    path = path.split("?", 1)[0]
    if path in ("/v1/batches", "/v1/status", "/v1/metrics"):
        return path
    if path.startswith("/v1/batches/"):
        if path.endswith("/events"):
            return "/v1/batches/<id>/events"
        return "/v1/batches/<id>"
    return "<other>"


class ServeTelemetry:
    """The server's operational metrics, behind one lock.

    Every observation method and :meth:`render` serialise on the same
    lock, so a ``/v1/metrics`` scrape sees an atomic snapshot — no
    torn histogram where ``_count`` moved but a bucket did not.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        self._lock = threading.Lock()
        reg = self.registry
        self.http_requests = reg.counter_family(
            "repro_http_requests_total", ("route", "method", "code"),
            "HTTP requests served, by route template, method and "
            "status code")
        self.http_duration = reg.histogram_family(
            "repro_http_request_duration_seconds", ("route",),
            DURATION_BOUNDS,
            "HTTP request wall time by route template")
        self.queue_wait = reg.histogram_family(
            "repro_batch_queue_wait_seconds", (), WAIT_BOUNDS,
            "Seconds between batch admission and scheduler pickup")
        self.sim_seconds = reg.histogram_family(
            "repro_job_simulation_seconds", ("source",), SIM_BOUNDS,
            "Per-job wall seconds by result source "
            "(cache/quarantine/simulated)")
        self.jobs = reg.counter_family(
            "repro_jobs_total", ("source", "status"),
            "Distinct job outcomes by source and status")
        self.attempts = reg.counter_family(
            "repro_job_attempts_total", ("status",),
            "Pool execution attempts by terminal status "
            "(retried attempts count separately)")
        self.batches = reg.counter_family(
            "repro_batches_total", ("event",),
            "Batch lifecycle events "
            "(admitted/started/completed/errored)")
        self.quota_rejections = reg.counter_family(
            "repro_quota_rejections_total", ("tenant",),
            "Batch submissions refused by per-tenant quota")
        self.protocol_rejections = reg.counter_family(
            "repro_protocol_rejections_total", (),
            "Batch submissions refused as malformed")
        self.cache_ops = reg.counter_family(
            "repro_cache_operations_total", ("op",),
            "Disk-cache operations observed by this server process")
        self.spool_jobs = reg.gauge_family(
            "repro_spool_jobs", ("state",),
            "Spool entries by state at last scrape")
        self.spool_reclaimed = reg.counter_family(
            "repro_spool_reclaimed_total", (),
            "Stale spool claims requeued after their worker died")
        self.build_info = reg.gauge_family(
            "repro_build_info", ("code_version", "host"),
            "Constant 1; labels carry build/host identity")

    # -- observation sites (all locked) --------------------------------

    def observe_request(self, route: str, method: str, code: int,
                        seconds: float) -> None:
        with self._lock:
            self.http_requests.labels(route=route, method=method,
                                      code=code).add()
            self.http_duration.labels(route=route).observe(
                max(0.0, seconds))

    def observe_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self.queue_wait.labels().observe(max(0.0, seconds))

    def observe_job(self, source: str, status: str,
                    seconds: float) -> None:
        with self._lock:
            self.jobs.labels(source=source, status=status).add()
            self.sim_seconds.labels(source=source).observe(
                max(0.0, seconds))

    def observe_attempt(self, status: str) -> None:
        with self._lock:
            self.attempts.labels(status=status).add()

    def batch_event(self, event: str) -> None:
        with self._lock:
            self.batches.labels(event=event).add()

    def quota_rejected(self, tenant: str) -> None:
        with self._lock:
            self.quota_rejections.labels(tenant=tenant).add()

    def protocol_rejected(self) -> None:
        with self._lock:
            self.protocol_rejections.labels().add()

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.gauge(name).set(value)

    # -- scrape --------------------------------------------------------

    def render(self, collect: Optional[Callable[[], None]] = None) -> str:
        """The exposition text; ``collect`` (if given) runs under the
        lock first to refresh sampled gauges (queue depth, spool
        state, cache counters) atomically with the snapshot."""
        with self._lock:
            if collect is not None:
                collect()
            return render_exposition(self.registry, _GAUGE_HELP)


__all__ = [
    "CONTENT_TYPE", "TRACE_ID_RE", "TraceContext", "ServeTelemetry",
    "DURATION_BOUNDS", "WAIT_BOUNDS", "SIM_BOUNDS",
    "normalize_route", "render_exposition", "parse_prometheus_text",
    "sample_value", "quantile_from_buckets", "write_perfetto_trace",
]

"""Simulation as a service: an asyncio HTTP/JSON job server.

``repro-exp serve`` turns the sweep engine into a long-lived service:
clients POST batches of job specs (see :mod:`repro.serve.protocol`)
and stream back per-job progress as the results land.  Everything
between the socket and the simulator is the machinery the CLI already
uses — the content-addressed :class:`DiskCache`, the slot-based
fault-tolerant pool with its retry/quarantine semantics, and the
:class:`RunManifest` provenance record — which is the point: a batch
submitted over HTTP and the same sweep run with ``fxa-experiments
--jobs`` produce byte-identical cached results and share cache entries
bidirectionally.

Endpoints (all JSON; the stream is newline-delimited JSON over
chunked transfer encoding):

    POST /v1/batches             submit a batch (or bare job spec)
    GET  /v1/batches/<id>        batch snapshot (counts per source)
    GET  /v1/batches/<id>/events stream job events until batch_end
    GET  /v1/status              cache/quarantine/queue/tenant counters

Batches are admitted against per-tenant quotas
(:mod:`repro.serve.quota`) and scheduled highest-priority-first; each
batch is dedup'd against the disk cache by fingerprint before any
fan-out, so a digest the cache has already seen is answered with zero
simulation.  With ``--spool DIR`` the server enqueues cache misses
into a shared spool directory (:mod:`repro.serve.spool`) instead of
simulating locally, and any number of ``repro-exp spool-worker``
processes — on this host or others sharing the filesystem — claim and
execute them.

The HTTP layer is deliberately stdlib-only (``asyncio.start_server``
plus hand-rolled HTTP/1.1): the repo takes no third-party runtime
dependencies, and the protocol surface is four routes.
"""

from __future__ import annotations

import asyncio
import datetime
import heapq
import itertools
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.diskcache import DiskCache, code_version, fingerprint
from repro.experiments.runner import SweepOutcome, run_sweep
from repro.obs.manifest import (
    JobRecord,
    RunManifest,
    aggregate_entry,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import BatchSpec, ProtocolError, parse_batch
from repro.serve.quota import QuotaExceeded, QuotaRegistry
from repro.serve.spool import Spool

_MAX_BODY = 16 * 1024 * 1024
_MAX_LINE = 64 * 1024


def _now_iso() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def _digest_of(job) -> str:
    """Content address of a pool ``SimJob`` (the cache's fingerprint)."""
    return fingerprint(job.config, job.benchmark, job.measure,
                       job.warmup, job.seed)


class Batch:
    """One admitted submission: its spec, event log and stream fan-out.

    Events append on the server's event loop only; every subscriber
    replays the log from the start, so a client that connects after
    completion still sees the full history.
    """

    def __init__(self, batch_id: str, spec: BatchSpec,
                 digests: List[str], priority: int):
        self.id = batch_id
        self.spec = spec
        self.digests = digests
        self.priority = priority
        self.events: List[Dict] = []
        self.done = False
        self._cond = asyncio.Condition()

    async def push(self, event: Dict) -> None:
        async with self._cond:
            self.events.append(event)
            if event.get("event") in ("batch_end",):
                self.done = True
            self._cond.notify_all()

    async def stream(self):
        index = 0
        while True:
            async with self._cond:
                while index >= len(self.events):
                    await self._cond.wait()
                fresh = self.events[index:]
                index = len(self.events)
            for event in fresh:
                yield event
                if event.get("event") == "batch_end":
                    return

    def snapshot(self) -> Dict:
        """Counts per source/status for the non-streaming GET."""
        by_source: Dict[str, int] = {}
        ok = failed = 0
        for event in self.events:
            if event.get("event") != "job":
                continue
            source = event.get("source", "?")
            by_source[source] = by_source.get(source, 0) + 1
            if event.get("status") == "ok":
                ok += 1
            else:
                failed += 1
        return {
            "batch_id": self.id,
            "tenant": self.spec.tenant,
            "priority": self.priority,
            "jobs": len(self.spec.jobs),
            "distinct_jobs": len(set(self.digests)),
            "done": self.done,
            "events": len(self.events),
            "completed_ok": ok,
            "completed_failed": failed,
            "by_source": by_source,
        }


class SimServer:
    """The job server: admission, scheduling, execution, streaming.

    Batches execute one at a time (each sweep already fans out over
    ``workers`` pool processes); the waiting queue is ordered by tenant
    priority, FIFO within a priority level.
    """

    def __init__(self, cache: Optional[DiskCache] = None,
                 workers: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, retry_backoff: float = 0.25,
                 quotas: Optional[QuotaRegistry] = None,
                 spool: Optional[Spool] = None,
                 manifest_dir=None,
                 host: str = "127.0.0.1", port: int = 0,
                 spool_poll: float = 0.2):
        self.cache = cache if cache is not None else DiskCache()
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.quotas = quotas or QuotaRegistry()
        self.spool = spool
        self.manifest_dir = manifest_dir
        self.host = host
        self.port = port
        self.spool_poll = spool_poll
        self.metrics = MetricsRegistry()
        self.batches: Dict[str, Batch] = {}
        self.started_monotonic = time.monotonic()
        self._queue: List[Tuple[int, int, Batch]] = []
        self._seq = itertools.count(1)
        self._ids = itertools.count(1)
        self._running: Optional[str] = None
        self._wake: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "SimServer":
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._scheduler_task = loop.create_task(self._scheduler())
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    async def _scheduler(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._queue:
                _, _, batch = heapq.heappop(self._queue)
                self._running = batch.id
                self.metrics.counter("serve.batches_started").add()
                try:
                    if self.spool is not None:
                        await self._run_batch_spool(batch)
                    else:
                        await self._run_batch_local(batch)
                    self.metrics.counter("serve.batches_finished").add()
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # keep serving other batches
                    self.metrics.counter("serve.batches_errored").add()
                    await batch.push({
                        "event": "batch_end", "batch_id": batch.id,
                        "error": f"{type(error).__name__}: {error}"})
                finally:
                    self._running = None
                    self.quotas.release(batch.spec.tenant,
                                        len(batch.spec.jobs))

    def _job_event(self, batch: Batch, outcome: SweepOutcome) -> Dict:
        """One streamed JSON-lines record per distinct job outcome."""
        self.metrics.counter(f"serve.jobs_{outcome.source}").add()
        event = {
            "event": "job",
            "batch_id": batch.id,
            "digest": _digest_of(outcome.job),
            "job": outcome.job.describe(),
            "source": outcome.source,
            "status": "ok" if outcome.ok else "failed",
            "wall_seconds": outcome.wall_seconds,
            "attempts": outcome.attempts,
        }
        if outcome.ok:
            event["result"] = aggregate_entry(
                outcome.run,
                wall_seconds=(outcome.wall_seconds
                              if outcome.source == "simulated" else 0.0))
        else:
            self.metrics.counter("serve.jobs_quarantined").add()
            event["failure"] = outcome.failure.to_dict()
        return event

    def _manifest_for(self, batch: Batch,
                      outcomes: List[SweepOutcome],
                      started_at: str, wall: float) -> RunManifest:
        """Provenance for one batch, in the CLI sweep's exact schema
        (``repro-exp diff`` and ``report`` consume it unchanged)."""
        records: List[JobRecord] = []
        aggregates: List[Dict] = []
        seen: set = set()
        simulated = failed = 0
        for outcome in outcomes:
            if outcome is None or id(outcome) in seen:
                continue  # duplicate specs share one outcome object
            seen.add(id(outcome))
            if outcome.ok:
                aggregates.append(aggregate_entry(
                    outcome.run,
                    wall_seconds=(outcome.wall_seconds
                                  if outcome.source == "simulated"
                                  else 0.0)))
            else:
                failed += 1
            if outcome.source != "simulated":
                continue
            simulated += 1
            if outcome.ok:
                records.append(JobRecord(
                    job=outcome.job.describe(),
                    wall_seconds=outcome.wall_seconds,
                    worker_pid=outcome.worker_pid,
                    attempts=outcome.attempts,
                    started_ts=outcome.started_ts))
            else:
                f = outcome.failure
                records.append(JobRecord(
                    job=outcome.job.describe(),
                    wall_seconds=f.wall_seconds,
                    worker_pid=f.worker_pid, attempts=f.attempts,
                    status="failed", cause=f.cause, error=f.error))
        specs = batch.spec.jobs
        measures = {spec.measure for spec in specs}
        warmups = {spec.warmup for spec in specs}
        seeds = {spec.seed for spec in specs}
        return RunManifest(
            command=["repro-exp", "serve", f"batch:{batch.id}"],
            experiments=[f"serve/{batch.spec.tenant}/{batch.id}"],
            benchmarks=sorted({spec.benchmark for spec in specs}),
            measure=measures.pop() if len(measures) == 1 else 0,
            warmup=warmups.pop() if len(warmups) == 1 else 0,
            seed=seeds.pop() if len(seeds) == 1 else 0,
            code_version=code_version(),
            started_at=started_at,
            finished_at=_now_iso(),
            wall_seconds=wall,
            workers=self.workers,
            jobs_simulated=simulated,
            jobs_failed=failed,
            fault_policy={"retries": self.retries,
                          "retry_backoff": self.retry_backoff,
                          "fail_fast": False,
                          "timeout": self.timeout,
                          "resume": batch.spec.resume},
            job_records=records,
            cache=self.cache.counters(),
            aggregates=aggregates,
        )

    async def _finish_batch(self, batch: Batch,
                            outcomes: List[SweepOutcome],
                            started_at: str, wall: float) -> None:
        manifest = self._manifest_for(batch, outcomes, started_at, wall)
        manifest_path = None
        if self.manifest_dir is not None:
            from pathlib import Path

            directory = Path(self.manifest_dir)
            directory.mkdir(parents=True, exist_ok=True)
            manifest_path = str(
                directory / f"{batch.id}.manifest.json")
            manifest.write(manifest_path)
        distinct = {id(o) for o in outcomes if o is not None}
        by_source: Dict[str, int] = {}
        ok = 0
        counted: set = set()
        for outcome in outcomes:
            if outcome is None or id(outcome) in counted:
                continue
            counted.add(id(outcome))
            by_source[outcome.source] = (
                by_source.get(outcome.source, 0) + 1)
            if outcome.ok:
                ok += 1
        await batch.push({
            "event": "batch_end",
            "batch_id": batch.id,
            "jobs": len(batch.spec.jobs),
            "distinct_jobs": len(distinct),
            "ok": ok,
            "failed": len(distinct) - ok,
            "by_source": by_source,
            "wall_seconds": wall,
            "manifest_path": manifest_path,
            "manifest": manifest.to_dict(),
        })

    async def _run_batch_local(self, batch: Batch) -> None:
        """Execute one batch on this host's pool via
        :func:`runner.run_sweep` (cache dedup included)."""
        loop = asyncio.get_running_loop()
        started_at = _now_iso()
        perf = time.perf_counter()
        await batch.push({
            "event": "batch_start", "batch_id": batch.id,
            "tenant": batch.spec.tenant,
            "jobs": len(batch.spec.jobs),
            "distinct_jobs": len(set(batch.digests)),
            "mode": "local", "workers": self.workers})
        jobs = [spec.sim_job() for spec in batch.spec.jobs]

        def on_outcome(outcome: SweepOutcome) -> None:
            # Runs on the executor thread; hand the event to the loop.
            event = self._job_event(batch, outcome)
            loop.call_soon_threadsafe(
                loop.create_task, batch.push(event))

        outcomes = await loop.run_in_executor(None, lambda: run_sweep(
            jobs, workers=self.workers, cache=self.cache,
            timeout=self.timeout, retries=self.retries,
            retry_backoff=self.retry_backoff,
            resume=batch.spec.resume, on_outcome=on_outcome))
        await self._finish_batch(batch, outcomes, started_at,
                                 time.perf_counter() - perf)

    async def _run_batch_spool(self, batch: Batch) -> None:
        """Execute one batch by enqueueing cache misses into the shared
        spool and polling for worker completions.

        Cache hits and sticky quarantine records are answered directly
        (same dedup-before-fan-out as local mode); only true misses hit
        the queue, and two batches naming one digest share one spool
        entry.
        """
        from repro.experiments.pool import JobFailure
        from repro.experiments.runner import BenchmarkRun

        assert self.spool is not None
        started_at = _now_iso()
        perf = time.perf_counter()
        distinct: Dict[str, object] = {}   # digest -> SimJob
        spec_of: Dict[str, object] = {}    # digest -> JobSpec
        for spec, digest in zip(batch.spec.jobs, batch.digests):
            if digest not in distinct:
                distinct[digest] = spec.sim_job()
                spec_of[digest] = spec
        await batch.push({
            "event": "batch_start", "batch_id": batch.id,
            "tenant": batch.spec.tenant,
            "jobs": len(batch.spec.jobs),
            "distinct_jobs": len(distinct),
            "mode": "spool", "spool": str(self.spool.root)})
        outcome_of: Dict[str, SweepOutcome] = {}
        pending: List[str] = []
        for digest, job in distinct.items():
            run = self.cache.load(job.config, job.benchmark, job.measure,
                                  job.warmup, job.seed)
            if run is not None:
                outcome = SweepOutcome(job=job, source="cache", run=run)
                outcome_of[digest] = outcome
                await batch.push(self._job_event(batch, outcome))
                continue
            if batch.spec.resume:
                self.cache.clear_failure(job.config, job.benchmark,
                                         job.measure, job.warmup,
                                         job.seed)
                self.spool.forget_failure(digest)
            else:
                record = self.cache.load_failure(
                    job.config, job.benchmark, job.measure, job.warmup,
                    job.seed)
                if record is not None:
                    failure = JobFailure.from_dict(job, record)
                    outcome = SweepOutcome(
                        job=job, source="quarantine", failure=failure,
                        attempts=failure.attempts,
                        wall_seconds=failure.wall_seconds)
                    outcome_of[digest] = outcome
                    await batch.push(self._job_event(batch, outcome))
                    continue
            self.spool.enqueue(digest, {
                "job": spec_of[digest].to_dict(),
                "policy": {"timeout": self.timeout,
                           "retries": self.retries,
                           "retry_backoff": self.retry_backoff},
                "resume": batch.spec.resume,
                "batch_id": batch.id,
            })
            pending.append(digest)
        while pending:
            await asyncio.sleep(self.spool_poll)
            still: List[str] = []
            for digest in pending:
                state, payload = self.spool.state(digest)
                job = distinct[digest]
                if state == "done" and payload is not None:
                    outcome = SweepOutcome(
                        job=job,
                        source=payload.get("source", "simulated"),
                        run=BenchmarkRun.from_dict(payload["run"]),
                        wall_seconds=payload.get("wall_seconds", 0.0),
                        attempts=payload.get("attempts", 0))
                elif state == "failed" and payload is not None:
                    failure = JobFailure.from_dict(
                        job, payload.get("failure", {}))
                    outcome = SweepOutcome(
                        job=job, source="simulated", failure=failure,
                        attempts=failure.attempts,
                        wall_seconds=failure.wall_seconds)
                else:
                    still.append(digest)
                    continue
                outcome_of[digest] = outcome
                await batch.push(self._job_event(batch, outcome))
            pending = still
        outcomes = [outcome_of[digest] for digest in batch.digests]
        await self._finish_batch(batch, outcomes, started_at,
                                 time.perf_counter() - perf)

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path, _version = parts
        length = 0
        while True:
            header = await reader.readline()
            if len(header) > _MAX_LINE:
                return None
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    @staticmethod
    def _respond(writer: asyncio.StreamWriter, status: int,
                 payload: Dict) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   429: "Too Many Requests",
                   500: "Internal Server Error"}
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if method == "POST" and path == "/v1/batches":
            await self._handle_submit(body, writer)
        elif method == "GET" and path == "/v1/status":
            self._respond(writer, 200, self.status())
        elif method == "GET" and path.startswith("/v1/batches/"):
            rest = path[len("/v1/batches/"):]
            if rest.endswith("/events"):
                batch = self.batches.get(rest[: -len("/events")])
                if batch is None:
                    self._respond(writer, 404,
                                  {"error": "unknown batch"})
                else:
                    await self._stream_events(batch, writer)
            else:
                batch = self.batches.get(rest)
                if batch is None:
                    self._respond(writer, 404,
                                  {"error": "unknown batch"})
                else:
                    self._respond(writer, 200, batch.snapshot())
        elif path.startswith("/v1/"):
            self._respond(writer, 405 if method not in ("GET", "POST")
                          else 404, {"error": f"no route for {method} "
                                              f"{path}"})
        else:
            self._respond(writer, 404, {"error": f"no route for "
                                                 f"{method} {path}"})
        await writer.drain()

    async def _handle_submit(self, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        assert self._wake is not None
        try:
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            self._respond(writer, 400,
                          {"error": "request body is not valid JSON"})
            return
        try:
            spec = parse_batch(data)
        except ProtocolError as error:
            self.metrics.counter("serve.rejected_protocol").add()
            self._respond(writer, 400, {"error": str(error)})
            return
        try:
            policy = self.quotas.admit(spec.tenant, len(spec.jobs))
        except QuotaExceeded as error:
            self.metrics.counter("serve.rejected_quota").add()
            self._respond(writer, 429, {"error": str(error)})
            return
        digests = [job.digest() for job in spec.jobs]
        batch = Batch(f"b{next(self._ids):06d}", spec, digests,
                      policy.priority)
        self.batches[batch.id] = batch
        heapq.heappush(self._queue,
                       (-policy.priority, next(self._seq), batch))
        self._wake.set()
        self.metrics.counter("serve.batches_accepted").add()
        self.metrics.counter("serve.jobs_accepted").add(len(spec.jobs))
        self._respond(writer, 202, {
            "batch_id": batch.id,
            "tenant": spec.tenant,
            "priority": policy.priority,
            "jobs": len(spec.jobs),
            "distinct_jobs": len(set(digests)),
            "digests": digests,
            "events_url": f"/v1/batches/{batch.id}/events",
            "batch_url": f"/v1/batches/{batch.id}",
        })

    async def _stream_events(self, batch: Batch,
                             writer: asyncio.StreamWriter) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        async for event in batch.stream():
            chunk = (json.dumps(event, sort_keys=True) + "\n").encode()
            writer.write(f"{len(chunk):x}\r\n".encode() + chunk
                         + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    def status(self) -> Dict:
        """The ``/v1/status`` payload: every counter the ops story
        needs, straight from the existing registries."""
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "workers": self.workers,
                "mode": "spool" if self.spool is not None else "local",
                "uptime_seconds": (time.monotonic()
                                   - self.started_monotonic),
                "code_version": code_version(),
            },
            "queue": {
                "depth": len(self._queue),
                "running": self._running,
                "batches_total": len(self.batches),
            },
            "cache": self.cache.counters(),
            "metrics": self.metrics.counters(),
            "tenants": self.quotas.snapshot(),
            "spool": (self.spool.depth()
                      if self.spool is not None else None),
        }


# ----------------------------------------------------------------------
# Embedding helper (tests drive the server in-process)
# ----------------------------------------------------------------------


def start_in_background(**kwargs):
    """Start a :class:`SimServer` on its own event-loop thread.

    Returns ``(server, stop)``: ``server.port`` is bound (port 0 means
    an OS-assigned free port) by the time this returns, and ``stop()``
    shuts the loop down and joins the thread.  Test machinery — the
    CLI path is :func:`cmd`.
    """
    server = SimServer(**kwargs)
    ready = threading.Event()
    state: Dict[str, object] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        state["loop"] = loop
        loop.run_until_complete(server.start())
        ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")

    def stop() -> None:
        loop = state["loop"]

        async def _shutdown() -> None:
            await server.stop()
            loop.stop()

        loop.call_soon_threadsafe(
            lambda: loop.create_task(_shutdown()))
        thread.join(timeout=30)

    return server, stop


# ----------------------------------------------------------------------
# repro-exp serve
# ----------------------------------------------------------------------


def configure_parser(parser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8023,
                        help="bind port; 0 picks a free port "
                             "(default 8023)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache "
                             "(default ~/.cache/fxa-repro)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="pool worker processes per sweep "
                             "(default 1)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job execution deadline")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry budget before quarantine "
                             "(default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.25,
                        metavar="SECONDS",
                        help="base exponential-backoff delay "
                             "(default 0.25)")
    parser.add_argument("--quotas", default=None, metavar="FILE",
                        help="per-tenant quota/priority policy JSON")
    parser.add_argument("--spool", default=None, metavar="DIR",
                        help="shared spool directory: enqueue misses "
                             "for repro-exp spool-worker hosts instead "
                             "of simulating locally")
    parser.add_argument("--manifest-dir", default=None, metavar="DIR",
                        help="write one run manifest per batch here")
    parser.add_argument("--inject-fault", default=None, metavar="SPEC",
                        help="fault injector for smoke tests, e.g. "
                             "crash:mcf (see fxa-experiments "
                             "--inject-fault)")


def cmd(args) -> int:
    quotas = (QuotaRegistry.from_file(args.quotas)
              if args.quotas else QuotaRegistry())
    spool = Spool(args.spool) if args.spool else None
    if args.inject_fault:
        from repro.experiments.pool import FaultSpec, set_fault_injector

        set_fault_injector(FaultSpec.parse(args.inject_fault))
    server = SimServer(
        cache=DiskCache(args.cache_dir),
        workers=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        quotas=quotas,
        spool=spool,
        manifest_dir=args.manifest_dir,
        host=args.host,
        port=args.port,
    )

    async def _main() -> None:
        await server.start()
        mode = (f"spool={spool.root}" if spool
                else f"local, {server.workers} worker(s)")
        print(f"[serve] listening on http://{server.host}:"
              f"{server.port} ({mode}, cache {server.cache.root})")
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("[serve] interrupted")
    return 0


__all__ = ["Batch", "SimServer", "start_in_background"]

"""Simulation as a service: an asyncio HTTP/JSON job server.

``repro-exp serve`` turns the sweep engine into a long-lived service:
clients POST batches of job specs (see :mod:`repro.serve.protocol`)
and stream back per-job progress as the results land.  Everything
between the socket and the simulator is the machinery the CLI already
uses — the content-addressed :class:`DiskCache`, the slot-based
fault-tolerant pool with its retry/quarantine semantics, and the
:class:`RunManifest` provenance record — which is the point: a batch
submitted over HTTP and the same sweep run with ``fxa-experiments
--jobs`` produce byte-identical cached results and share cache entries
bidirectionally.

Endpoints (all JSON; the stream is newline-delimited JSON over
chunked transfer encoding):

    POST /v1/batches             submit a batch (or bare job spec)
    GET  /v1/batches/<id>        batch snapshot (counts per source)
    GET  /v1/batches/<id>/events stream job events until batch_end
    GET  /v1/status              cache/quarantine/queue/tenant counters

Batches are admitted against per-tenant quotas
(:mod:`repro.serve.quota`) and scheduled highest-priority-first; each
batch is dedup'd against the disk cache by fingerprint before any
fan-out, so a digest the cache has already seen is answered with zero
simulation.  With ``--spool DIR`` the server enqueues cache misses
into a shared spool directory (:mod:`repro.serve.spool`) instead of
simulating locally, and any number of ``repro-exp spool-worker``
processes — on this host or others sharing the filesystem — claim and
execute them.

The HTTP layer is deliberately stdlib-only (``asyncio.start_server``
plus hand-rolled HTTP/1.1): the repo takes no third-party runtime
dependencies, and the protocol surface is four routes.
"""

from __future__ import annotations

import asyncio
import datetime
import heapq
import http.client
import itertools
import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.atomicio import _HOST
from repro.experiments.diskcache import DiskCache, code_version, fingerprint
from repro.experiments.runner import SweepOutcome, run_sweep
from repro.obs import slog
from repro.obs.manifest import (
    JobRecord,
    RunManifest,
    aggregate_entry,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import BatchSpec, ProtocolError, parse_batch
from repro.serve.quota import QuotaExceeded, QuotaRegistry
from repro.serve.spool import Spool
from repro.serve.telemetry import (
    CONTENT_TYPE,
    ServeTelemetry,
    TraceContext,
    normalize_route,
    write_perfetto_trace,
)

_MAX_BODY = 16 * 1024 * 1024
_MAX_LINE = 64 * 1024


class _RequestError(Exception):
    """A request we could parse far enough to answer with an error."""

    def __init__(self, status: int, reason: str,
                 method: str = "-", path: str = "-"):
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.method = method
        self.path = path


def _now_iso() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def _digest_of(job) -> str:
    """Content address of a pool ``SimJob`` (the cache's fingerprint)."""
    return fingerprint(job.config, job.benchmark, job.measure,
                       job.warmup, job.seed)


class Batch:
    """One admitted submission: its spec, event log and stream fan-out.

    Events append on the server's event loop only; every subscriber
    replays the log from the start, so a client that connects after
    completion still sees the full history.
    """

    def __init__(self, batch_id: str, spec: BatchSpec,
                 digests: List[str], priority: int,
                 trace: Optional[TraceContext] = None):
        self.id = batch_id
        self.spec = spec
        self.digests = digests
        self.priority = priority
        self.events: List[Dict] = []
        self.done = False
        self.trace = trace if trace is not None else TraceContext.new()
        self.spans: List[Dict] = []
        self.trace_path: Optional[str] = None
        self.admitted_ts = time.time()
        self.admitted_monotonic = time.monotonic()
        self.subscribers: Dict[int, int] = {}   # subscriber -> cursor
        self._next_subscriber = itertools.count(1)
        self._cond = asyncio.Condition()

    async def push(self, event: Dict) -> None:
        async with self._cond:
            self.events.append(event)
            if event.get("event") in ("batch_end",):
                self.done = True
            self._cond.notify_all()

    async def stream(self):
        subscriber = next(self._next_subscriber)
        self.subscribers[subscriber] = 0
        index = 0
        try:
            while True:
                async with self._cond:
                    while index >= len(self.events):
                        await self._cond.wait()
                    fresh = self.events[index:]
                    index = len(self.events)
                    self.subscribers[subscriber] = index
                for event in fresh:
                    yield event
                    if event.get("event") == "batch_end":
                        return
        finally:
            self.subscribers.pop(subscriber, None)

    def stream_backlog(self) -> int:
        """Events appended but not yet delivered to live subscribers."""
        return sum(len(self.events) - cursor
                   for cursor in self.subscribers.values())

    def snapshot(self) -> Dict:
        """Counts per source/status for the non-streaming GET."""
        by_source: Dict[str, int] = {}
        ok = failed = 0
        for event in self.events:
            if event.get("event") != "job":
                continue
            source = event.get("source", "?")
            by_source[source] = by_source.get(source, 0) + 1
            if event.get("status") == "ok":
                ok += 1
            else:
                failed += 1
        return {
            "batch_id": self.id,
            "tenant": self.spec.tenant,
            "trace_id": self.trace.trace_id,
            "priority": self.priority,
            "jobs": len(self.spec.jobs),
            "distinct_jobs": len(set(self.digests)),
            "done": self.done,
            "events": len(self.events),
            "completed_ok": ok,
            "completed_failed": failed,
            "by_source": by_source,
        }


class SimServer:
    """The job server: admission, scheduling, execution, streaming.

    Batches execute one at a time (each sweep already fans out over
    ``workers`` pool processes); the waiting queue is ordered by tenant
    priority, FIFO within a priority level.
    """

    def __init__(self, cache: Optional[DiskCache] = None,
                 workers: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, retry_backoff: float = 0.25,
                 quotas: Optional[QuotaRegistry] = None,
                 spool: Optional[Spool] = None,
                 manifest_dir=None,
                 host: str = "127.0.0.1", port: int = 0,
                 spool_poll: float = 0.2,
                 trace_dir=None,
                 spool_reclaim: Optional[float] = None):
        self.cache = cache if cache is not None else DiskCache()
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.quotas = quotas or QuotaRegistry()
        self.spool = spool
        self.manifest_dir = manifest_dir
        self.host = host
        self.port = port
        self.spool_poll = spool_poll
        self.trace_dir = trace_dir
        self.spool_reclaim = spool_reclaim
        self.metrics = MetricsRegistry()
        self.telemetry = ServeTelemetry()
        self.log = slog.get_logger("repro.serve")
        self.access_log = slog.get_logger("repro.serve.access")
        self.batches: Dict[str, Batch] = {}
        self.started_monotonic = time.monotonic()
        self.started_at = _now_iso()
        self._queue: List[Tuple[int, int, Batch]] = []
        self._seq = itertools.count(1)
        self._ids = itertools.count(1)
        self._running: Optional[str] = None
        self._wake: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._reclaim_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "SimServer":
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._scheduler_task = loop.create_task(self._scheduler())
        if self.spool is not None and self.spool_reclaim is not None:
            self._reclaim_task = loop.create_task(self._reclaim_loop())
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        for task in (self._scheduler_task, self._reclaim_task):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _reclaim_loop(self) -> None:
        """Periodically requeue spool claims whose worker died."""
        assert self.spool is not None and self.spool_reclaim is not None
        interval = max(self.spool_reclaim / 2.0, self.spool_poll)
        while True:
            await asyncio.sleep(interval)
            requeued = self.spool.reclaim_stale(self.spool_reclaim)
            if requeued:
                self.log.warning(
                    "reclaimed stale spool claims",
                    extra={"requeued": requeued,
                           "spool": str(self.spool.root)})

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    async def _scheduler(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._queue:
                _, _, batch = heapq.heappop(self._queue)
                self._running = batch.id
                wait = time.monotonic() - batch.admitted_monotonic
                self.telemetry.observe_queue_wait(wait)
                self.telemetry.batch_event("started")
                batch.spans.append(batch.trace.span(
                    "queue-wait", batch.admitted_ts, wait,
                    args={"batch_id": batch.id}))
                self.log.info(
                    "batch scheduled",
                    extra={"batch_id": batch.id,
                           "trace_id": batch.trace.trace_id,
                           "tenant": batch.spec.tenant,
                           "queue_wait_seconds": round(wait, 6)})
                self.metrics.counter("serve.batches_started").add()
                try:
                    if self.spool is not None:
                        await self._run_batch_spool(batch)
                    else:
                        await self._run_batch_local(batch)
                    self.metrics.counter("serve.batches_finished").add()
                    self.telemetry.batch_event("completed")
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # keep serving other batches
                    self.metrics.counter("serve.batches_errored").add()
                    self.telemetry.batch_event("errored")
                    self.log.error(
                        "batch failed",
                        extra={"batch_id": batch.id,
                               "trace_id": batch.trace.trace_id,
                               "error": f"{type(error).__name__}: "
                                        f"{error}"})
                    await batch.push({
                        "event": "batch_end", "batch_id": batch.id,
                        "trace_id": batch.trace.trace_id,
                        "error": f"{type(error).__name__}: {error}"})
                finally:
                    self._running = None
                    self.quotas.release(batch.spec.tenant,
                                        len(batch.spec.jobs))

    def _job_event(self, batch: Batch, outcome: SweepOutcome) -> Dict:
        """One streamed JSON-lines record per distinct job outcome."""
        self.metrics.counter(f"serve.jobs_{outcome.source}").add()
        digest = _digest_of(outcome.job)
        status = "ok" if outcome.ok else "failed"
        self.telemetry.observe_job(outcome.source, status,
                                   outcome.wall_seconds)
        now = time.time()
        if outcome.source in ("cache", "quarantine"):
            batch.spans.append(batch.trace.span(
                "dedup", now, 0.0,
                args={"digest": digest, "source": outcome.source}))
        batch.spans.append(batch.trace.span(
            "publish", now, 0.0,
            args={"digest": digest, "source": outcome.source,
                  "status": status}))
        self.log.info(
            "job %s", status,
            extra={"batch_id": batch.id,
                   "trace_id": batch.trace.trace_id,
                   "tenant": batch.spec.tenant, "digest": digest,
                   "source": outcome.source,
                   "attempts": outcome.attempts,
                   "wall_seconds": round(outcome.wall_seconds, 6)})
        event = {
            "event": "job",
            "batch_id": batch.id,
            "trace_id": batch.trace.trace_id,
            "digest": digest,
            "job": outcome.job.describe(),
            "source": outcome.source,
            "status": status,
            "wall_seconds": outcome.wall_seconds,
            "attempts": outcome.attempts,
        }
        if outcome.ok:
            event["result"] = aggregate_entry(
                outcome.run,
                wall_seconds=(outcome.wall_seconds
                              if outcome.source == "simulated" else 0.0))
        else:
            self.metrics.counter("serve.jobs_quarantined").add()
            event["failure"] = outcome.failure.to_dict()
        return event

    def _manifest_for(self, batch: Batch,
                      outcomes: List[SweepOutcome],
                      started_at: str, wall: float) -> RunManifest:
        """Provenance for one batch, in the CLI sweep's exact schema
        (``repro-exp diff`` and ``report`` consume it unchanged)."""
        records: List[JobRecord] = []
        aggregates: List[Dict] = []
        seen: set = set()
        simulated = failed = 0
        for outcome in outcomes:
            if outcome is None or id(outcome) in seen:
                continue  # duplicate specs share one outcome object
            seen.add(id(outcome))
            if outcome.ok:
                aggregates.append(aggregate_entry(
                    outcome.run,
                    wall_seconds=(outcome.wall_seconds
                                  if outcome.source == "simulated"
                                  else 0.0)))
            else:
                failed += 1
            if outcome.source != "simulated":
                continue
            simulated += 1
            if outcome.ok:
                records.append(JobRecord(
                    job=outcome.job.describe(),
                    wall_seconds=outcome.wall_seconds,
                    worker_pid=outcome.worker_pid,
                    attempts=outcome.attempts,
                    started_ts=outcome.started_ts))
            else:
                f = outcome.failure
                records.append(JobRecord(
                    job=outcome.job.describe(),
                    wall_seconds=f.wall_seconds,
                    worker_pid=f.worker_pid, attempts=f.attempts,
                    status="failed", cause=f.cause, error=f.error))
        specs = batch.spec.jobs
        measures = {spec.measure for spec in specs}
        warmups = {spec.warmup for spec in specs}
        seeds = {spec.seed for spec in specs}
        return RunManifest(
            command=["repro-exp", "serve", f"batch:{batch.id}"],
            experiments=[f"serve/{batch.spec.tenant}/{batch.id}"],
            benchmarks=sorted({spec.benchmark for spec in specs}),
            measure=measures.pop() if len(measures) == 1 else 0,
            warmup=warmups.pop() if len(warmups) == 1 else 0,
            seed=seeds.pop() if len(seeds) == 1 else 0,
            code_version=code_version(),
            started_at=started_at,
            finished_at=_now_iso(),
            wall_seconds=wall,
            workers=self.workers,
            jobs_simulated=simulated,
            jobs_failed=failed,
            fault_policy={"retries": self.retries,
                          "retry_backoff": self.retry_backoff,
                          "fail_fast": False,
                          "timeout": self.timeout,
                          "resume": batch.spec.resume},
            job_records=records,
            cache=self.cache.counters(),
            aggregates=aggregates,
        )

    async def _finish_batch(self, batch: Batch,
                            outcomes: List[SweepOutcome],
                            started_at: str, wall: float) -> None:
        manifest = self._manifest_for(batch, outcomes, started_at, wall)
        manifest_path = None
        if self.manifest_dir is not None:
            from pathlib import Path

            directory = Path(self.manifest_dir)
            directory.mkdir(parents=True, exist_ok=True)
            manifest_path = str(
                directory / f"{batch.id}.manifest.json")
            manifest.write(manifest_path)
        self._export_trace(batch)
        distinct = {id(o) for o in outcomes if o is not None}
        by_source: Dict[str, int] = {}
        ok = 0
        counted: set = set()
        for outcome in outcomes:
            if outcome is None or id(outcome) in counted:
                continue
            counted.add(id(outcome))
            by_source[outcome.source] = (
                by_source.get(outcome.source, 0) + 1)
            if outcome.ok:
                ok += 1
        await batch.push({
            "event": "batch_end",
            "batch_id": batch.id,
            "trace_id": batch.trace.trace_id,
            "trace_path": batch.trace_path,
            "jobs": len(batch.spec.jobs),
            "distinct_jobs": len(distinct),
            "ok": ok,
            "failed": len(distinct) - ok,
            "by_source": by_source,
            "wall_seconds": wall,
            "manifest_path": manifest_path,
            "manifest": manifest.to_dict(),
        })

    def _export_trace(self, batch: Batch) -> None:
        """Write (or refresh) the batch's Perfetto trace file."""
        if self.trace_dir is None or not batch.spans:
            return
        from pathlib import Path

        directory = Path(self.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{batch.id}.trace.json"
        try:
            write_perfetto_trace(batch.spans, str(path))
        except OSError as error:
            self.log.error("trace export failed",
                           extra={"batch_id": batch.id,
                                  "trace_id": batch.trace.trace_id,
                                  "error": str(error)})
            return
        batch.trace_path = str(path)

    async def _run_batch_local(self, batch: Batch) -> None:
        """Execute one batch on this host's pool via
        :func:`runner.run_sweep` (cache dedup included)."""
        loop = asyncio.get_running_loop()
        started_at = _now_iso()
        perf = time.perf_counter()
        await batch.push({
            "event": "batch_start", "batch_id": batch.id,
            "trace_id": batch.trace.trace_id,
            "tenant": batch.spec.tenant,
            "jobs": len(batch.spec.jobs),
            "distinct_jobs": len(set(batch.digests)),
            "mode": "local", "workers": self.workers})
        jobs = [spec.sim_job() for spec in batch.spec.jobs]

        def on_outcome(outcome: SweepOutcome) -> None:
            # Runs on the executor thread; hand the event to the loop.
            event = self._job_event(batch, outcome)
            loop.call_soon_threadsafe(
                loop.create_task, batch.push(event))

        def on_attempt(job, attempt, started_ts, duration, status,
                       worker_pid) -> None:
            # Executor thread too: one span per execution attempt,
            # retries included (list.append is atomic under the GIL).
            self.telemetry.observe_attempt(status)
            batch.spans.append(batch.trace.span(
                "simulate" if attempt == 1 else "retry",
                started_ts, duration,
                args={"digest": _digest_of(job),
                      "benchmark": job.benchmark, "attempt": attempt,
                      "status": status, "worker_pid": worker_pid}))

        outcomes = await loop.run_in_executor(None, lambda: run_sweep(
            jobs, workers=self.workers, cache=self.cache,
            timeout=self.timeout, retries=self.retries,
            retry_backoff=self.retry_backoff,
            resume=batch.spec.resume, on_outcome=on_outcome,
            on_attempt=on_attempt))
        await self._finish_batch(batch, outcomes, started_at,
                                 time.perf_counter() - perf)

    async def _run_batch_spool(self, batch: Batch) -> None:
        """Execute one batch by enqueueing cache misses into the shared
        spool and polling for worker completions.

        Cache hits and sticky quarantine records are answered directly
        (same dedup-before-fan-out as local mode); only true misses hit
        the queue, and two batches naming one digest share one spool
        entry.
        """
        from repro.experiments.pool import JobFailure
        from repro.experiments.runner import BenchmarkRun

        assert self.spool is not None
        started_at = _now_iso()
        perf = time.perf_counter()
        distinct: Dict[str, object] = {}   # digest -> SimJob
        spec_of: Dict[str, object] = {}    # digest -> JobSpec
        for spec, digest in zip(batch.spec.jobs, batch.digests):
            if digest not in distinct:
                distinct[digest] = spec.sim_job()
                spec_of[digest] = spec
        await batch.push({
            "event": "batch_start", "batch_id": batch.id,
            "trace_id": batch.trace.trace_id,
            "tenant": batch.spec.tenant,
            "jobs": len(batch.spec.jobs),
            "distinct_jobs": len(distinct),
            "mode": "spool", "spool": str(self.spool.root)})
        outcome_of: Dict[str, SweepOutcome] = {}
        pending: List[str] = []
        for digest, job in distinct.items():
            run = self.cache.load(job.config, job.benchmark, job.measure,
                                  job.warmup, job.seed)
            if run is not None:
                outcome = SweepOutcome(job=job, source="cache", run=run)
                outcome_of[digest] = outcome
                await batch.push(self._job_event(batch, outcome))
                continue
            if batch.spec.resume:
                self.cache.clear_failure(job.config, job.benchmark,
                                         job.measure, job.warmup,
                                         job.seed)
                self.spool.forget_failure(digest)
            else:
                record = self.cache.load_failure(
                    job.config, job.benchmark, job.measure, job.warmup,
                    job.seed)
                if record is not None:
                    failure = JobFailure.from_dict(job, record)
                    outcome = SweepOutcome(
                        job=job, source="quarantine", failure=failure,
                        attempts=failure.attempts,
                        wall_seconds=failure.wall_seconds)
                    outcome_of[digest] = outcome
                    await batch.push(self._job_event(batch, outcome))
                    continue
            self.spool.enqueue(digest, {
                "job": spec_of[digest].to_dict(),
                "policy": {"timeout": self.timeout,
                           "retries": self.retries,
                           "retry_backoff": self.retry_backoff},
                "resume": batch.spec.resume,
                "batch_id": batch.id,
                "trace": batch.trace.to_wire(),
                "enqueued_ts": time.time(),
            })
            pending.append(digest)
        while pending:
            await asyncio.sleep(self.spool_poll)
            still: List[str] = []
            for digest in pending:
                state, payload = self.spool.state(digest)
                job = distinct[digest]
                if state == "done" and payload is not None:
                    outcome = SweepOutcome(
                        job=job,
                        source=payload.get("source", "simulated"),
                        run=BenchmarkRun.from_dict(payload["run"]),
                        wall_seconds=payload.get("wall_seconds", 0.0),
                        attempts=payload.get("attempts", 0))
                elif state == "failed" and payload is not None:
                    failure = JobFailure.from_dict(
                        job, payload.get("failure", {}))
                    outcome = SweepOutcome(
                        job=job, source="simulated", failure=failure,
                        attempts=failure.attempts,
                        wall_seconds=failure.wall_seconds)
                else:
                    still.append(digest)
                    continue
                self._merge_worker_spans(batch, payload)
                outcome_of[digest] = outcome
                await batch.push(self._job_event(batch, outcome))
            pending = still
        outcomes = [outcome_of[digest] for digest in batch.digests]
        await self._finish_batch(batch, outcomes, started_at,
                                 time.perf_counter() - perf)

    def _merge_worker_spans(self, batch: Batch, payload: Dict) -> None:
        """Stitch a spool worker's spans into the batch's trace.

        Workers serialise their spans (claim, simulate, retries) into
        the done/failed payload; spans from another batch's earlier
        completion of the same digest keep their own trace id and are
        skipped.  Attempt counters move here so ``/v1/metrics``
        reflects spool-side retries too.
        """
        spans = payload.get("spans")
        if not isinstance(spans, list):
            return
        for span in spans:
            if not isinstance(span, dict):
                continue
            if span.get("trace_id") != batch.trace.trace_id:
                continue
            batch.spans.append(span)
            status = (span.get("args") or {}).get("status")
            if span.get("name") in ("simulate", "retry") and status:
                self.telemetry.observe_attempt(str(status))

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        method = path = "-"
        status: Optional[int] = None
        try:
            try:
                request = await self._read_request(reader)
                if request is None:    # connection closed with no data
                    return
                method, path, body = request
                status = await self._route(method, path, body, writer)
            except _RequestError as error:
                method, path = error.method, error.path
                status = self._respond(writer, error.status,
                                       {"error": error.reason})
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            status = status if status is not None else 0
        finally:
            if status is not None:
                self._access(method, path, status,
                             time.perf_counter() - started)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _access(self, method: str, path: str, status: int,
                seconds: float) -> None:
        """One access-log line + request metrics per HTTP exchange.

        ``status`` 0 means the client vanished mid-response; the
        request still counts, labeled with code 0.
        """
        route = (normalize_route(path) if path != "-" else "<malformed>")
        self.telemetry.observe_request(route, method, status, seconds)
        self.access_log.info(
            "%s %s %s", method, path, status,
            extra={"status": status, "route": route,
                   "duration_ms": round(seconds * 1e3, 3)})

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _RequestError(400, "malformed request line")
        method, path, _version = parts
        length = 0
        while True:
            header = await reader.readline()
            if len(header) > _MAX_LINE:
                raise _RequestError(431, "request header too large",
                                    method, path)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _RequestError(400, "bad Content-Length",
                                        method, path) from None
        if length < 0:
            raise _RequestError(400, "bad Content-Length", method, path)
        if length > _MAX_BODY:
            raise _RequestError(413, "request body too large",
                                method, path)
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    @staticmethod
    def _respond(writer: asyncio.StreamWriter, status: int,
                 payload: Dict) -> int:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = http.client.responses.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        return status

    @staticmethod
    def _respond_text(writer: asyncio.StreamWriter, status: int,
                      text: str, content_type: str) -> int:
        body = text.encode()
        reason = http.client.responses.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        return status

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> int:
        path = path.split("?", 1)[0]
        if method == "POST" and path == "/v1/batches":
            return await self._handle_submit(body, writer)
        if method == "GET" and path == "/v1/status":
            return self._respond(writer, 200, self.status())
        if method == "GET" and path == "/v1/metrics":
            return self._respond_text(
                writer, 200, self.telemetry.render(self._collect),
                CONTENT_TYPE)
        if method == "GET" and path.startswith("/v1/batches/"):
            rest = path[len("/v1/batches/"):]
            if rest.endswith("/events"):
                batch = self.batches.get(rest[: -len("/events")])
                if batch is None:
                    return self._respond(writer, 404,
                                         {"error": "unknown batch"})
                return await self._stream_events(batch, writer)
            batch = self.batches.get(rest)
            if batch is None:
                return self._respond(writer, 404,
                                     {"error": "unknown batch"})
            return self._respond(writer, 200, batch.snapshot())
        if path.startswith("/v1/"):
            return self._respond(
                writer, 405 if method not in ("GET", "POST") else 404,
                {"error": f"no route for {method} {path}"})
        return self._respond(writer, 404,
                             {"error": f"no route for {method} {path}"})

    async def _handle_submit(self, body: bytes,
                             writer: asyncio.StreamWriter) -> int:
        assert self._wake is not None
        admit_ts = time.time()
        admit_perf = time.perf_counter()
        try:
            data = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            self.telemetry.protocol_rejected()
            return self._respond(
                writer, 400,
                {"error": "request body is not valid JSON"})
        try:
            spec = parse_batch(data)
        except ProtocolError as error:
            self.metrics.counter("serve.rejected_protocol").add()
            self.telemetry.protocol_rejected()
            self.log.warning("submission rejected",
                             extra={"reason": str(error)})
            return self._respond(writer, 400, {"error": str(error)})
        try:
            policy = self.quotas.admit(spec.tenant, len(spec.jobs))
        except QuotaExceeded as error:
            self.metrics.counter("serve.rejected_quota").add()
            self.telemetry.quota_rejected(spec.tenant)
            self.log.warning("quota rejection",
                             extra={"tenant": spec.tenant,
                                    "reason": str(error)})
            return self._respond(writer, 429, {"error": str(error)})
        digests = [job.digest() for job in spec.jobs]
        batch = Batch(f"b{next(self._ids):06d}", spec, digests,
                      policy.priority,
                      trace=TraceContext.new(spec.trace_id))
        batch.spans.append(batch.trace.span(
            "admit", admit_ts, time.perf_counter() - admit_perf,
            args={"batch_id": batch.id, "tenant": spec.tenant,
                  "jobs": len(spec.jobs)},
            span_id=batch.trace.span_id))
        self.batches[batch.id] = batch
        heapq.heappush(self._queue,
                       (-policy.priority, next(self._seq), batch))
        self._wake.set()
        self.metrics.counter("serve.batches_accepted").add()
        self.metrics.counter("serve.jobs_accepted").add(len(spec.jobs))
        self.telemetry.batch_event("admitted")
        self.log.info(
            "batch admitted",
            extra={"batch_id": batch.id,
                   "trace_id": batch.trace.trace_id,
                   "tenant": spec.tenant, "jobs": len(spec.jobs),
                   "priority": policy.priority})
        return self._respond(writer, 202, {
            "batch_id": batch.id,
            "tenant": spec.tenant,
            "trace_id": batch.trace.trace_id,
            "priority": policy.priority,
            "jobs": len(spec.jobs),
            "distinct_jobs": len(set(digests)),
            "digests": digests,
            "events_url": f"/v1/batches/{batch.id}/events",
            "batch_url": f"/v1/batches/{batch.id}",
        })

    async def _stream_events(self, batch: Batch,
                             writer: asyncio.StreamWriter) -> int:
        started_ts = time.time()
        perf = time.perf_counter()
        delivered = 0
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            async for event in batch.stream():
                chunk = (json.dumps(event, sort_keys=True)
                         + "\n").encode()
                writer.write(f"{len(chunk):x}\r\n".encode() + chunk
                             + b"\r\n")
                await writer.drain()
                delivered += 1
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            batch.spans.append(batch.trace.span(
                "stream", started_ts, time.perf_counter() - perf,
                args={"batch_id": batch.id, "events": delivered}))
            if batch.done:
                # The trace file written at batch_end predates this
                # subscriber's stream span; refresh it in place.
                self._export_trace(batch)
        return 200

    def _collect(self) -> None:
        """Refresh sampled gauges under the telemetry lock, so one
        scrape is one consistent snapshot."""
        registry = self.telemetry.registry
        registry.gauge("repro_queue_depth").set(float(len(self._queue)))
        registry.gauge("repro_uptime_seconds").set(
            time.monotonic() - self.started_monotonic)
        registry.gauge("repro_stream_subscribers").set(float(sum(
            len(batch.subscribers) for batch in self.batches.values())))
        registry.gauge("repro_stream_backlog_events").set(float(sum(
            batch.stream_backlog() for batch in self.batches.values())))
        for op, value in self.cache.counters().items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue  # counters() also carries the root path
            self.telemetry.cache_ops.labels(op=op).value = value
        if self.spool is not None:
            for state, count in self.spool.depth().items():
                self.telemetry.spool_jobs.labels(state=state).set(
                    float(count))
            self.telemetry.spool_reclaimed.labels().value = (
                self.spool.reclaimed)
        self.telemetry.build_info.labels(
            code_version=code_version(), host=_HOST).set(1.0)

    def status(self) -> Dict:
        """The ``/v1/status`` payload: every counter the ops story
        needs, straight from the existing registries."""
        spool_status = None
        if self.spool is not None:
            spool_status = self.spool.depth()
            spool_status["reclaimed"] = self.spool.reclaimed
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "hostname": _HOST,
                "pid": os.getpid(),
                "workers": self.workers,
                "mode": "spool" if self.spool is not None else "local",
                "started_at": self.started_at,
                "uptime_seconds": (time.monotonic()
                                   - self.started_monotonic),
                "code_version": code_version(),
            },
            "queue": {
                "depth": len(self._queue),
                "running": self._running,
                "batches_total": len(self.batches),
            },
            "cache": self.cache.counters(),
            "metrics": self.metrics.counters(),
            "tenants": self.quotas.snapshot(),
            "spool": spool_status,
        }


# ----------------------------------------------------------------------
# Embedding helper (tests drive the server in-process)
# ----------------------------------------------------------------------


def start_in_background(**kwargs):
    """Start a :class:`SimServer` on its own event-loop thread.

    Returns ``(server, stop)``: ``server.port`` is bound (port 0 means
    an OS-assigned free port) by the time this returns, and ``stop()``
    shuts the loop down and joins the thread.  Test machinery — the
    CLI path is :func:`cmd`.
    """
    server = SimServer(**kwargs)
    ready = threading.Event()
    state: Dict[str, object] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        state["loop"] = loop
        loop.run_until_complete(server.start())
        ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")

    def stop() -> None:
        loop = state["loop"]

        async def _shutdown() -> None:
            await server.stop()
            loop.stop()

        loop.call_soon_threadsafe(
            lambda: loop.create_task(_shutdown()))
        thread.join(timeout=30)

    return server, stop


# ----------------------------------------------------------------------
# repro-exp serve
# ----------------------------------------------------------------------


def configure_parser(parser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8023,
                        help="bind port; 0 picks a free port "
                             "(default 8023)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache "
                             "(default ~/.cache/fxa-repro)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="pool worker processes per sweep "
                             "(default 1)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job execution deadline")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry budget before quarantine "
                             "(default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.25,
                        metavar="SECONDS",
                        help="base exponential-backoff delay "
                             "(default 0.25)")
    parser.add_argument("--quotas", default=None, metavar="FILE",
                        help="per-tenant quota/priority policy JSON")
    parser.add_argument("--spool", default=None, metavar="DIR",
                        help="shared spool directory: enqueue misses "
                             "for repro-exp spool-worker hosts instead "
                             "of simulating locally")
    parser.add_argument("--manifest-dir", default=None, metavar="DIR",
                        help="write one run manifest per batch here")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write one Perfetto trace per batch here "
                             "(admit/queue/claim/simulate spans across "
                             "all participating hosts)")
    parser.add_argument("--spool-reclaim", type=float, default=None,
                        metavar="SECONDS",
                        help="requeue spool claims idle longer than "
                             "this (the owning worker died); server-"
                             "side complement of the worker's "
                             "--reclaim-after")
    parser.add_argument("--inject-fault", default=None, metavar="SPEC",
                        help="fault injector for smoke tests, e.g. "
                             "crash:mcf (see fxa-experiments "
                             "--inject-fault)")
    slog.add_logging_args(parser)


def cmd(args) -> int:
    slog.configure_from_args(args)
    log = slog.get_logger("repro.serve")
    quotas = (QuotaRegistry.from_file(args.quotas)
              if args.quotas else QuotaRegistry())
    spool = Spool(args.spool) if args.spool else None
    if args.inject_fault:
        from repro.experiments.pool import FaultSpec, set_fault_injector

        set_fault_injector(FaultSpec.parse(args.inject_fault))
    server = SimServer(
        cache=DiskCache(args.cache_dir),
        workers=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        quotas=quotas,
        spool=spool,
        manifest_dir=args.manifest_dir,
        host=args.host,
        port=args.port,
        trace_dir=args.trace_dir,
        spool_reclaim=args.spool_reclaim,
    )

    async def _main() -> None:
        await server.start()
        log.info(
            "listening on http://%s:%s", server.host, server.port,
            extra={"mode": ("spool" if spool is not None else "local"),
                   "workers": server.workers,
                   "cache": str(server.cache.root),
                   **({"spool_dir": str(spool.root)} if spool else {}),
                   **({"trace_dir": args.trace_dir}
                      if args.trace_dir else {})})
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        log.info("interrupted")
    return 0


__all__ = ["Batch", "SimServer", "start_in_background"]

"""Simulation as a service: HTTP job server over the sweep engine.

The package splits along the obvious seams:

* :mod:`repro.serve.protocol` — job/batch specs, validation, digests
* :mod:`repro.serve.quota` — per-tenant admission and priorities
* :mod:`repro.serve.spool` — shared-directory multi-host work queue
* :mod:`repro.serve.server` — the asyncio HTTP server + scheduler
* :mod:`repro.serve.client` — stdlib client (submit/stream/status)

Heavy modules are imported lazily by the CLI; importing ``repro.serve``
itself pulls in only the protocol types.
"""

from repro.serve.protocol import (
    BatchSpec,
    JobSpec,
    ProtocolError,
    parse_batch,
    parse_job,
)

__all__ = [
    "BatchSpec",
    "JobSpec",
    "ProtocolError",
    "parse_batch",
    "parse_job",
]

"""Plain-text bar charts for experiment results.

The paper's figures are bar charts; these helpers render the same data
as unicode bars so results read naturally in a terminal or a README —
no plotting dependency required.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """Render ``value`` as a bar of at most ``width`` characters."""
    if scale <= 0:
        return ""
    cells = max(0.0, value / scale) * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * 8)] if full < width else ""
    return "█" * min(full, width) + partial


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    reference: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """One bar per entry, labels left, values right.

    ``reference`` draws a marker column at that value (e.g. 1.0 for
    relative-to-BIG charts).
    """
    if not values:
        return title
    label_width = max(len(label) for label in values)
    scale = max(list(values.values())
                + ([reference] if reference else []))
    lines = [title] if title else []
    for label, value in values.items():
        bar = _bar(value, scale, width)
        marker = ""
        if reference is not None and scale > 0:
            position = int(reference / scale * width)
            padded = bar.ljust(width)
            if position < width:
                marker_char = "|" if len(bar) <= position else "¦"
                padded = (padded[:position] + marker_char
                          + padded[position + 1:])
            bar = padded
        lines.append(
            f"{label:<{label_width}}  {bar}  " + fmt.format(value)
        )
    return "\n".join(lines)


def grouped_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 30,
) -> str:
    """Nested chart: one block of bars per outer key."""
    lines = [title] if title else []
    for group, values in groups.items():
        lines.append(f"-- {group}")
        lines.append(bar_chart(values, width=width))
        lines.append("")
    return "\n".join(lines).rstrip()


#: Segment fills for stacked bars, in legend order.
_STACK_FILLS = "█▓▒░▞▚▙▜▟▛"


def stacked_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 50,
    fmt: str = "{:.0f}",
) -> str:
    """Stacked horizontal bars: ``{bar label: {segment: value}}``.

    Each bar is partitioned proportionally among its segments (all bars
    share one scale, so lengths compare across bars); a legend line maps
    fill characters to segment names.  Used by the ``--stall-report``
    stall-cause view, where each bar is a model and each segment a
    stall cause.
    """
    if not groups:
        return title
    segments: list = []
    for values in groups.values():
        for key in values:
            if key not in segments:
                segments.append(key)
    fills = {
        segment: _STACK_FILLS[index % len(_STACK_FILLS)]
        for index, segment in enumerate(segments)
    }
    totals = {
        label: sum(values.values()) for label, values in groups.items()
    }
    scale = max(totals.values())
    label_width = max(len(label) for label in groups)
    lines = [title] if title else []
    lines.append("  ".join(f"{fills[s]} {s}" for s in segments))
    for label, values in groups.items():
        bar = ""
        cumulative = 0.0
        for segment in segments:
            value = values.get(segment, 0)
            if not value or scale <= 0:
                continue
            cumulative += value / scale * width
            bar += fills[segment] * max(0, round(cumulative) - len(bar))
        lines.append(f"{label:<{label_width}}  {bar:<{width}}  "
                     + fmt.format(totals[label]))
    return "\n".join(lines)


_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line trend of ``values`` (the ``--timeline-report`` view).

    More values than ``width`` are bucketed by averaging so long
    timelines still fit on a line; a flat series renders mid-height.
    """
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for index in range(width):
            begin = index * len(values) // width
            end = max(begin + 1, (index + 1) * len(values) // width)
            chunk = values[begin:end]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARKS[len(_SPARKS) // 2] * len(values)
    top = len(_SPARKS) - 1
    return "".join(
        _SPARKS[int((value - low) / span * top)] for value in values
    )


def series_chart(
    series: Mapping[str, Mapping[int, float]],
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render {line: {x: y}} as an aligned text table (Figures 12/13)."""
    lines = [title] if title else []
    xs: Sequence[int] = sorted(
        {x for values in series.values() for x in values}
    )
    lines.append("x     " + "".join(f"{x:>9d}" for x in xs))
    for label, values in series.items():
        cells = "".join(
            f"{fmt.format(values[x]):>9s}" if x in values else " " * 9
            for x in xs
        )
        lines.append(f"{label:<6s}{cells}")
    return "\n".join(lines)


_SCATTER_GLYPHS = "·ox+*"


def scatter_chart(
    series: Mapping[str, Sequence[Sequence[float]]],
    title: str = "",
    width: int = 56,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    fmt: str = "{:.3g}",
) -> str:
    """Render ``{series: [(x, y), ...]}`` as a unicode scatter plot.

    Series are drawn in iteration order and later series overdraw
    earlier ones in shared cells, so callers put the emphasised cloud
    (e.g. a Pareto frontier) last.  Degenerate extents (all points on
    one x or one y) collapse that axis to the plot centre.
    """
    points = [(x, y) for cloud in series.values() for x, y in cloud]
    lines = [title] if title else []
    if not points:
        lines.append("(no points)")
        return "\n".join(lines)
    x_low = min(x for x, _ in points)
    x_high = max(x for x, _ in points)
    y_low = min(y for _, y in points)
    y_high = max(y for _, y in points)
    x_span = x_high - x_low
    y_span = y_high - y_low

    def _cell(value: float, low: float, span: float, cells: int) -> int:
        if span <= 0:
            return cells // 2
        return min(cells - 1, int((value - low) / span * cells))

    grid = [[" "] * width for _ in range(height)]
    for index, cloud in enumerate(series.values()):
        glyph = _SCATTER_GLYPHS[min(index, len(_SCATTER_GLYPHS) - 1)]
        for x, y in cloud:
            col = _cell(x, x_low, x_span, width)
            row = height - 1 - _cell(y, y_low, y_span, height)
            grid[row][col] = glyph
    margin = max(len(fmt.format(y_low)), len(fmt.format(y_high)), 6)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = fmt.format(y_high)
        elif row_index == height - 1:
            label = fmt.format(y_low)
        else:
            label = ""
        lines.append(f"{label:>{margin}s} │{''.join(row)}")
    lines.append(" " * margin + " └" + "─" * width)
    left = fmt.format(x_low)
    right = fmt.format(x_high)
    gap = max(1, width - len(left) - len(right))
    lines.append(" " * (margin + 2) + left + " " * gap + right)
    legend = "  ".join(
        f"{_SCATTER_GLYPHS[min(i, len(_SCATTER_GLYPHS) - 1)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{y_label} ↑ vs {x_label} →   {legend}")
    return "\n".join(lines)

"""RENO combination study (paper Section VII-C).

RENO eliminates register moves at rename; the paper notes it is
orthogonal to FXA ("this optimization can be implemented in FXA, and
improved results can be achieved by combining them").  This experiment
measures all four corners: baseline, +RENO, FXA, FXA+RENO.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core import model_config
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import ALL_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """Return {corner: {"ipc", "energy", "eliminated_per_kinst"}}."""
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    corners = {
        "BIG": model_config("BIG"),
        "BIG+RENO": replace(model_config("BIG"), name="BIG+RENO",
                            move_elimination=True),
        "HALF+FX": model_config("HALF+FX"),
        "HALF+FX+RENO": replace(model_config("HALF+FX"),
                                name="HALF+FX+RENO",
                                move_elimination=True),
    }
    prefetch([(c, b) for c in corners.values() for b in benchmarks],
             measure=measure, warmup=warmup)
    # Cross-corner sums/geomeans: drop benchmarks with quarantined jobs.
    benchmarks = complete_subset(corners.values(), benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed on every corner; nothing to "
            "aggregate (see the failure summary)")
    base = {
        bench: run_benchmark(corners["BIG"], bench, measure, warmup)
        for bench in benchmarks
    }
    base_energy = sum(r.total_energy for r in base.values())
    results: Dict[str, Dict[str, float]] = {}
    for label, config in corners.items():
        runs = [run_benchmark(config, bench, measure, warmup)
                for bench in benchmarks]
        committed = sum(r.stats.committed for r in runs)
        eliminated = sum(
            r.stats.events.moves_eliminated for r in runs
        )
        results[label] = {
            "ipc": geomean([
                r.ipc / base[r.benchmark].ipc for r in runs
            ]),
            "energy": (sum(r.total_energy for r in runs)
                       / base_energy),
            "eliminated_per_kinst": 1000.0 * eliminated
            / max(1, committed),
        }
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    lines = ["RENO combination (Section VII-C)",
             f"{'corner':14s}{'IPC':>8s}{'energy':>8s}{'elim/kI':>9s}"]
    for label, row in results.items():
        lines.append(
            f"{label:14s}{row['ipc']:8.3f}{row['energy']:8.3f}"
            f"{row['eliminated_per_kinst']:9.1f}"
        )
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Figure 8: energy consumption relative to BIG.

8a stacks per-component energy (IQ, LSQ, (P)RF, RAT, IXU, FUs, OTHERS,
FPU, Decoder, L1D, L1I, L2) for each model, normalised to BIG's total.
8b isolates the FUs and bypass networks, split into OXU/IXU dynamic and
static energy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import model_config, MODEL_NAMES
from repro.energy import Component
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    prefetch,
    run_benchmark,
)
from repro.workloads import ALL_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    models: Sequence[str] = MODEL_NAMES,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict]:
    """Return both panels.

    ``figure8a``: {model: {component-name: energy relative to BIG's
    whole-processor total}} — stacking the components of one model gives
    its bar height.
    ``figure8b``: {model: {"oxu_dynamic", "oxu_static", "ixu_dynamic",
    "ixu_static"}} relative to BIG's FUs+bypass total.
    """
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    configs = [model_config(m) for m in models]
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    # Stacked sums must cover the same programs for every model, so a
    # benchmark any model's job was quarantined on is dropped whole.
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed on every model; nothing to "
            "aggregate (see the failure summary)")
    sums: Dict[str, Dict[Component, Dict[str, float]]] = {}
    for model in models:
        config = model_config(model)
        acc = {c: {"dynamic": 0.0, "static": 0.0} for c in Component}
        for bench in benchmarks:
            breakdown = run_benchmark(config, bench, measure, warmup).energy
            for component in Component:
                acc[component]["dynamic"] += breakdown.dynamic.get(
                    component, 0.0)
                acc[component]["static"] += breakdown.static.get(
                    component, 0.0)
        sums[model] = acc

    big_total = sum(
        v["dynamic"] + v["static"] for v in sums["BIG"].values()
    )
    figure8a = {
        model: {
            component.value:
                (acc[component]["dynamic"] + acc[component]["static"])
                / big_total
            for component in Component
        }
        for model, acc in sums.items()
    }

    def eu(acc, kind):
        return acc[Component.FUS][kind], acc[Component.IXU][kind]

    big_eu_total = sum(eu(sums["BIG"], "dynamic")) + sum(
        eu(sums["BIG"], "static"))
    figure8b = {}
    for model, acc in sums.items():
        oxu_dyn, ixu_dyn = eu(acc, "dynamic")
        oxu_st, ixu_st = eu(acc, "static")
        figure8b[model] = {
            "oxu_dynamic": oxu_dyn / big_eu_total,
            "oxu_static": oxu_st / big_eu_total,
            "ixu_dynamic": ixu_dyn / big_eu_total,
            "ixu_static": ixu_st / big_eu_total,
        }
    return {"figure8a": figure8a, "figure8b": figure8b}


def format_table(results: Dict[str, Dict]) -> str:
    lines = ["Figure 8a: energy relative to BIG (per component)"]
    figure8a = results["figure8a"]
    models = list(figure8a)
    components = list(next(iter(figure8a.values())))
    lines.append(f"{'component':10s}"
                 + "".join(f"{m:>10s}" for m in models))
    for component in components:
        cells = "".join(f"{figure8a[m][component]:10.3f}" for m in models)
        lines.append(f"{component:10s}{cells}")
    totals = "".join(
        f"{sum(figure8a[m].values()):10.3f}" for m in models
    )
    lines.append(f"{'TOTAL':10s}{totals}")
    lines.append("")
    lines.append("Figure 8b: FUs+bypass energy relative to BIG")
    figure8b = results["figure8b"]
    parts = ("oxu_dynamic", "oxu_static", "ixu_dynamic", "ixu_static")
    lines.append(f"{'part':12s}" + "".join(f"{m:>10s}" for m in models))
    for part in parts:
        cells = "".join(f"{figure8b[m][part]:10.3f}" for m in models)
        lines.append(f"{part:12s}{cells}")
    totals = "".join(
        f"{sum(figure8b[m].values()):10.3f}" for m in models
    )
    lines.append(f"{'TOTAL':12s}{totals}")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

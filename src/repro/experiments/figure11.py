"""Figure 11: IPC versus IXU FU configuration, full vs opt bypass.

The paper sweeps HALF+FX's IXU FU arrangement and normalises IPC to the
[3,3,3] configuration with the full bypass network.  "opt" omits operand
bypassing between FUs more than two stages apart (Section III-A2); the
headline observation is that [3,1,1]/opt loses only ~0.5 %.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core import IXUConfig
from repro.core.presets import half_fx_config
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import ALL_BENCHMARKS

#: FU arrangements on the figure's x-axis.
SWEEP: Tuple[Tuple[int, ...], ...] = (
    (3, 3, 3), (3, 3, 1), (3, 2, 1), (3, 1, 1), (2, 1, 1), (1, 1, 1),
)


def _config(stage_fus: Tuple[int, ...], full_bypass: bool):
    ixu = IXUConfig(
        stage_fus=stage_fus,
        bypass_stage_limit=None if full_bypass else 2,
    )
    label = "full" if full_bypass else "opt"
    config = half_fx_config(ixu)
    return replace(config, name=f"HALF+FX{list(stage_fus)}/{label}")


def run(
    benchmarks: Optional[Sequence[str]] = None,
    sweep: Sequence[Tuple[int, ...]] = SWEEP,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """Return {"full"|"opt": {"[3, 3, 3]": relative IPC, ...}}.

    Values are geometric-mean IPC over the benchmarks, relative to
    [3,3,3] with the full bypass network.
    """
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    sweep = tuple(sweep)
    configs = [_config((3, 3, 3), True)]
    for stage_fus in sweep:
        configs.append(_config(stage_fus, True))
        configs.append(_config(stage_fus, False))
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    # Relative-IPC geomeans need every sweep point on every program:
    # drop benchmarks with quarantined jobs (the sweep's explicit gaps).
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed on every sweep point; nothing to "
            "aggregate (see the failure summary)")

    def mean_ipc(config) -> float:
        return geomean([
            run_benchmark(config, bench, measure, warmup).ipc
            for bench in benchmarks
        ])

    baseline = mean_ipc(_config((3, 3, 3), full_bypass=True))
    results: Dict[str, Dict[str, float]] = {"full": {}, "opt": {}}
    for stage_fus in sweep:
        key = str(list(stage_fus))
        results["full"][key] = (
            mean_ipc(_config(stage_fus, True)) / baseline
        )
        results["opt"][key] = (
            mean_ipc(_config(stage_fus, False)) / baseline
        )
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    configs = list(results["full"])
    lines = ["Figure 11: IPC relative to [3,3,3]/full",
             f"{'IXU config':12s}{'full':>8s}{'opt':>8s}"]
    for config in configs:
        lines.append(
            f"{config:12s}{results['full'][config]:8.3f}"
            f"{results['opt'][config]:8.3f}"
        )
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

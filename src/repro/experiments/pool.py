"""Parallel simulation driver: fan (config, benchmark) jobs over workers.

Design-space evaluation is embarrassingly parallel across (model,
benchmark) pairs — every figure in the reproduction is a static job list
with no cross-job data flow.  :func:`run_jobs` maps such a list over
worker processes:

* **Deterministic**: each job re-derives its trace from (benchmark,
  seed), so a job's result is a pure function of the job tuple; results
  return in submission order and are bit-for-bit identical to a serial
  run regardless of worker count or scheduling.
* **Fault tolerant**: a worker exception, a wedged (timed-out) job or a
  worker process dying outright produces a structured
  :class:`JobFailure` in the job's result slot instead of tearing down
  the sweep; every healthy job still completes.  A per-job retry budget
  (``retries``, exponential ``retry_backoff``) re-runs transient
  failures before quarantining them; ``fail_fast`` instead aborts on the
  first exhausted job with :class:`SweepAborted`, which carries every
  result completed before the abort.
* **Graceful fallback**: ``workers <= 1``, a single job, or a platform
  without ``fork`` (no start method at all) degrades to a plain serial
  loop in-process.
* **Accounted**: every :class:`JobResult`/:class:`JobFailure` carries
  the job's wall-clock seconds, the worker pid and the attempt count.

Timeout semantics: ``timeout`` bounds a job's *execution* time, measured
from the moment a worker actually starts it — time spent queued behind
other jobs while ``workers < len(jobs)`` is never charged (each job is
scheduled into a free worker slot and its deadline starts at its own
worker-side start signal).  In the serial path the check is necessarily
post-hoc: the job has already run to completion in-process when the
over-budget wall time is observed, so it is quarantined without retry
(a deterministic job would only run long again) and all prior completed
results are kept.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as queue_lib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import CoreConfig

#: Parent-side poll interval while waiting on worker results.
_POLL_SECONDS = 0.02
#: How long a silently-exited worker may owe its (possibly in-flight)
#: result message before the parent declares a worker-death.
_DEATH_GRACE_SECONDS = 0.5
#: Extra allowance on top of ``timeout`` for a worker that never even
#: reported its execution start (covers process startup / import cost).
_START_GRACE_SECONDS = 5.0
#: Ceiling on the exponential retry backoff.  Uncapped,
#: ``backoff * 2**(n-1)`` passes an hour by attempt 14 — a generous
#: retry budget must never strand a job that long between attempts.
MAX_RETRY_DELAY = 60.0


def retry_delay(retry_backoff: float, attempts: int,
                job: Optional["SimJob"] = None,
                cap: float = MAX_RETRY_DELAY) -> float:
    """Delay before re-running a job whose ``attempts``-th try failed.

    Exponential in the attempt count but capped at ``cap``, then scaled
    into ``[delay/2, delay)`` by a jitter derived deterministically from
    the job identity and attempt number: when a shared-resource hiccup
    fails a whole sweep at once, the retries spread out instead of
    waking in lockstep and hammering the same resource again.  No RNG
    state and no wall clock participate, so a re-run schedules
    identically — the delay only shapes timing, never results, which
    stay bit-identical.
    """
    if retry_backoff <= 0:
        return 0.0
    delay = min(cap, retry_backoff * (2.0 ** (attempts - 1)))
    if job is not None:
        token = f"{job.describe()}#{attempts}".encode()
        word = int.from_bytes(
            hashlib.sha256(token).digest()[:8], "big")
        delay *= 0.5 + 0.5 * (word / 2.0 ** 64)
    return delay


@dataclass(frozen=True)
class SimJob:
    """One simulation request: a pure function of these five fields."""

    config: CoreConfig
    benchmark: str
    measure: int
    warmup: int
    seed: int = 0

    def describe(self) -> str:
        return (f"{self.config.name}/{self.benchmark}"
                f"(measure={self.measure}, warmup={self.warmup},"
                f" seed={self.seed})")


@dataclass
class JobResult:
    """One finished job plus its execution accounting."""

    job: SimJob
    run: object                  # BenchmarkRun (import cycle avoided)
    wall_seconds: float = 0.0
    worker_pid: int = field(default_factory=os.getpid)
    attempts: int = 1
    started_ts: float = 0.0      # host wall clock (time.time) at start

    @property
    def ok(self) -> bool:
        return True


@dataclass
class JobFailure:
    """One job the sweep gave up on: quarantined, not fatal.

    ``cause`` is one of ``"exception"`` (the worker raised),
    ``"timeout"`` (the job exceeded the per-job execution deadline) or
    ``"worker-death"`` (the worker process exited without reporting a
    result — OOM kill, segfault, ``os._exit``).  ``attempts`` counts
    every try, including retries.
    """

    job: SimJob
    cause: str
    error: str = ""
    error_type: str = ""
    attempts: int = 1
    wall_seconds: float = 0.0
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        text = (f"{self.job.describe()}: {self.cause} after "
                f"{self.attempts} attempt(s)")
        if self.error:
            text += f" — {self.error}"
        return text

    def to_dict(self) -> Dict:
        """Scalar fields only (the job is recorded as its description)."""
        return {
            "job": self.job.describe(),
            "cause": self.cause,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "worker_pid": self.worker_pid,
        }

    @classmethod
    def from_dict(cls, job: SimJob, data: Dict) -> "JobFailure":
        """Rehydrate a persisted record against the live ``job``."""
        return cls(
            job=job,
            cause=data.get("cause", "exception"),
            error=data.get("error", ""),
            error_type=data.get("error_type", ""),
            attempts=int(data.get("attempts", 1)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            worker_pid=int(data.get("worker_pid", 0)),
        )


class SweepAborted(RuntimeError):
    """``fail_fast`` abort: the first quarantined job stopped the sweep.

    ``completed`` holds every :class:`JobResult` finished before the
    abort (in submission order) so callers can persist the work already
    done; ``failure`` is the job that exhausted its retry budget.
    """

    def __init__(self, failure: JobFailure,
                 completed: Sequence[JobResult]):
        self.failure = failure
        self.completed = list(completed)
        super().__init__(failure.describe())


class JobTimeoutError(SweepAborted):
    """A ``fail_fast`` abort whose cause was the per-job timeout."""


class FaultSpec:
    """Deterministic, picklable fault injector for tests and CI smoke.

    Spec syntax ``KIND[:BENCHMARK[:PARAM]]`` — an empty or ``*``
    benchmark matches every job:

    * ``crash[:bench]`` — raise inside the worker on every attempt.
    * ``flaky[:bench[:n]]`` — raise on the first ``n`` attempts
      (default 1), then succeed; exercises the retry path.
    * ``die[:bench]`` — ``os._exit`` the worker (no result message),
      exercising worker-death isolation.
    * ``hang[:bench[:seconds]]`` — sleep (default 3600 s) so the job
      trips the execution timeout.
    * ``sleep[:bench[:seconds]]`` — sleep (default 0.05 s) then run
      normally; makes job durations controllable in timing tests.
    """

    KINDS = ("crash", "flaky", "die", "hang", "sleep")

    def __init__(self, kind: str, benchmark: Optional[str] = None,
                 param: Optional[float] = None):
        if kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {kind!r} "
                             f"(expected one of {self.KINDS})")
        self.kind = kind
        self.benchmark = benchmark or None
        self.param = param

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.split(":")
        kind = parts[0]
        benchmark = parts[1] if len(parts) > 1 else None
        if benchmark in ("", "*"):
            benchmark = None
        param = float(parts[2]) if len(parts) > 2 else None
        return cls(kind, benchmark, param)

    def __call__(self, job: SimJob, attempt: int) -> None:
        if self.benchmark is not None and job.benchmark != self.benchmark:
            return
        if self.kind == "crash":
            raise RuntimeError(
                f"injected crash ({job.benchmark}, attempt {attempt})")
        if self.kind == "flaky":
            budget = 1 if self.param is None else int(self.param)
            if attempt <= budget:
                raise RuntimeError(
                    f"injected flake ({job.benchmark}, attempt {attempt}"
                    f" of {budget} failing)")
        elif self.kind == "die":
            os._exit(23)
        elif self.kind == "hang":
            time.sleep(3600.0 if self.param is None else self.param)
        elif self.kind == "sleep":
            time.sleep(0.05 if self.param is None else self.param)


#: Optional callable(job, attempt) run in the worker before simulation;
#: see :func:`set_fault_injector`.
_FAULT_INJECTOR: Optional[Callable[[SimJob, int], None]] = None


def set_fault_injector(
        injector: Optional[Callable[[SimJob, int], None]]) -> None:
    """Install (or with None remove) a fault-injection hook.

    The hook runs inside the worker, before the simulation, on every
    attempt.  It is shipped to workers by value (pickled with the job),
    so it must be picklable — :class:`FaultSpec` instances and top-level
    functions qualify.  Test and CI machinery only.
    """
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = injector


def _available_start_method() -> Optional[str]:
    """Prefer fork (cheap, inherits warm imports); else spawn; else None."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    if methods:
        return methods[0]
    return None


def _execute_job(job: SimJob) -> JobResult:
    """Worker body: simulate one job (no caching — the parent caches)."""
    from repro.experiments.runner import simulate

    started_ts = time.time()
    started = time.perf_counter()
    run = simulate(job.config, job.benchmark, job.measure, job.warmup,
                   job.seed)
    return JobResult(job=job, run=run,
                     wall_seconds=time.perf_counter() - started,
                     started_ts=started_ts)


def _worker_main(job: SimJob, attempt: int, index: int, results,
                 injector) -> None:
    """Per-job worker process: report start, simulate, report outcome."""
    pid = os.getpid()
    started = time.perf_counter()
    try:
        results.put((index, attempt, "started", pid))
        if injector is not None:
            injector(job, attempt)
        result = _execute_job(job)
        results.put((index, attempt, "ok", result))
    except BaseException as exc:  # noqa: BLE001 — isolation is the point
        try:
            results.put((index, attempt, "error",
                         (type(exc).__name__, str(exc), pid,
                          time.perf_counter() - started)))
        except BaseException:
            os._exit(1)


def _terminate(proc) -> None:
    """Stop a worker process, escalating SIGTERM -> SIGKILL."""
    if proc.is_alive():
        proc.terminate()
        proc.join(0.5)
    if proc.is_alive():
        proc.kill()
        proc.join(0.5)


class _Running:
    """Parent-side state of one in-flight attempt."""

    __slots__ = ("proc", "attempt", "launched", "launched_ts",
                 "exec_started", "exec_started_ts", "deadline",
                 "dead_since")

    def __init__(self, proc, attempt: int):
        self.proc = proc
        self.attempt = attempt
        self.launched = time.monotonic()
        self.launched_ts = time.time()
        self.exec_started: Optional[float] = None
        self.exec_started_ts: Optional[float] = None
        self.deadline: Optional[float] = None
        self.dead_since: Optional[float] = None


def _notify_attempt(on_attempt, job: SimJob, attempt: int,
                    started_ts: float, duration: float, status: str,
                    worker_pid: int) -> None:
    """Fire the per-attempt telemetry hook; never let it fail a sweep."""
    if on_attempt is None:
        return
    try:
        on_attempt(job, attempt, started_ts, duration, status,
                   worker_pid)
    except Exception:
        pass


def _run_parallel(
    jobs: Sequence[SimJob],
    workers: int,
    timeout: Optional[float],
    retries: int,
    retry_backoff: float,
    fail_fast: bool,
    on_result,
    context,
    on_attempt=None,
) -> List[Union[JobResult, JobFailure]]:
    """Slot-based scheduler: one process per attempt, deadline per job.

    At most ``workers`` attempts run at once; a job's execution deadline
    starts at its worker's "started" signal, so queue wait is never
    charged against ``timeout``.  Outcomes are reassembled into
    submission order regardless of completion order.
    """
    results_q = context.Queue()
    injector = _FAULT_INJECTOR
    outcomes: List[Optional[Union[JobResult, JobFailure]]] = (
        [None] * len(jobs))
    pending = deque((index, 1) for index in range(len(jobs)))
    waiting: List[Tuple[float, int, int]] = []  # (ready_at, idx, attempt)
    running: Dict[int, _Running] = {}

    def completed() -> List[JobResult]:
        return [o for o in outcomes if isinstance(o, JobResult)]

    def settle(index: int, failure: JobFailure) -> None:
        """Retry a failed attempt, or quarantine / abort the sweep."""
        if failure.attempts <= retries:
            delay = retry_delay(retry_backoff, failure.attempts,
                                failure.job)
            waiting.append((time.monotonic() + delay, index,
                            failure.attempts + 1))
            return
        outcomes[index] = failure
        if fail_fast:
            error = (JobTimeoutError if failure.cause == "timeout"
                     else SweepAborted)
            raise error(failure, completed())

    try:
        while pending or waiting or running:
            now = time.monotonic()
            if waiting:
                due = [entry for entry in waiting if entry[0] <= now]
                waiting = [e for e in waiting if e[0] > now]
                for _, index, attempt in due:
                    pending.append((index, attempt))
            while pending and len(running) < workers:
                index, attempt = pending.popleft()
                proc = context.Process(
                    target=_worker_main,
                    args=(jobs[index], attempt, index, results_q,
                          injector),
                )
                proc.daemon = True
                proc.start()
                running[index] = _Running(proc, attempt)
            if not running:
                time.sleep(_POLL_SECONDS)
                continue
            block = True
            while True:
                try:
                    message = results_q.get(
                        timeout=_POLL_SECONDS if block else 0.0)
                except (queue_lib.Empty, OSError, EOFError):
                    break
                block = False
                index, attempt, kind, payload = message
                state = running.get(index)
                if state is None or attempt != state.attempt:
                    continue  # stale message from a terminated attempt
                if kind == "started":
                    state.exec_started = time.monotonic()
                    state.exec_started_ts = time.time()
                    if timeout is not None:
                        state.deadline = state.exec_started + timeout
                elif kind == "ok":
                    del running[index]
                    state.proc.join(5.0)
                    payload.attempts = attempt
                    outcomes[index] = payload
                    _notify_attempt(on_attempt, jobs[index], attempt,
                                    payload.started_ts,
                                    payload.wall_seconds, "ok",
                                    payload.worker_pid)
                    if on_result is not None:
                        on_result(payload)
                else:  # "error"
                    del running[index]
                    state.proc.join(5.0)
                    error_type, error, pid, wall = payload
                    _notify_attempt(
                        on_attempt, jobs[index], attempt,
                        state.exec_started_ts or state.launched_ts,
                        wall, "exception", pid)
                    settle(index, JobFailure(
                        job=jobs[index], cause="exception", error=error,
                        error_type=error_type, attempts=attempt,
                        wall_seconds=wall, worker_pid=pid))
            now = time.monotonic()
            for index, state in list(running.items()):
                proc = state.proc
                ran_for = now - (state.exec_started
                                 if state.exec_started is not None
                                 else state.launched)
                deadline = state.deadline
                if deadline is None and timeout is not None:
                    deadline = state.launched + timeout + _START_GRACE_SECONDS
                if (deadline is not None and now > deadline
                        and proc.is_alive()):
                    _terminate(proc)
                    del running[index]
                    _notify_attempt(
                        on_attempt, jobs[index], state.attempt,
                        state.exec_started_ts or state.launched_ts,
                        ran_for, "timeout", proc.pid or 0)
                    settle(index, JobFailure(
                        job=jobs[index], cause="timeout",
                        error=(f"exceeded the {timeout:.1f}s per-job "
                               f"execution timeout"),
                        error_type="JobTimeoutError",
                        attempts=state.attempt, wall_seconds=ran_for,
                        worker_pid=proc.pid or 0))
                elif not proc.is_alive():
                    # Exited without an ok/error message: give any
                    # in-flight message a grace period, then declare a
                    # worker-death (OOM kill, segfault, os._exit).
                    if state.dead_since is None:
                        state.dead_since = now
                    elif now - state.dead_since > _DEATH_GRACE_SECONDS:
                        proc.join(1.0)
                        del running[index]
                        _notify_attempt(
                            on_attempt, jobs[index], state.attempt,
                            state.exec_started_ts or state.launched_ts,
                            ran_for, "worker-death", proc.pid or 0)
                        settle(index, JobFailure(
                            job=jobs[index], cause="worker-death",
                            error=(f"worker pid {proc.pid} exited with "
                                   f"code {proc.exitcode} before "
                                   f"returning a result"),
                            error_type="WorkerDeath",
                            attempts=state.attempt,
                            wall_seconds=ran_for,
                            worker_pid=proc.pid or 0))
        return list(outcomes)
    finally:
        for state in running.values():
            _terminate(state.proc)
        results_q.close()


def _run_serial(
    jobs: Sequence[SimJob],
    timeout: Optional[float],
    retries: int,
    retry_backoff: float,
    fail_fast: bool,
    on_result,
    on_attempt=None,
) -> List[Union[JobResult, JobFailure]]:
    injector = _FAULT_INJECTOR
    outcomes: List[Union[JobResult, JobFailure]] = []

    def completed() -> List[JobResult]:
        return [o for o in outcomes if isinstance(o, JobResult)]

    for job in jobs:
        attempt = 1
        while True:
            started_ts = time.time()
            started = time.perf_counter()
            failure = None
            try:
                if injector is not None:
                    injector(job, attempt)
                result = _execute_job(job)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 — isolate
                failure = JobFailure(
                    job=job, cause="exception", error=str(exc),
                    error_type=type(exc).__name__, attempts=attempt,
                    wall_seconds=time.perf_counter() - started,
                    worker_pid=os.getpid())
                _notify_attempt(on_attempt, job, attempt, started_ts,
                                failure.wall_seconds, "exception",
                                os.getpid())
            else:
                if timeout is not None and result.wall_seconds > timeout:
                    # Post-hoc by construction: the job already ran to
                    # completion in-process.  Quarantine without retry —
                    # a deterministic job would only run long again.
                    failure = JobFailure(
                        job=job, cause="timeout",
                        error=(f"took {result.wall_seconds:.1f}s "
                               f"(> {timeout:.1f}s timeout; serial "
                               f"timeouts are post-hoc)"),
                        error_type="JobTimeoutError", attempts=attempt,
                        wall_seconds=result.wall_seconds,
                        worker_pid=os.getpid())
                    _notify_attempt(on_attempt, job, attempt,
                                    started_ts, result.wall_seconds,
                                    "timeout", os.getpid())
                    attempt = retries + 1
                else:
                    result.attempts = attempt
                    outcomes.append(result)
                    _notify_attempt(on_attempt, job, attempt,
                                    started_ts, result.wall_seconds,
                                    "ok", result.worker_pid)
                    if on_result is not None:
                        on_result(result)
                    break
            if attempt <= retries:
                delay = retry_delay(retry_backoff, attempt, job)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if fail_fast:
                error = (JobTimeoutError if failure.cause == "timeout"
                         else SweepAborted)
                raise error(failure, completed())
            outcomes.append(failure)
            break
    return outcomes


def run_jobs(
    jobs: Sequence[SimJob],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.25,
    fail_fast: bool = False,
    on_result: Optional[Callable[[JobResult], None]] = None,
    on_attempt: Optional[Callable[..., None]] = None,
) -> List[Union[JobResult, JobFailure]]:
    """Run every job; outcomes in submission order.

    Args:
        jobs: Job list (order is preserved in the outcome list).
        workers: Concurrent worker-process count; ``<= 1`` runs serially
            in-process.
        timeout: Per-job wall-clock limit in seconds, charged against
            the job's own *execution* time only — never the time it
            spent queued behind other jobs waiting for a worker slot.
            In the serial path the check is post-hoc (the job has
            already completed when the overrun is observed).
        retries: How many times a failed attempt (exception, timeout,
            worker death) is re-run before the job is quarantined as a
            :class:`JobFailure`; the total attempt budget is
            ``retries + 1``.  Serial post-hoc timeouts are never
            retried.
        retry_backoff: Base delay in seconds before retry ``n``, scaled
            exponentially (``retry_backoff * 2**(n-1)``), capped at
            :data:`MAX_RETRY_DELAY` and deterministically jittered per
            job (see :func:`retry_delay`).
        fail_fast: Abort the sweep on the first quarantined job by
            raising :class:`SweepAborted` (or its subclass
            :class:`JobTimeoutError`), carrying every already-completed
            result, instead of degrading gracefully.
        on_result: Optional callback invoked in the parent, in
            completion order, for each successful :class:`JobResult`
            as it lands — e.g. to persist results incrementally so an
            interrupted sweep loses nothing.
        on_attempt: Optional telemetry hook ``(job, attempt,
            started_ts, duration, status, worker_pid)`` fired in the
            parent for *every* terminal attempt — including ones that
            will be retried — with ``status`` one of ``"ok"``,
            ``"exception"``, ``"timeout"``, ``"worker-death"``.
            ``started_ts`` is host wall-clock epoch seconds.  The hook
            is observation-only: exceptions it raises are swallowed
            and it must never affect results.

    Returns:
        One entry per job, in submission order: :class:`JobResult` for
        successes, :class:`JobFailure` for quarantined jobs.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be >= 0")
    method = _available_start_method()
    if workers <= 1 or len(jobs) == 1 or method is None:
        return _run_serial(jobs, timeout, retries, retry_backoff,
                           fail_fast, on_result, on_attempt)
    context = multiprocessing.get_context(method)
    return _run_parallel(jobs, min(workers, len(jobs)), timeout,
                         retries, retry_backoff, fail_fast, on_result,
                         context, on_attempt)


def split_outcomes(
    outcomes: Sequence[Union[JobResult, JobFailure]],
) -> Tuple[List[JobResult], List[JobFailure]]:
    """Partition a :func:`run_jobs` outcome list into (results, failures)."""
    results = [o for o in outcomes if isinstance(o, JobResult)]
    failures = [o for o in outcomes if isinstance(o, JobFailure)]
    return results, failures


def total_wall_seconds(results: Sequence[JobResult]) -> float:
    """Summed per-job simulation time (CPU-side cost of a sweep)."""
    return sum(r.wall_seconds for r in results)

"""Parallel simulation driver: fan (config, benchmark) jobs over workers.

Design-space evaluation is embarrassingly parallel across (model,
benchmark) pairs — every figure in the reproduction is a static job list
with no cross-job data flow.  :func:`run_jobs` maps such a list over a
``multiprocessing`` pool:

* **Deterministic**: each job re-derives its trace from (benchmark,
  seed), so a job's result is a pure function of the job tuple; results
  return in submission order and are bit-for-bit identical to a serial
  run regardless of worker count or scheduling.
* **Graceful fallback**: ``workers <= 1``, a single job, or a platform
  without ``fork`` (no start method at all) degrades to a plain serial
  loop in-process.
* **Accounted**: every :class:`JobResult` carries the job's wall-clock
  seconds and the worker pid; an optional per-job ``timeout`` aborts a
  wedged sweep instead of hanging the whole figure.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core import CoreConfig


@dataclass(frozen=True)
class SimJob:
    """One simulation request: a pure function of these five fields."""

    config: CoreConfig
    benchmark: str
    measure: int
    warmup: int
    seed: int = 0

    def describe(self) -> str:
        return (f"{self.config.name}/{self.benchmark}"
                f"(measure={self.measure}, warmup={self.warmup},"
                f" seed={self.seed})")


@dataclass
class JobResult:
    """One finished job plus its execution accounting."""

    job: SimJob
    run: object                  # BenchmarkRun (import cycle avoided)
    wall_seconds: float = 0.0
    worker_pid: int = field(default_factory=os.getpid)


class JobTimeoutError(RuntimeError):
    """A simulation job exceeded the per-job timeout."""


def _available_start_method() -> Optional[str]:
    """Prefer fork (cheap, inherits warm imports); else spawn; else None."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    if methods:
        return methods[0]
    return None


def _execute_job(job: SimJob) -> JobResult:
    """Worker body: simulate one job (no caching — the parent caches)."""
    from repro.experiments.runner import simulate

    started = time.perf_counter()
    run = simulate(job.config, job.benchmark, job.measure, job.warmup,
                   job.seed)
    return JobResult(job=job, run=run,
                     wall_seconds=time.perf_counter() - started)


def _run_serial(jobs: Sequence[SimJob],
                timeout: Optional[float]) -> List[JobResult]:
    results = []
    for job in jobs:
        result = _execute_job(job)
        if timeout is not None and result.wall_seconds > timeout:
            raise JobTimeoutError(
                f"{job.describe()} took {result.wall_seconds:.1f}s "
                f"(> {timeout:.1f}s timeout)"
            )
        results.append(result)
    return results


def run_jobs(
    jobs: Sequence[SimJob],
    workers: int = 1,
    timeout: Optional[float] = None,
) -> List[JobResult]:
    """Run every job; results in submission order.

    Args:
        jobs: Job list (order is preserved in the result list).
        workers: Process count; ``<= 1`` runs serially in-process.
        timeout: Per-job wall-clock limit in seconds.  In the parallel
            path this bounds the wait for each job's result (jobs run
            concurrently, so the bound is per-result, not cumulative);
            on expiry the pool is torn down and
            :class:`JobTimeoutError` raised.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    method = _available_start_method()
    if workers <= 1 or len(jobs) == 1 or method is None:
        return _run_serial(jobs, timeout)
    context = multiprocessing.get_context(method)
    workers = min(workers, len(jobs))
    pool = context.Pool(processes=workers)
    try:
        handles = [pool.apply_async(_execute_job, (job,)) for job in jobs]
        results: List[JobResult] = []
        for job, handle in zip(jobs, handles):
            try:
                results.append(handle.get(timeout=timeout))
            except multiprocessing.TimeoutError:
                raise JobTimeoutError(
                    f"{job.describe()} exceeded the "
                    f"{timeout:.1f}s per-job timeout"
                ) from None
        return results
    finally:
        pool.terminate()
        pool.join()


def total_wall_seconds(results: Sequence[JobResult]) -> float:
    """Summed per-job simulation time (CPU-side cost of a sweep)."""
    return sum(r.wall_seconds for r in results)

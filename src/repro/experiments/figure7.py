"""Figure 7: IPC relative to BIG, per benchmark, for all five models.

The paper plots one bar group per SPEC CPU2006 program (INT then FP) for
LITTLE, BIG, BIG+FX, HALF and HALF+FX, plus geometric means for the INT
group, FP group and all programs.  ``run`` returns the same series.

A (model, benchmark) cell whose job was quarantined by the fault-
tolerant sweep is reported as ``None`` and rendered as an explicit gap
(``--``); the geometric means cover only the cells that completed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import model_config, MODEL_NAMES
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    models: Sequence[str] = MODEL_NAMES,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """Simulate and return {model: {benchmark|mean-label: relative IPC}}.

    Values are IPC relative to BIG on the same benchmark, exactly as the
    figure's y-axis; a quarantined (failed) cell is ``None``.
    """
    benchmarks = list(benchmarks or (INT_BENCHMARKS + FP_BENCHMARKS))
    int_set = [b for b in benchmarks if b in INT_BENCHMARKS]
    fp_set = [b for b in benchmarks if b in FP_BENCHMARKS]
    # The whole figure is one up-front job list: every (model, benchmark)
    # pair plus the BIG baseline, fanned over the worker pool.
    configs = [model_config("BIG")] + [model_config(m) for m in models]
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    base_ipc: Dict[str, Optional[float]] = {}
    for bench in benchmarks:
        base = run_benchmark(model_config("BIG"), bench, measure,
                             warmup, missing_ok=True)
        base_ipc[bench] = base.ipc if base is not None else None
    results: Dict[str, Dict[str, Optional[float]]] = {}
    for model in models:
        config = model_config(model)
        rel: Dict[str, Optional[float]] = {}
        for bench in benchmarks:
            run_result = run_benchmark(config, bench, measure, warmup,
                                       missing_ok=True)
            if run_result is None or base_ipc[bench] is None:
                rel[bench] = None  # quarantined: explicit gap
            else:
                rel[bench] = run_result.ipc / base_ipc[bench]
        have = [b for b in benchmarks if rel[b] is not None]
        int_have = [b for b in int_set if rel[b] is not None]
        fp_have = [b for b in fp_set if rel[b] is not None]
        if int_set:
            rel["mean(INT)"] = (
                geomean([rel[b] for b in int_have]) if int_have else None
            )
        if fp_set:
            rel["mean(FP)"] = (
                geomean([rel[b] for b in fp_have]) if fp_have else None
            )
        rel["mean"] = geomean([rel[b] for b in have]) if have else None
        results[model] = rel
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    """Render the figure's series as a text table."""
    models = list(results)
    rows = list(next(iter(results.values())))
    lines = ["Figure 7: IPC relative to BIG",
             f"{'benchmark':14s}" + "".join(f"{m:>10s}" for m in models)]
    for row in rows:
        cells = "".join(
            f"{results[m][row]:10.3f}" if results[m][row] is not None
            else f"{'--':>10s}"
            for m in models
        )
        lines.append(f"{row:14s}{cells}")
    return "\n".join(lines)


def format_chart(results: Dict[str, Dict[str, float]]) -> str:
    """Bar chart of the geometric means (the figure's right-hand bars)."""
    from repro.experiments.textchart import bar_chart

    means = {model: rel["mean"] for model, rel in results.items()
             if rel["mean"] is not None}
    return bar_chart(means, title="Figure 7 (geomean IPC vs BIG)",
                     reference=1.0)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Related-work comparison (paper Section VII).

Section VII argues FXA beats the alternatives qualitatively:

* VII-A — clustered architectures need inter-cluster bypassing/wakeup
  and careful steering; FXA's serial IXU/OXU placement needs neither.
  We compare BIG, CA with dependence steering, CA with naive round-robin
  steering, and HALF+FX.
* VII-B — Forwardflow / Half-Price reduce IQ energy per access; FXA
  instead removes accesses.  The energy model's ``iq_style`` knob prices
  those designs so the combination (paper: "energy consumption is
  reduced further if they are combined") can be measured.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core import model_config
from repro.core.presets import ca_config
from repro.energy import Component
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import ALL_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """Compare BIG / CA variants / HALF+FX.

    Returns {model-label: {"ipc": rel IPC, "energy": rel energy,
    "eu_energy": rel FUs+IXU energy, "xforwards": inter-cluster
    forwards per kilo-instruction}}.
    """
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    configs = {
        "BIG": model_config("BIG"),
        "CA/dependence": ca_config("dependence"),
        "CA/roundrobin": replace(ca_config("roundrobin"),
                                 name="CA-rr"),
        "HALF+FX": model_config("HALF+FX"),
    }
    prefetch([(c, b) for c in configs.values() for b in benchmarks],
             measure=measure, warmup=warmup)
    # Cross-model sums/geomeans: drop benchmarks with quarantined jobs.
    benchmarks = complete_subset(configs.values(), benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed on every model; nothing to "
            "aggregate (see the failure summary)")
    base_runs = {
        bench: run_benchmark(configs["BIG"], bench, measure, warmup)
        for bench in benchmarks
    }
    base_energy = sum(r.total_energy for r in base_runs.values())
    base_eu = sum(
        r.energy.component_total(Component.FUS)
        + r.energy.component_total(Component.IXU)
        for r in base_runs.values()
    )
    results: Dict[str, Dict[str, float]] = {}
    for label, config in configs.items():
        runs = [run_benchmark(config, bench, measure, warmup)
                for bench in benchmarks]
        rel_ipc = geomean([
            r.ipc / base_runs[r.benchmark].ipc for r in runs
        ])
        energy = sum(r.total_energy for r in runs)
        eu_energy = sum(
            r.energy.component_total(Component.FUS)
            + r.energy.component_total(Component.IXU)
            for r in runs
        )
        forwards = sum(
            r.stats.events.intercluster_forwards for r in runs
        )
        committed = sum(r.stats.committed for r in runs)
        results[label] = {
            "ipc": rel_ipc,
            "energy": energy / base_energy,
            "eu_energy": eu_energy / base_eu,
            "xforwards": 1000.0 * forwards / max(1, committed),
        }
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    lines = ["Related work (Section VII-A): FXA vs clustering",
             f"{'model':14s}{'IPC':>8s}{'energy':>8s}"
             f"{'EU energy':>10s}{'xfwd/kI':>9s}"]
    for label, row in results.items():
        lines.append(
            f"{label:14s}{row['ipc']:8.3f}{row['energy']:8.3f}"
            f"{row['eu_energy']:10.3f}{row['xforwards']:9.2f}"
        )
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

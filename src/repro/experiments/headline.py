"""Headline scalar claims (abstract / Section VI-I).

Collects in one place every number the paper's abstract quotes so
EXPERIMENTS.md can record paper-vs-measured:

* HALF+FX vs BIG: IPC +5.7 % (INT +7.4 %, max +67 % on libquantum),
  energy −17 %, IQ energy −86 %, LSQ energy −23 %, PER +25 %.
* HALF+FX vs LITTLE: PER +27 %.
* HALF vs BIG: IPC −16 %.  LITTLE vs BIG: IPC −40 %, energy 60 %.
* BIG+FX vs HALF+FX: IPC +1.8 %.
* IXU executes 54 % of instructions (61 % INT / 51 % FP); 35 % with a
  1-stage IXU; category (a) ≈ 5.5 %.
* HALF+FX area growth +2.7 %.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import model_config
from repro.energy import AreaModel, Component
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, float]:
    """Compute every headline scalar; returns {claim: measured value}.

    Aggregates cover the benchmarks every model completed; programs any
    model's job was quarantined on are dropped (the sweep's explicit
    gaps) rather than crashing the table.
    """
    benchmarks = list(
        benchmarks or (INT_BENCHMARKS + FP_BENCHMARKS)
    )
    models = ("BIG", "HALF", "LITTLE", "HALF+FX", "BIG+FX")
    configs = [model_config(m) for m in models]
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed on every model; nothing to "
            "aggregate (see the failure summary)")
    int_set = [b for b in benchmarks if b in INT_BENCHMARKS]
    fp_set = [b for b in benchmarks if b in FP_BENCHMARKS]
    runs = {
        model: {
            bench: run_benchmark(model_config(model), bench,
                                 measure, warmup)
            for bench in benchmarks
        }
        for model in models
    }

    def rel_ipc(model, subset):
        return geomean([
            runs[model][b].ipc / runs["BIG"][b].ipc for b in subset
        ])

    def energy_total(model):
        return sum(r.total_energy for r in runs[model].values())

    def component(model, comp):
        return sum(
            r.energy.component_total(comp) for r in runs[model].values()
        )

    def rel_per(model, subset):
        return geomean([
            runs[model][b].per / runs["BIG"][b].per for b in subset
        ])

    hfx = runs["HALF+FX"]
    committed = sum(r.stats.committed for r in hfx.values())
    ixu_rate_all = geomean([
        max(r.stats.ixu_executed_rate, 1e-9) for r in hfx.values()
    ])
    ixu_rate_int = geomean([
        max(hfx[b].stats.ixu_executed_rate, 1e-9) for b in int_set
    ]) if int_set else 0.0
    ixu_rate_fp = geomean([
        max(hfx[b].stats.ixu_executed_rate, 1e-9) for b in fp_set
    ]) if fp_set else 0.0
    category_a = sum(
        r.stats.ixu_category_a for r in hfx.values()
    ) / max(1, committed)

    area_big = AreaModel(model_config("BIG")).total()
    area_hfx = AreaModel(model_config("HALF+FX")).total()

    libquantum_gain = (
        runs["HALF+FX"]["libquantum"].ipc / runs["BIG"]["libquantum"].ipc
        if "libquantum" in runs["HALF+FX"] else float("nan")
    )

    return {
        "halffx_ipc_vs_big_all": rel_ipc("HALF+FX", benchmarks),
        "halffx_ipc_vs_big_int": (
            rel_ipc("HALF+FX", int_set) if int_set else float("nan")
        ),
        "halffx_ipc_vs_big_libquantum": libquantum_gain,
        "half_ipc_vs_big": rel_ipc("HALF", benchmarks),
        "little_ipc_vs_big": rel_ipc("LITTLE", benchmarks),
        "bigfx_ipc_vs_halffx": (
            rel_ipc("BIG+FX", benchmarks)
            / rel_ipc("HALF+FX", benchmarks)
        ),
        "halffx_energy_vs_big": (
            energy_total("HALF+FX") / energy_total("BIG")
        ),
        "little_energy_vs_big": (
            energy_total("LITTLE") / energy_total("BIG")
        ),
        "halffx_iq_energy_vs_big": (
            component("HALF+FX", Component.IQ)
            / component("BIG", Component.IQ)
        ),
        "halffx_lsq_energy_vs_big": (
            component("HALF+FX", Component.LSQ)
            / component("BIG", Component.LSQ)
        ),
        "halffx_per_vs_big": rel_per("HALF+FX", benchmarks),
        "halffx_per_vs_little": (
            rel_per("HALF+FX", benchmarks)
            / rel_per("LITTLE", benchmarks)
        ),
        "ixu_executed_rate_all": ixu_rate_all,
        "ixu_executed_rate_int": ixu_rate_int,
        "ixu_executed_rate_fp": ixu_rate_fp,
        "ixu_category_a_rate": category_a,
        "halffx_area_growth": area_hfx / area_big - 1.0,
    }


#: What the paper reports, keyed like run()'s output.
PAPER_VALUES = {
    "halffx_ipc_vs_big_all": 1.057,
    "halffx_ipc_vs_big_int": 1.074,
    "halffx_ipc_vs_big_libquantum": 1.67,
    "half_ipc_vs_big": 0.84,
    "little_ipc_vs_big": 0.60,
    "bigfx_ipc_vs_halffx": 1.018,
    "halffx_energy_vs_big": 0.83,
    "little_energy_vs_big": 0.60,
    "halffx_iq_energy_vs_big": 0.14,
    "halffx_lsq_energy_vs_big": 0.77,
    "halffx_per_vs_big": 1.25,
    "halffx_per_vs_little": 1.27,
    "ixu_executed_rate_all": 0.54,
    "ixu_executed_rate_int": 0.61,
    "ixu_executed_rate_fp": 0.51,
    "ixu_category_a_rate": 0.055,
    "halffx_area_growth": 0.027,
}


def format_table(results: Dict[str, float]) -> str:
    lines = ["Headline claims: paper vs measured",
             f"{'claim':34s}{'paper':>10s}{'measured':>10s}"]
    for claim, measured in results.items():
        paper = PAPER_VALUES.get(claim, float("nan"))
        lines.append(f"{claim:34s}{paper:10.3f}{measured:10.3f}")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

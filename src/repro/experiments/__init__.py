"""Experiment harness: one regenerator per paper table/figure.

Each ``figureN`` module exposes ``run(...)`` returning structured results
and ``format_table(results)`` rendering the same series the paper plots;
``python -m repro.experiments.cli <experiment>`` drives them from the
command line.
"""

from repro.experiments.diskcache import DiskCache
from repro.experiments.pool import SimJob, run_jobs
from repro.experiments.runner import (
    BenchmarkRun,
    run_benchmark,
    prefetch,
    geomean,
    set_jobs,
    set_disk_cache,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
)

__all__ = [
    "BenchmarkRun",
    "DiskCache",
    "SimJob",
    "run_benchmark",
    "run_jobs",
    "prefetch",
    "geomean",
    "set_jobs",
    "set_disk_cache",
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
]

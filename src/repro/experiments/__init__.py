"""Experiment harness: one regenerator per paper table/figure.

Each ``figureN`` module exposes ``run(...)`` returning structured results
and ``format_table(results)`` rendering the same series the paper plots;
``python -m repro.experiments.cli <experiment>`` drives them from the
command line.
"""

from repro.experiments.runner import (
    BenchmarkRun,
    run_benchmark,
    geomean,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
)

__all__ = [
    "BenchmarkRun",
    "run_benchmark",
    "geomean",
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
]

"""Experiment harness: one regenerator per paper table/figure.

Each ``figureN`` module exposes ``run(...)`` returning structured results
and ``format_table(results)`` rendering the same series the paper plots;
``python -m repro.experiments.cli <experiment>`` drives them from the
command line.
"""

from repro.experiments.diskcache import DiskCache
from repro.experiments.pool import (
    JobFailure,
    JobResult,
    JobTimeoutError,
    SimJob,
    SweepAborted,
    run_jobs,
    set_fault_injector,
    split_outcomes,
)
from repro.experiments.runner import (
    BenchmarkRun,
    JobFailedError,
    complete_subset,
    run_benchmark,
    failed_runs,
    prefetch,
    geomean,
    set_fault_policy,
    set_jobs,
    set_disk_cache,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
)

__all__ = [
    "BenchmarkRun",
    "DiskCache",
    "JobFailedError",
    "JobFailure",
    "JobResult",
    "JobTimeoutError",
    "SimJob",
    "SweepAborted",
    "complete_subset",
    "failed_runs",
    "run_benchmark",
    "run_jobs",
    "prefetch",
    "geomean",
    "set_fault_injector",
    "set_fault_policy",
    "set_jobs",
    "set_disk_cache",
    "split_outcomes",
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
]

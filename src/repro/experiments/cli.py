"""Command-line entry point: regenerate any table or figure.

Examples::

    fxa-experiments table1
    fxa-experiments figure7 --measure 4000 --benchmarks hmmer mcf lbm
    fxa-experiments all --jobs 8
    fxa-experiments headline --jobs 4 --cache-dir /tmp/fxa-cache

Simulations fan out over ``--jobs`` worker processes and finished runs
persist in an on-disk cache (``--cache-dir``, default
``~/.cache/fxa-repro``), so re-generating a figure after the first run
costs no simulation at all.  ``--no-cache`` forces re-simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.experiments import (
    figure7, figure8, figure9, figure10, figure11, figure12, figure13,
    headline, related_work, reno, sensitivity, tables,
)
from repro.experiments import runner
from repro.experiments.diskcache import DiskCache
from repro.workloads import ALL_BENCHMARKS

_SIM_EXPERIMENTS = {
    "figure7": figure7,
    "figure8": figure8,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "headline": headline,
    "sensitivity": sensitivity,
    "related_work": related_work,
    "reno": reno,
}


def _run_one(name: str, benchmarks: Optional[List[str]],
             measure: int, warmup: int, chart: bool = False):
    """Run one experiment; returns (rendered text, raw results)."""
    if name == "table1":
        results = tables.table1()
        return tables.format_table1(results), results
    if name == "table2":
        results = tables.table2()
        return tables.format_table2(results), results
    if name == "figure9":
        results = figure9.run()
        return figure9.format_table(results), results
    module = _SIM_EXPERIMENTS[name]
    results = module.run(
        benchmarks=benchmarks, measure=measure, warmup=warmup
    )
    text = module.format_table(results)
    if chart and hasattr(module, "format_chart"):
        text += "\n\n" + module.format_chart(results)
    return text, results


def _json_default(obj):
    """Serialize rich result objects through their dict codepath."""
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return str(obj)


def main(argv: Optional[List[str]] = None) -> int:
    names = ["table1", "table2", "figure7", "figure8", "figure9",
             "figure10", "figure11", "figure12", "figure13", "headline",
             "sensitivity", "related_work", "reno"]
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument("experiment", choices=names + ["all"])
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="Benchmark subset (default: all 29).",
    )
    parser.add_argument(
        "--measure", type=int, default=8000,
        help="Measured instructions per run (default 8000).",
    )
    parser.add_argument(
        "--warmup", type=int, default=30000,
        help="Functional warm-up instructions (default 30000).",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="Worker processes simulations fan out over (default 1).",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="On-disk result cache directory "
             "(default ~/.cache/fxa-repro).",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="Disable the on-disk result cache (always re-simulate).",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="Append a text chart to experiments that support one.",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None,
        help="Also dump raw results for all experiments to this file.",
    )
    args = parser.parse_args(argv)
    if args.benchmarks:
        unknown = set(args.benchmarks) - set(ALL_BENCHMARKS)
        if unknown:
            parser.error(f"unknown benchmarks: {sorted(unknown)}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    runner.set_jobs(args.jobs)
    previous_cache = runner.get_disk_cache()
    if args.no_cache:
        runner.set_disk_cache(None)
    else:
        runner.set_disk_cache(DiskCache(args.cache_dir))
    todo = names if args.experiment == "all" else [args.experiment]
    collected = {}
    try:
        for name in todo:
            started = time.time()
            text, results = _run_one(name, args.benchmarks, args.measure,
                                     args.warmup, chart=args.chart)
            print(text)
            print(f"[{name}: {time.time() - started:.1f}s]")
            print()
            collected[name] = results
        cache = runner.get_disk_cache()
        if cache is not None and (cache.hits or cache.stores):
            print(f"[disk cache: {cache.hits} hits, "
                  f"{cache.stores} new entries under {cache.root}]")
    finally:
        runner.set_disk_cache(previous_cache)
        runner.set_jobs(1)
    if args.json_path:
        with open(args.json_path, "w") as stream:
            json.dump(collected, stream, indent=2, sort_keys=True,
                      default=_json_default)
        print(f"raw results written to {args.json_path}")
    return 0


def run() -> int:
    """Console-script entry point; tolerant of closed output pipes."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(run())

"""Command-line entry point: regenerate any table or figure.

Examples::

    fxa-experiments table1
    fxa-experiments figure7 --measure 4000 --benchmarks hmmer mcf lbm
    fxa-experiments all --jobs 8
    fxa-experiments headline --jobs 4 --cache-dir /tmp/fxa-cache

Simulations fan out over ``--jobs`` worker processes and finished runs
persist in an on-disk cache (``--cache-dir``, default
``~/.cache/fxa-repro``), so re-generating a figure after the first run
costs no simulation at all.  ``--no-cache`` forces re-simulation.

Observability (see :mod:`repro.obs`)::

    fxa-experiments headline --stall-report --benchmarks hmmer mcf
    fxa-experiments headline --stall-report-csv stalls.csv
    fxa-experiments headline --metrics-json metrics.json
    fxa-experiments headline --topdown --benchmarks hmmer mcf
    fxa-experiments headline --report report.html
    fxa-experiments headline --pipeview trace.kanata.gz
    fxa-experiments headline --timeline tl.json --timeline-report
    fxa-experiments headline --json out.json   # + out.manifest.json

``--stall-report`` appends a where-did-the-cycles-go breakdown per
model (``--stall-report-csv`` / ``--metrics-json`` write the same pass
machine-readably), ``--topdown`` prints the hierarchical slot
accounting and energy-by-class tables (:mod:`repro.obs.topdown`),
``--report`` writes the self-contained HTML report bundling all of it
(:mod:`repro.obs.report`; ``--report-baseline`` adds an A/B section),
``--pipeview`` writes a Kanata pipeline trace loadable by the Konata
visualiser (gzipped when the path ends ``.gz``), ``--timeline``
exports interval telemetry of all four core types as Perfetto-loadable
JSON (``--timeline-report`` prints the terminal phase view), and every
``--json`` run also emits a provenance manifest (``--manifest PATH``
writes one explicitly).

Regression gating (see :mod:`repro.obs.diffrun`)::

    fxa-experiments headline --baseline old.manifest.json  # exit 3
    fxa-experiments headline --trajectory BENCH_trajectory.json
    repro-exp diff old.manifest.json new.manifest.json
    repro-exp report new.manifest.json report.html --baseline old...
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

import repro
from repro.core import MODEL_NAMES, model_config
from repro.experiments import (
    figure7, figure8, figure9, figure10, figure11, figure12, figure13,
    headline, related_work, reno, sensitivity, tables,
)
from repro.experiments import runner
from repro.experiments.diskcache import DiskCache, code_version
from repro.experiments.pool import (
    FaultSpec,
    SweepAborted,
    set_fault_injector,
    split_outcomes,
    total_wall_seconds,
)
from repro.obs import (
    DEFAULT_INTERVAL,
    JobRecord,
    KanataWriter,
    Observability,
    RunManifest,
    STALL_CAUSES,
    aggregate_entry,
    TimelineCollector,
    TopDownCollector,
    format_energy_by_class,
    format_stall_chart,
    format_stall_table,
    format_timeline_report,
    format_topdown_report,
    manifest_path_for,
    merge_topdown_payloads,
)
from repro.obs import slog
from repro.obs.diffrun import (
    DiffThresholds,
    EXIT_REGRESSION,
    append_trajectory,
    diff_manifests,
    format_diff_report,
)
from repro.obs.traceevent import TraceEventWriter
from repro.workloads import ALL_BENCHMARKS

#: Models the observability passes simulate ("CA" included: the
#: related-work comparator stalls differently than the Table I models).
_OBS_MODELS = MODEL_NAMES + ("CA",)

_SIM_EXPERIMENTS = {
    "figure7": figure7,
    "figure8": figure8,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "headline": headline,
    "sensitivity": sensitivity,
    "related_work": related_work,
    "reno": reno,
}


def _run_one(name: str, benchmarks: Optional[List[str]],
             measure: int, warmup: int, chart: bool = False):
    """Run one experiment; returns (rendered text, raw results)."""
    if name == "table1":
        results = tables.table1()
        return tables.format_table1(results), results
    if name == "table2":
        results = tables.table2()
        return tables.format_table2(results), results
    if name == "figure9":
        results = figure9.run()
        return figure9.format_table(results), results
    module = _SIM_EXPERIMENTS[name]
    results = module.run(
        benchmarks=benchmarks, measure=measure, warmup=warmup
    )
    text = module.format_table(results)
    if chart and hasattr(module, "format_chart"):
        text += "\n\n" + module.format_chart(results)
    return text, results


def _obs_pass(benchmarks: Optional[List[str]], measure: int,
              warmup: int, with_metrics: bool,
              with_topdown: bool = False) -> Tuple[Dict, Dict]:
    """One observed re-simulation of every model, shared by
    ``--stall-report``, ``--stall-report-csv``, ``--metrics-json``,
    ``--topdown`` and ``--report``.

    Observed runs bypass both caches (the cached records were produced
    without attribution), so this re-simulates; prefer a ``--benchmarks``
    subset for interactive use.  Returns ({(model, benchmark):
    CoreStats}, {(model, benchmark): TopDownCollector}); metrics
    histograms and the top-down tree are only collected when something
    will consume them.
    """
    observed: Dict = {}
    topdowns: Dict = {}
    for model in _OBS_MODELS:
        config = model_config(model)
        for benchmark in benchmarks or ALL_BENCHMARKS:
            topdown = TopDownCollector() if with_topdown else None
            obs = Observability(metrics=with_metrics, topdown=topdown)
            run = runner.simulate(config, benchmark, measure, warmup,
                                  obs=obs)
            observed[(model, benchmark)] = run.stats
            if topdown is not None:
                topdown.benchmark = benchmark
                topdowns[(model, benchmark)] = topdown
    return observed, topdowns


def _format_stall_report(observed: Dict,
                         benchmarks: Optional[List[str]]) -> str:
    """Render the "where did the cycles go" table plus stacked chart."""
    reports: Dict[str, Dict[str, int]] = {}
    cycles: Dict[str, int] = {}
    for (model, _benchmark), stats in observed.items():
        counts = reports.setdefault(model, {})
        for cause, value in stats.stalls.items():
            counts[cause] = counts.get(cause, 0) + value
        cycles[model] = cycles.get(model, 0) + stats.cycles
    suite = ", ".join(benchmarks) if benchmarks else "all benchmarks"
    return (
        format_stall_table(
            reports, cycles,
            title=f"Stall-cause breakdown ({suite})")
        + "\n\n"
        + format_stall_chart(reports, title="Stall cycles by cause")
    )


def _write_stall_csv(observed: Dict, path: str) -> None:
    """Machine-readable stall attribution: one row per observed run,
    one column per taxonomy cause (fixed schema, dashboards can rely
    on the header)."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["model", "benchmark", "cycles", "committed",
                         "stall_cycles", *STALL_CAUSES])
        for (model, benchmark), stats in observed.items():
            writer.writerow([
                model, benchmark, stats.cycles, stats.committed,
                stats.stall_cycles,
                *(stats.stalls.get(cause, 0) for cause in STALL_CAUSES),
            ])


def _write_metrics_json(observed: Dict, topdowns: Dict,
                        path: str) -> None:
    """Full metrics registry (counters + occupancy histograms) per
    observed run, as JSON; includes the top-down slot tree and
    energy-by-class attribution when the pass collected them."""
    payload = [
        {
            "model": model,
            "benchmark": benchmark,
            "cycles": stats.cycles,
            "committed": stats.committed,
            "ipc": stats.ipc,
            "stalls": stats.stalls,
            "metrics": stats.metrics,
            "topdown": (
                topdowns[(model, benchmark)].to_dict()
                if (model, benchmark) in topdowns else None),
        }
        for (model, benchmark), stats in observed.items()
    ]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: The four core types the timeline pass samples (one per
#: microarchitecture: in-order, out-of-order, FXA, clustered).
_TIMELINE_MODELS = ("LITTLE", "HALF", "HALF+FX", "CA")


def _timeline_pass(args, started_clock: float):
    """Serially simulate the four core types with interval telemetry on.

    Serial and in-process by design: the samples must be identical
    whatever ``--jobs`` says.  Returns (collectors, host-span dicts for
    the Perfetto export, timed per simulated model).
    """
    benchmark = args.timeline_benchmark or (
        args.benchmarks[0] if args.benchmarks else "hmmer"
    )
    collectors = []
    spans = []
    for model in _TIMELINE_MODELS:
        collector = TimelineCollector(interval=args.interval)
        obs = Observability(metrics=False, stalls=False,
                            timeline=collector)
        begin = time.time()
        runner.simulate(model_config(model), benchmark, args.measure,
                        args.warmup, obs=obs)
        collector.benchmark = benchmark
        spans.append({
            "name": f"timeline sim {model}/{benchmark}",
            "ts": (begin - started_clock) * 1e6,
            "dur": (time.time() - begin) * 1e6,
        })
        collectors.append(collector)
    return collectors, spans


def _build_aggregates(served, job_records, observed: Dict,
                      topdowns: Dict) -> List[Dict]:
    """Manifest aggregates: one entry per (model, benchmark) run the
    sweep served (cache replays included).

    ``wall_seconds``/``insts_per_second`` come from the job records of
    freshly simulated jobs (0.0 for cache replays); the stall mix,
    fast-forward engagement and top-down payload are taken from the
    observed pass when one ran (``topdown`` is None and
    ``ff_skipped_cycles`` falls back to the observed metrics counter,
    then 0, otherwise).
    """
    wall: Dict = {}
    for record in job_records:
        if record.ok:
            wall[(record.job.config.name, record.job.benchmark)] = (
                record.wall_seconds)
    entries = []
    for run in sorted(served, key=lambda r: (r.model, r.benchmark)):
        key = (run.model, run.benchmark)
        wall_seconds = wall.get(key, 0.0)
        observed_stats = observed.get(key)
        stalls = (observed_stats.stalls if observed_stats is not None
                  else run.stats.stalls)
        topdown = topdowns.get(key)
        if topdown is not None:
            ff_skipped = topdown.ff_skipped
        elif observed_stats is not None and observed_stats.metrics:
            ff_skipped = observed_stats.metrics.get(
                "counters", {}).get("cycles.fastforwarded", 0)
        else:
            ff_skipped = 0
        entries.append(aggregate_entry(
            run, wall_seconds=wall_seconds, stalls=stalls,
            ff_skipped=ff_skipped,
            topdown=(topdown.to_dict()
                     if topdown is not None else None)))
    return entries


def _merge_topdowns(topdowns: Dict) -> Dict[str, Dict]:
    """Collapse the observed pass's per-(model, benchmark) collectors
    into one merged payload per model (the suite-level view the
    terminal tree and the HTML report render)."""
    per_model: Dict[str, List[Dict]] = {}
    for (model, _benchmark), collector in sorted(topdowns.items()):
        per_model.setdefault(model, []).append(collector.to_dict())
    return {model: merge_topdown_payloads(payloads)
            for model, payloads in per_model.items()}


def _write_pipeview(args) -> str:
    """Run one observed simulation and write its Kanata trace."""
    benchmark = args.pipeview_benchmark or (
        args.benchmarks[0] if args.benchmarks else "hmmer"
    )
    writer = KanataWriter(args.pipeview, window=args.pipeview_window)
    obs = Observability(metrics=False, stalls=False, pipeview=writer)
    runner.simulate(model_config(args.pipeview_model), benchmark,
                    args.measure, args.warmup, obs=obs)
    writer.close()
    return (f"pipeline trace: {writer.recorded} instructions of "
            f"{args.pipeview_model}/{benchmark} written to "
            f"{args.pipeview} (open with Konata)")


def _profile_sim(args) -> str:
    """cProfile one job's simulation phase and write pstats to disk.

    The trace is memoised (and the allocator warmed) by an untimed
    run first, so the profile contains the simulation phase only —
    no trace generation, no import cost.  Load the output with
    ``python -m pstats OUT.prof`` or snakeviz.
    """
    import cProfile
    import io
    import pstats

    benchmark = args.profile_benchmark or (
        args.benchmarks[0] if args.benchmarks else "hmmer"
    )
    config = model_config(args.profile_model)
    runner.simulate(config, benchmark, args.measure, args.warmup)
    profiler = cProfile.Profile()
    profiler.enable()
    run = runner.simulate(config, benchmark, args.measure, args.warmup)
    profiler.disable()
    profiler.dump_stats(args.profile_sim)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(10)
    top = "\n".join(stream.getvalue().splitlines()[4:18])
    return (f"simulation profile of {args.profile_model}/{benchmark} "
            f"({run.stats.committed} insts) written to "
            f"{args.profile_sim}; top functions by cumulative time:\n"
            f"{top}")


def _print_job_summary(job_records, count: int = 5) -> None:
    """Slowest-jobs accounting for everything actually simulated."""
    total = total_wall_seconds(job_records)
    print(f"[{len(job_records)} jobs simulated, {total:.1f}s of "
          f"simulation; slowest:]")
    slowest = sorted(job_records, key=lambda r: r.wall_seconds,
                     reverse=True)
    for record in slowest[:count]:
        marker = "" if record.ok else "  [FAILED]"
        print(f"  {record.wall_seconds:7.2f}s  pid {record.worker_pid}"
              f"  {record.job.describe()}{marker}")


def _print_failure_summary(failures) -> None:
    """Quarantined-jobs table: which jobs failed, why, how many tries."""
    print(f"[{len(failures)} job(s) FAILED and were quarantined; "
          f"affected figure cells show gaps]")
    print(f"  {'job':44s}{'cause':14s}{'tries':>6s}  error")
    for failure in failures:
        print(f"  {failure.job.describe():44s}{failure.cause:14s}"
              f"{failure.attempts:6d}  {failure.error}")
    print("  [re-run with --resume to retry only the failed jobs]")


def _json_default(obj):
    """Serialize rich result objects through their dict codepath."""
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return str(obj)


def _run_validation(parser, args) -> int:
    """Handle ``--validate`` and ``--fuzz N`` (exit-code style)."""
    from repro.validate import validate_all
    from repro.validate.fuzz import fuzz, render_failures

    if args.fuzz is not None and args.fuzz < 1:
        parser.error("--fuzz must be >= 1")
    failed = False
    report_payload = {}
    if args.validate:
        reports = validate_all(benchmarks=args.benchmarks,
                               seed=args.seed)
        for report in reports:
            print(report.summary())
            if not report.ok:
                print(report.describe())
                failed = True
        report_payload["validate"] = [r.to_dict() for r in reports]
    if args.fuzz is not None:
        result = fuzz(args.fuzz, args.seed)
        if result.ok:
            print(f"fuzz OK: {len(result.cases)} case(s), "
                  f"{len(result.reports)} validated runs, seed "
                  f"{result.seed} — no divergence, no invariant "
                  f"violation")
        else:
            print(render_failures(result))
            print(f"fuzz FAILED: {len(result.failures)} of "
                  f"{len(result.reports)} runs, seed {result.seed}; "
                  f"re-run one case with: python -m repro.validate.fuzz"
                  f" --seed {result.seed} --case "
                  f"{result.failing_case_indices[0]} -v")
            failed = True
        report_payload["fuzz"] = result.to_dict()
    if args.fuzz_report:
        with open(args.fuzz_report, "w") as stream:
            json.dump(report_payload, stream, indent=2, sort_keys=True)
        print(f"validation report written to {args.fuzz_report}")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    names = ["table1", "table2", "figure7", "figure8", "figure9",
             "figure10", "figure11", "figure12", "figure13", "headline",
             "sensitivity", "related_work", "reno"]
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument("experiment", nargs="?", default=None,
                        choices=names + ["all"])
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="Benchmark subset (default: all 29).",
    )
    parser.add_argument(
        "--measure", type=int, default=8000,
        help="Measured instructions per run (default 8000).",
    )
    parser.add_argument(
        "--warmup", type=int, default=30000,
        help="Functional warm-up instructions (default 30000).",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="Worker processes simulations fan out over (default 1).",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="On-disk result cache directory "
             "(default ~/.cache/fxa-repro).",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="Disable the on-disk result cache (always re-simulate).",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="Per-job execution-time limit (queue wait is not charged); "
             "a job over the limit is retried, then quarantined.",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="Re-run a failed job (crash, hang, dead worker) up to N "
             "extra times before quarantining it (default 0).",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.25, metavar="SECONDS",
        help="Base delay before retry n, scaled as BACKOFF*2^(n-1) "
             "(default 0.25).",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="Abort the sweep on the first quarantined job (completed "
             "results are still persisted to the disk cache) instead "
             "of finishing with gaps.",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="Replay completed jobs from the disk cache and re-run "
             "only missing or previously-failed ones (clears their "
             "failure records); requires the cache.",
    )
    parser.add_argument(
        "--inject-fault", default=None, metavar="SPEC",
        help="Testing/CI hook: inject a worker fault, e.g. crash:lbm, "
             "flaky:mcf:2, die:hmmer, hang:lbm:30, sleep::0.2 "
             "(KIND[:BENCHMARK[:PARAM]]; empty benchmark = all jobs).",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="Append a text chart to experiments that support one.",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None,
        help="Also dump raw results for all experiments to this file "
             "(a run manifest lands next to it as *.manifest.json).",
    )
    parser.add_argument(
        "--stall-report", action="store_true",
        help="Append a per-model stall-cause breakdown (where did the "
             "cycles go); re-simulates with attribution enabled.",
    )
    parser.add_argument(
        "--stall-report-csv", metavar="PATH", default=None,
        help="Write the stall-cause breakdown as CSV (one row per "
             "model/benchmark, one column per cause); shares the "
             "--stall-report simulation pass.",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="Write the full metrics registry (counters + occupancy "
             "histograms) of an observed pass as JSON, including the "
             "top-down slot tree per run.",
    )
    parser.add_argument(
        "--topdown", action="store_true",
        help="Print the TMA-style top-down slot-accounting tree "
             "(retiring IXU/OXU, bad speculation, frontend/backend "
             "bound) and the energy-by-class table per model; shares "
             "the --stall-report simulation pass.",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="Write a self-contained static HTML report (provenance, "
             "aggregates, top-down trees, energy by class, stall mix, "
             "timeline sparklines) to PATH.",
    )
    parser.add_argument(
        "--report-baseline", metavar="MANIFEST", default=None,
        help="Baseline manifest for the --report A/B section "
             "(rendered with the same differ as --baseline; does not "
             "gate the exit code).",
    )
    parser.add_argument(
        "--timeline", metavar="PATH", default=None,
        help="Export interval telemetry of all four core types as "
             "Chrome-trace-event JSON (load at https://ui.perfetto.dev),"
             " including host wall-clock spans per harness stage and "
             "sweep job.",
    )
    parser.add_argument(
        "--timeline-report", action="store_true",
        help="Print the terminal timeline phase view (IPC/energy "
             "sparklines + detected phases).",
    )
    parser.add_argument(
        "--interval", type=int, default=DEFAULT_INTERVAL, metavar="N",
        help="Committed instructions per timeline sample "
             f"(default {DEFAULT_INTERVAL}).",
    )
    parser.add_argument(
        "--timeline-benchmark", default=None,
        help="Benchmark the timeline pass simulates (default: first "
             "--benchmarks entry, else hmmer).",
    )
    parser.add_argument(
        "--baseline", metavar="MANIFEST", default=None,
        help="Diff this run's manifest against a baseline manifest and "
             f"exit {EXIT_REGRESSION} if IPC/energy regressed past "
             "--diff-threshold.",
    )
    parser.add_argument(
        "--diff-threshold", type=float, default=None, metavar="FRAC",
        help="Relative IPC/energy regression tolerance for --baseline "
             "(default 0.02 = 2%%).",
    )
    parser.add_argument(
        "--trajectory", metavar="PATH", default=None,
        help="Append this run's per-model aggregates to a JSON history "
             "(e.g. BENCH_trajectory.json) for cross-run trend plots.",
    )
    parser.add_argument(
        "--pipeview", metavar="PATH", default=None,
        help="Write a Kanata pipeline trace (Konata-loadable) of one "
             "observed simulation to PATH (gzipped when PATH ends "
             "in .gz).",
    )
    parser.add_argument(
        "--pipeview-window", type=int, default=2000, metavar="N",
        help="Record at most N instructions in the pipeline trace "
             "(default 2000).",
    )
    parser.add_argument(
        "--pipeview-model", default="HALF+FX", choices=list(_OBS_MODELS),
        help="Model the pipeline trace simulates (default HALF+FX).",
    )
    parser.add_argument(
        "--pipeview-benchmark", default=None,
        help="Benchmark for the pipeline trace (default: first "
             "--benchmarks entry, else hmmer).",
    )
    parser.add_argument(
        "--profile-sim", metavar="OUT.PROF", default=None,
        help="cProfile one job's simulation phase (trace generation "
             "excluded) and write pstats data to OUT.PROF; prints the "
             "top functions by cumulative time.",
    )
    parser.add_argument(
        "--profile-model", default="HALF+FX", choices=list(_OBS_MODELS),
        help="Model the profiled simulation runs (default HALF+FX).",
    )
    parser.add_argument(
        "--profile-benchmark", default=None,
        help="Benchmark for the profiled simulation (default: first "
             "--benchmarks entry, else hmmer).",
    )
    parser.add_argument(
        "--manifest", dest="manifest_path", default=None, metavar="PATH",
        help="Write the run manifest (provenance JSON) to PATH.",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="Differentially validate every core model against the "
             "golden oracle (plus invariant checks) on a benchmark "
             "subset (--benchmarks; default hmmer/mcf/lbm) and exit.",
    )
    parser.add_argument(
        "--fuzz", type=int, default=None, metavar="N",
        help="Run N seeded config/workload fuzz cases through the "
             "validation harness and exit (see repro.validate.fuzz).",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="Seed for --fuzz / --validate trace generation "
             "(default 0).",
    )
    parser.add_argument(
        "--fuzz-report", default=None, metavar="PATH",
        help="Write the JSON divergence report of --fuzz/--validate "
             "to PATH (CI uploads it on failure).",
    )
    slog.add_logging_args(parser)
    args = parser.parse_args(argv)
    slog.configure_from_args(args)
    if args.measure < 1:
        parser.error("--measure must be >= 1")
    if args.warmup < 0:
        parser.error("--warmup must be >= 0")
    if args.validate or args.fuzz is not None:
        return _run_validation(parser, args)
    if args.experiment is None:
        parser.error("an experiment name is required "
                     "(or --validate / --fuzz N)")
    if args.benchmarks:
        unknown = set(args.benchmarks) - set(ALL_BENCHMARKS)
        if unknown:
            parser.error(f"unknown benchmarks: {sorted(unknown)}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.retry_backoff < 0:
        parser.error("--retry-backoff must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.resume and args.no_cache:
        parser.error("--resume needs the disk cache; drop --no-cache")
    if args.inject_fault:
        try:
            set_fault_injector(FaultSpec.parse(args.inject_fault))
        except ValueError as error:
            parser.error(f"--inject-fault: {error}")
    if (args.pipeview_benchmark
            and args.pipeview_benchmark not in ALL_BENCHMARKS):
        parser.error(
            f"unknown --pipeview-benchmark: {args.pipeview_benchmark}")
    if args.pipeview_window < 1:
        parser.error("--pipeview-window must be >= 1")
    if args.interval < 1:
        parser.error("--interval must be >= 1")
    if (args.timeline_benchmark
            and args.timeline_benchmark not in ALL_BENCHMARKS):
        parser.error(
            f"unknown --timeline-benchmark: {args.timeline_benchmark}")
    if (args.profile_benchmark
            and args.profile_benchmark not in ALL_BENCHMARKS):
        parser.error(
            f"unknown --profile-benchmark: {args.profile_benchmark}")
    if args.diff_threshold is not None and args.diff_threshold <= 0:
        parser.error("--diff-threshold must be positive")
    baseline_manifest = None
    if args.baseline:
        try:
            baseline_manifest = RunManifest.read(args.baseline)
        except (OSError, ValueError, KeyError, TypeError) as error:
            parser.error(f"--baseline: cannot load {args.baseline}: "
                         f"{error}")
        if not baseline_manifest.aggregates:
            parser.error(f"--baseline: {args.baseline} has no "
                         "aggregates (older harness version?)")
    report_baseline_manifest = None
    if args.report_baseline:
        if not args.report:
            parser.error("--report-baseline requires --report")
        try:
            report_baseline_manifest = RunManifest.read(
                args.report_baseline)
        except (OSError, ValueError, KeyError, TypeError) as error:
            parser.error(f"--report-baseline: cannot load "
                         f"{args.report_baseline}: {error}")
    started_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    started_clock = time.time()
    runner.pop_job_records()  # drain stale accounting (tests, REPLs)
    runner.pop_served_runs()
    runner.set_jobs(args.jobs)
    runner.set_fault_policy(retries=args.retries,
                            retry_backoff=args.retry_backoff,
                            fail_fast=args.fail_fast,
                            timeout=args.timeout,
                            resume=args.resume)
    fault_policy = runner.get_fault_policy()
    previous_cache = runner.get_disk_cache()
    if args.no_cache:
        runner.set_disk_cache(None)
    else:
        runner.set_disk_cache(DiskCache(args.cache_dir))
    todo = names if args.experiment == "all" else [args.experiment]
    collected = {}
    stage_spans: List[Dict] = []  # harness stages, for the Perfetto view

    def _staged(name: str, began: float) -> None:
        stage_spans.append({
            "name": name,
            "ts": (began - started_clock) * 1e6,
            "dur": (time.time() - began) * 1e6,
            "tid": 1,
        })

    try:
        for name in todo:
            started = time.time()
            text, results = _run_one(name, args.benchmarks, args.measure,
                                     args.warmup, chart=args.chart)
            _staged(f"experiment {name}", started)
            print(text)
            print(f"[{name}: {time.time() - started:.1f}s]")
            print()
            collected[name] = results
        observed: Dict = {}
        topdowns: Dict = {}
        if (args.stall_report or args.stall_report_csv
                or args.metrics_json or args.topdown or args.report):
            started = time.time()
            observed, topdowns = _obs_pass(
                args.benchmarks, args.measure, args.warmup,
                with_metrics=bool(args.metrics_json),
                with_topdown=bool(args.topdown or args.report
                                  or args.metrics_json))
            _staged("observability pass", started)
        if args.stall_report:
            print(_format_stall_report(observed, args.benchmarks))
            print()
        if args.topdown:
            merged = _merge_topdowns(topdowns)
            print(format_topdown_report(merged))
            print()
            print(format_energy_by_class(merged))
            print()
        if args.stall_report_csv:
            _write_stall_csv(observed, args.stall_report_csv)
            print(f"stall report CSV written to {args.stall_report_csv}")
        if args.metrics_json:
            _write_metrics_json(observed, topdowns, args.metrics_json)
            print(f"metrics written to {args.metrics_json}")
        timeline_collectors = []
        timeline_spans: List[Dict] = []
        if args.timeline or args.timeline_report or args.report:
            started = time.time()
            timeline_collectors, timeline_spans = _timeline_pass(
                args, started_clock)
            _staged("timeline pass", started)
        if args.timeline_report:
            print(format_timeline_report(timeline_collectors))
            print()
        pipeview_note = None
        if args.pipeview:
            started = time.time()
            pipeview_note = _write_pipeview(args)
            _staged("pipeview pass", started)
            print(pipeview_note)
        if args.profile_sim:
            started = time.time()
            print(_profile_sim(args))
            _staged("profile pass", started)
        job_records = runner.pop_job_records()
        served_runs = runner.pop_served_runs()
        if args.timeline:
            writer = TraceEventWriter()
            for collector in timeline_collectors:
                writer.add_timeline(collector)
            for span in stage_spans + timeline_spans:
                writer.add_span(span["name"], span["ts"], span["dur"],
                                tid=span.get("tid", 0))
            for record in job_records:
                began = getattr(record, "started_ts", 0.0)
                if not began:
                    continue
                writer.add_span(
                    f"job {record.job.describe()}",
                    (began - started_clock) * 1e6,
                    record.wall_seconds * 1e6,
                    tid=record.worker_pid,
                    args={"attempts": record.attempts,
                          "ok": record.ok})
            writer.write(args.timeline)
            print(f"timeline trace written to {args.timeline} "
                  f"(load at https://ui.perfetto.dev)")
        if job_records:
            _print_job_summary(job_records)
        failures = runner.failed_runs()
        if failures:
            _print_failure_summary(failures)
        cache = runner.get_disk_cache()
        cache_counts = cache.counters() if cache is not None else {}
        if cache is not None and (cache.hits or cache.stores):
            print(f"[disk cache: {cache.hits} hits, "
                  f"{cache.stores} new entries under {cache.root}]")
        if args.resume and cache is not None:
            simulated = sum(1 for r in job_records if r.ok)
            print(f"[resume: {cache.hits} job(s) replayed from cache, "
                  f"{simulated} re-simulated]")
    except SweepAborted as aborted:
        completed, _ = split_outcomes(runner.pop_job_records())
        print(f"sweep aborted (--fail-fast): {aborted}")
        print(f"[{len(completed)} completed job(s) were persisted to "
              f"the disk cache before the abort; re-run with --resume "
              f"to retry only the failed jobs]")
        return 2
    finally:
        runner.set_disk_cache(previous_cache)
        runner.set_jobs(1)
        runner.set_fault_policy()
        if args.inject_fault:
            set_fault_injector(None)
    if args.json_path:
        with open(args.json_path, "w") as stream:
            json.dump(collected, stream, indent=2, sort_keys=True,
                      default=_json_default)
        print(f"raw results written to {args.json_path}")
    manifest_paths = []
    if args.manifest_path:
        manifest_paths.append(args.manifest_path)
    if args.json_path:
        manifest_paths.append(manifest_path_for(args.json_path))
    outputs = {}
    if args.json_path:
        outputs["json"] = args.json_path
    if args.pipeview:
        outputs["pipeview"] = args.pipeview
    if args.timeline:
        outputs["timeline"] = args.timeline
    if args.stall_report_csv:
        outputs["stall_report_csv"] = args.stall_report_csv
    if args.profile_sim:
        outputs["profile"] = args.profile_sim
    if args.metrics_json:
        outputs["metrics_json"] = args.metrics_json
    if args.report:
        outputs["report"] = args.report
    # Built even with no --manifest/--json: --baseline diffs it and
    # --trajectory appends it.
    manifest = RunManifest(
        command=list(sys.argv[1:] if argv is None else argv),
        experiments=todo,
        benchmarks=args.benchmarks,
        measure=args.measure,
        warmup=args.warmup,
        seed=0,
        code_version=code_version(),
        repro_version=repro.__version__,
        started_at=started_at,
        finished_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        wall_seconds=time.time() - started_clock,
        workers=args.jobs,
        jobs_simulated=sum(1 for r in job_records if r.ok),
        jobs_failed=sum(1 for r in job_records if not r.ok),
        fault_policy=fault_policy,
        job_records=[
            JobRecord(job=r.job.describe(),
                      wall_seconds=r.wall_seconds,
                      worker_pid=r.worker_pid,
                      attempts=r.attempts,
                      status="ok" if r.ok else "failed",
                      cause=getattr(r, "cause", ""),
                      error=getattr(r, "error", ""),
                      started_ts=getattr(r, "started_ts", 0.0))
            for r in job_records
        ],
        cache=cache_counts,
        outputs=outputs,
        aggregates=_build_aggregates(served_runs, job_records, observed,
                                     topdowns),
    )
    for path in manifest_paths:
        manifest.write(path)
        print(f"run manifest written to {path}")
    if args.report:
        from repro.obs.report import write_report

        write_report(
            args.report, manifest,
            topdowns=_merge_topdowns(topdowns),
            timelines=timeline_collectors,
            baseline=report_baseline_manifest,
            base_label=args.report_baseline or "baseline")
        print(f"HTML report written to {args.report}")
    if args.trajectory:
        append_trajectory(manifest, args.trajectory)
        print(f"trajectory appended to {args.trajectory}")
    if baseline_manifest is not None:
        thresholds = DiffThresholds()
        if args.diff_threshold is not None:
            thresholds.ipc = thresholds.energy = args.diff_threshold
        report = diff_manifests(baseline_manifest, manifest, thresholds)
        print(format_diff_report(report, base_label=args.baseline,
                                 new_label="this run"))
        if not report.ok:
            return EXIT_REGRESSION
    return 0


def run() -> int:
    """Console-script entry point; tolerant of closed output pipes."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(run())

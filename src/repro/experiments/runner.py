"""Shared simulation driver for the experiment modules.

Mirrors the paper's methodology at Python scale: the paper skips 4 G
instructions and measures 100 M; we functionally warm the predictor and
caches on a prefix of the same instruction stream and measure a cycle-
accurate interval after it.

Results are cached at two levels.  A per-process memo keeps the figures
sharing a (model, benchmark) pair from re-simulating within one run; an
optional persistent :class:`~repro.experiments.diskcache.DiskCache`
(enabled by the CLI, see :func:`set_disk_cache`) survives the process so
repeated invocations skip simulation entirely.  ``run_benchmark`` checks
memory -> disk -> simulate.

Experiment modules declare their whole job list up front via
:func:`prefetch`, which fans uncached jobs over N worker processes
(:func:`set_jobs` / the CLI ``--jobs`` flag) and seeds both caches, so
the per-benchmark ``run_benchmark`` calls that follow are pure lookups.

Sweeps are fault tolerant: a job that crashes, hangs past the per-job
timeout or kills its worker is retried per :func:`set_fault_policy` and,
once its attempt budget is exhausted, *quarantined* — the sweep still
completes, the failure is recorded (in-process and, when a disk cache is
installed, as a persistent failure record), and later lookups see the
gap instead of re-paying the crash: ``run_benchmark(..., missing_ok=
True)`` returns None for a quarantined job, plain ``run_benchmark``
raises :class:`JobFailedError`, and :func:`complete_subset` filters a
benchmark list down to the rows every config has a result for.  Results
are persisted to the disk cache as they land (completion order), so an
interrupted sweep loses nothing and a resumed one re-runs only the
missing or failed jobs.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import CoreConfig, CoreStats, build_core
from repro.core.warmup import functional_warmup
from repro.energy import EnergyBreakdown, EnergyModel
from repro.workloads import (
    TraceGenerator,
    build_program,
    get_profile,
    renumber_trace,
)

#: Default measured-interval length (dynamic instructions).
DEFAULT_MEASURE = 8_000
#: Default functional warm-up length.
DEFAULT_WARMUP = 30_000


@dataclass(frozen=True)
class BenchmarkRun:
    """One (model, benchmark) simulation plus its energy breakdown."""

    model: str
    benchmark: str
    stats: CoreStats
    energy: EnergyBreakdown

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def total_energy(self) -> float:
        return self.energy.total

    @property
    def per(self) -> float:
        """Performance/energy ratio = 1 / EDP (unnormalised)."""
        edp = self.energy.edp()
        return 1.0 / edp if edp else 0.0

    def to_dict(self) -> Dict:
        """Plain-dict form shared by the disk cache and CLI ``--json``."""
        return {
            "model": self.model,
            "benchmark": self.benchmark,
            "stats": self.stats.to_dict(),
            "energy": self.energy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BenchmarkRun":
        """Inverse of :meth:`to_dict`."""
        return cls(
            model=data["model"],
            benchmark=data["benchmark"],
            stats=CoreStats.from_dict(data["stats"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
        )


_CACHE: Dict[Tuple, BenchmarkRun] = {}
#: Persistent cache (None = disabled); see :func:`set_disk_cache`.
_DISK_CACHE = None
#: Worker processes :func:`prefetch` fans out over.
_JOBS = 1
#: Generated (warm, measure) trace pairs; every model simulating the
#: same benchmark interval replays the identical immutable trace.
_TRACE_MEMO: Dict[Tuple, Tuple[list, list]] = {}
#: Accounting for every job actually simulated by this process (pool
#: fan-outs and cache-miss ``run_benchmark`` calls alike); drained by
#: :func:`pop_job_records` for the CLI's manifest and slowest-jobs view.
#: Holds both ``JobResult`` and (quarantined) ``JobFailure`` records.
_JOB_RECORDS: List = []
#: Quarantined jobs, keyed like :data:`_CACHE`; see :func:`failed_runs`.
_FAILED: Dict[Tuple, object] = {}
#: Every run :func:`run_benchmark` served since the last drain — from
#: the memory cache, the disk cache, or a fresh simulation alike.  The
#: CLI drains it via :func:`pop_served_runs` to build the manifest's
#: per-(model, benchmark) aggregates, which must also cover sweeps that
#: replayed entirely from cache.
_SERVED: Dict[Tuple, BenchmarkRun] = {}
#: Fault policy applied by :func:`prefetch`; see :func:`set_fault_policy`.
_RETRIES = 0
_RETRY_BACKOFF = 0.25
_FAIL_FAST = False
_TIMEOUT: Optional[float] = None
_RESUME = False


class JobFailedError(RuntimeError):
    """A requested run was quarantined as failed by the last sweep.

    Raised by :func:`run_benchmark` (without ``missing_ok``) instead of
    re-running a job the pool already crashed/hung on; ``failure`` is
    the structured :class:`~repro.experiments.pool.JobFailure`.
    """

    def __init__(self, failure):
        self.failure = failure
        super().__init__(failure.describe())


def _config_key(config: CoreConfig) -> Tuple:
    """Memo key covering the *complete* configuration.

    Derived from every ``CoreConfig`` field (``dataclasses.astuple``
    recurses into the IXU / cluster / hierarchy sub-configs), so two
    configs differing in any parameter — LSQ or PRF capacity, predictor
    geometry, cache sizes, ... — can never alias to one cached run.
    """
    return dataclasses.astuple(config)


def simulate(
    config: CoreConfig,
    benchmark: str,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    obs=None,
) -> BenchmarkRun:
    """Simulate one benchmark on one core model, bypassing all caches.

    A pure function of its arguments (the trace is re-derived from the
    benchmark profile and seed), which is what makes the result safe to
    compute in a worker process or load back from disk.  Traces are
    memoised per process: ``DynInst`` records are immutable and the
    cores never mutate the trace list, so every model simulating the
    same benchmark interval can replay one shared trace.

    ``obs`` optionally attaches a :class:`repro.obs.Observability`
    bundle to the simulated core (stall attribution, occupancy metrics,
    pipeline traces); observed runs are never cached, so the caching
    entry points don't take it.
    """
    trace_key = (benchmark, measure, warmup, seed)
    traces = _TRACE_MEMO.get(trace_key)
    if traces is None:
        generator = TraceGenerator(
            build_program(get_profile(benchmark), seed=seed), seed=seed
        )
        traces = (generator.generate(warmup),
                  renumber_trace(generator.generate(measure)))
        if len(_TRACE_MEMO) >= 64:  # bound memory on long sweeps
            _TRACE_MEMO.clear()
        _TRACE_MEMO[trace_key] = traces
    warm_trace, measure_trace = traces
    core = build_core(config, obs=obs)
    functional_warmup(core, warm_trace)
    stats = core.run(measure_trace)
    stats.benchmark = benchmark
    energy = EnergyModel(config).evaluate(stats)
    return BenchmarkRun(model=config.name, benchmark=benchmark,
                        stats=stats, energy=energy)


def run_benchmark(
    config: CoreConfig,
    benchmark: str,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    use_cache: bool = True,
    missing_ok: bool = False,
) -> Optional[BenchmarkRun]:
    """Simulate one benchmark on one core model (memory -> disk -> sim).

    A job quarantined as failed (by this invocation's sweep or by a
    persisted failure record from an earlier one) is **not** re-run:
    with ``missing_ok`` the lookup returns None (figure modules render
    the gap), otherwise :class:`JobFailedError` is raised.  Pass
    ``use_cache=False`` to force a fresh in-process simulation
    regardless of caches and quarantine records.
    """
    from repro.experiments.pool import JobFailure, JobResult, SimJob

    key = (_config_key(config), benchmark, measure, warmup, seed)
    if use_cache:
        hit = _CACHE.get(key)
        if hit is not None:
            _SERVED[key] = hit
            return hit
        if _DISK_CACHE is not None:
            run = _DISK_CACHE.load(config, benchmark, measure, warmup,
                                   seed)
            if run is not None:
                _CACHE[key] = run
                _FAILED.pop(key, None)
                _SERVED[key] = run
                return run
            if key not in _FAILED and not _RESUME:
                record = _DISK_CACHE.load_failure(
                    config, benchmark, measure, warmup, seed)
                if record is not None:
                    _FAILED[key] = JobFailure.from_dict(
                        SimJob(config=config, benchmark=benchmark,
                               measure=measure, warmup=warmup,
                               seed=seed),
                        record)
        failure = _FAILED.get(key)
        if failure is not None:
            if missing_ok:
                return None
            raise JobFailedError(failure)

    started_ts = time.time()
    started = time.perf_counter()
    run = simulate(config, benchmark, measure, warmup, seed)
    _JOB_RECORDS.append(JobResult(
        job=SimJob(config=config, benchmark=benchmark, measure=measure,
                   warmup=warmup, seed=seed),
        run=run, wall_seconds=time.perf_counter() - started,
        started_ts=started_ts,
    ))
    _SERVED[key] = run
    if use_cache:
        _CACHE[key] = run
        if _DISK_CACHE is not None:
            _DISK_CACHE.store(config, benchmark, measure, warmup, seed,
                              run)
    return run


@dataclass
class SweepOutcome:
    """One job's answer from :func:`run_sweep`, whatever served it.

    ``source`` records where the answer came from: ``"cache"`` (disk
    hit, zero simulation), ``"quarantine"`` (a sticky failure record
    from an earlier sweep; the job was not re-crashed), or
    ``"simulated"`` (the pool ran it — ``failure`` is set if it
    exhausted its retry budget this time).
    """

    job: object                       # pool.SimJob
    source: str                       # "cache" | "quarantine" | "simulated"
    run: Optional[BenchmarkRun] = None
    failure: Optional[object] = None  # pool.JobFailure
    wall_seconds: float = 0.0
    attempts: int = 0
    worker_pid: int = 0
    started_ts: float = 0.0

    @property
    def ok(self) -> bool:
        return self.run is not None


def run_sweep(
    jobs,
    workers: int = 1,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.25,
    resume: bool = False,
    on_outcome=None,
    on_attempt=None,
) -> List[SweepOutcome]:
    """Serve a job list end to end: cache dedup, quarantine, pool.

    The self-contained, re-entrant flavour of :func:`prefetch` that the
    ``repro.serve`` job server schedules batches on.  No module globals
    are read or written, so concurrent sweeps can run on different
    threads against different caches.  Every job is answered — straight
    from ``cache`` when its fingerprint is already stored (identical
    digest ⇒ zero simulation), from a sticky quarantine record (unless
    ``resume`` clears it), or by fanning the misses over the
    fault-tolerant pool under the given retry/timeout policy.  Fresh
    successes and failures are persisted back to ``cache`` as they
    land, exactly like a CLI sweep.

    ``on_outcome`` fires once per *distinct* job in serving order —
    cache hits and quarantine replays first, then pool completions in
    completion order — which is what the server streams to clients.
    ``on_attempt`` is the pool's per-attempt telemetry hook (see
    :func:`repro.experiments.pool.run_jobs`), passed through verbatim
    so the serving layer can record one trace span per execution
    attempt, retries included.  Returns one :class:`SweepOutcome` per
    input job in submission order; duplicate jobs share a single
    execution and outcome.
    """
    from repro.experiments.pool import JobFailure, SimJob, run_jobs

    jobs = list(jobs)
    outcomes: List[Optional[SweepOutcome]] = [None] * len(jobs)
    indices: Dict[Tuple, List[int]] = {}
    misses: List[SimJob] = []
    miss_keys: List[Tuple] = []

    def _emit(key: Tuple, outcome: SweepOutcome) -> None:
        for index in indices[key]:
            outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    for index, job in enumerate(jobs):
        key = (_config_key(job.config), job.benchmark, job.measure,
               job.warmup, job.seed)
        if key in indices:
            indices[key].append(index)
            continue
        indices[key] = [index]
        if cache is not None:
            run = cache.load(job.config, job.benchmark, job.measure,
                             job.warmup, job.seed)
            if run is not None:
                _emit(key, SweepOutcome(job=job, source="cache",
                                        run=run))
                continue
            if resume:
                cache.clear_failure(job.config, job.benchmark,
                                    job.measure, job.warmup, job.seed)
            else:
                record = cache.load_failure(
                    job.config, job.benchmark, job.measure, job.warmup,
                    job.seed)
                if record is not None:
                    failure = JobFailure.from_dict(job, record)
                    _emit(key, SweepOutcome(
                        job=job, source="quarantine", failure=failure,
                        attempts=failure.attempts,
                        wall_seconds=failure.wall_seconds,
                        worker_pid=failure.worker_pid))
                    continue
        misses.append(job)
        miss_keys.append(key)
    if not misses:
        return outcomes  # type: ignore[return-value]

    def _landed(result) -> None:
        # Completion-order incremental persistence + streaming, just
        # like a CLI sweep: an interrupted batch loses nothing.  The
        # key is recomputed from the result's own job: in pool mode the
        # JobResult crossed a process boundary, so its job is an equal
        # but not identical object.
        job = result.job
        if cache is not None:
            cache.store(job.config, job.benchmark, job.measure,
                        job.warmup, job.seed, result.run)
        key = (_config_key(job.config), job.benchmark, job.measure,
               job.warmup, job.seed)
        _emit(key, SweepOutcome(
            job=job, source="simulated", run=result.run,
            wall_seconds=result.wall_seconds, attempts=result.attempts,
            worker_pid=result.worker_pid, started_ts=result.started_ts))

    pool_outcomes = run_jobs(misses, workers=workers, timeout=timeout,
                             retries=retries,
                             retry_backoff=retry_backoff,
                             on_result=_landed, on_attempt=on_attempt)
    for job, key, outcome in zip(misses, miss_keys, pool_outcomes):
        if isinstance(outcome, JobFailure):
            if cache is not None:
                cache.store_failure(job.config, job.benchmark,
                                    job.measure, job.warmup, job.seed,
                                    outcome.to_dict())
            _emit(key, SweepOutcome(
                job=job, source="simulated", failure=outcome,
                attempts=outcome.attempts,
                wall_seconds=outcome.wall_seconds,
                worker_pid=outcome.worker_pid))
    return outcomes  # type: ignore[return-value]


def prefetch(
    pairs: Iterable[Tuple[CoreConfig, str]],
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> int:
    """Simulate every uncached (config, benchmark) pair via the pool.

    Experiment modules call this with their complete job list before
    reading any individual result: cached pairs (memory or disk) are
    skipped, the misses fan out over :func:`set_jobs` workers under the
    :func:`set_fault_policy` retry/timeout policy, and both caches are
    seeded so the ``run_benchmark`` calls that follow never simulate.
    Returns the number of jobs the pool actually ran (successes plus
    quarantined failures).

    Jobs already quarantined — in this process or as a persisted disk
    failure record — are skipped, not re-crashed; resume mode
    (:func:`set_fault_policy` ``resume=True``) clears those records and
    re-runs exactly the missing/failed subset.  Successful results are
    persisted to the disk cache as they complete, so an interrupted
    sweep (Ctrl-C, OOM) keeps everything already finished.
    """
    from repro.experiments.pool import (
        JobFailure,
        SimJob,
        SweepAborted,
        run_jobs,
    )

    todo: Dict[Tuple, SimJob] = {}
    for config, benchmark in pairs:
        key = (_config_key(config), benchmark, measure, warmup, seed)
        if key in _CACHE or key in todo:
            continue
        if key in _FAILED:
            if not _RESUME:
                continue
            _FAILED.pop(key)
        job = SimJob(config=config, benchmark=benchmark,
                     measure=measure, warmup=warmup, seed=seed)
        if _DISK_CACHE is not None:
            run = _DISK_CACHE.load(config, benchmark, measure, warmup,
                                   seed)
            if run is not None:
                _CACHE[key] = run
                continue
            record = _DISK_CACHE.load_failure(config, benchmark,
                                              measure, warmup, seed)
            if record is not None:
                if _RESUME:
                    _DISK_CACHE.clear_failure(config, benchmark,
                                              measure, warmup, seed)
                else:
                    _FAILED[key] = JobFailure.from_dict(job, record)
                    continue
        todo[key] = job
    if not todo:
        return 0

    def _persist(result) -> None:
        # Completion-order incremental store: an interrupted sweep
        # keeps every job already finished.
        if _DISK_CACHE is not None:
            job = result.job
            _DISK_CACHE.store(job.config, job.benchmark, job.measure,
                              job.warmup, job.seed, result.run)

    try:
        outcomes = run_jobs(list(todo.values()), workers=_JOBS,
                            timeout=_TIMEOUT, retries=_RETRIES,
                            retry_backoff=_RETRY_BACKOFF,
                            fail_fast=_FAIL_FAST, on_result=_persist)
    except SweepAborted as aborted:
        # Completed results were already persisted by _persist; seed
        # the memory cache too so the caller can salvage them.
        _JOB_RECORDS.extend(aborted.completed)
        _JOB_RECORDS.append(aborted.failure)
        for result in aborted.completed:
            job = result.job
            _CACHE[(_config_key(job.config), job.benchmark, job.measure,
                    job.warmup, job.seed)] = result.run
        raise
    _JOB_RECORDS.extend(outcomes)
    for key, outcome in zip(todo, outcomes):
        if isinstance(outcome, JobFailure):
            _FAILED[key] = outcome
            if _DISK_CACHE is not None:
                job = outcome.job
                _DISK_CACHE.store_failure(job.config, job.benchmark,
                                          job.measure, job.warmup,
                                          job.seed, outcome.to_dict())
        else:
            _CACHE[key] = outcome.run
            _FAILED.pop(key, None)
    return len(outcomes)


def complete_subset(
    configs: Iterable[CoreConfig],
    benchmarks: Iterable[str],
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> List[str]:
    """Benchmarks for which *every* config has a non-quarantined run.

    Figure modules call this right after :func:`prefetch` to degrade
    gracefully: a benchmark any model failed on is dropped from the
    aggregates (its absence is the explicit gap) instead of crashing
    the figure.  Pure bookkeeping — never triggers a simulation.
    """
    config_keys = [_config_key(config) for config in configs]
    return [
        benchmark for benchmark in benchmarks
        if not any(
            (config_key, benchmark, measure, warmup, seed) in _FAILED
            for config_key in config_keys
        )
    ]


def failed_runs() -> List:
    """Every currently-quarantined
    :class:`~repro.experiments.pool.JobFailure`, submission order not
    guaranteed.  The CLI renders these as the failure summary table."""
    return list(_FAILED.values())


def pop_job_records() -> List:
    """Drain the accumulated :class:`~repro.experiments.pool.JobResult`
    accounting (every job this process simulated since the last drain).

    The CLI calls this once per invocation to build the run manifest
    and the slowest-jobs summary; tests use it to assert what actually
    simulated versus came from a cache.
    """
    records = list(_JOB_RECORDS)
    _JOB_RECORDS.clear()
    return records


def pop_served_runs() -> List[BenchmarkRun]:
    """Drain every :class:`BenchmarkRun` served since the last drain
    (cache replays included), deduplicated per job key.

    The CLI builds the manifest's per-(model, benchmark) aggregates
    from this, so a warm-cache invocation still records what its tables
    were computed from.
    """
    runs = list(_SERVED.values())
    _SERVED.clear()
    return runs


def set_fault_policy(
    retries: int = 0,
    retry_backoff: float = 0.25,
    fail_fast: bool = False,
    timeout: Optional[float] = None,
    resume: bool = False,
) -> None:
    """Configure how :func:`prefetch` sweeps treat failing jobs.

    Args:
        retries: Attempts beyond the first before a job is quarantined.
        retry_backoff: Base exponential-backoff delay between attempts.
        fail_fast: Abort the sweep on the first quarantined job
            (:class:`~repro.experiments.pool.SweepAborted`) instead of
            degrading gracefully.
        timeout: Per-job execution-time limit in seconds (None = no
            limit); see :func:`repro.experiments.pool.run_jobs` for the
            exact semantics.
        resume: Retry jobs previously quarantined (clearing their
            persisted failure records) instead of skipping them.

    Calling with no arguments restores the defaults.
    """
    global _RETRIES, _RETRY_BACKOFF, _FAIL_FAST, _TIMEOUT, _RESUME
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive (or None)")
    _RETRIES = retries
    _RETRY_BACKOFF = retry_backoff
    _FAIL_FAST = fail_fast
    _TIMEOUT = timeout
    _RESUME = resume


def get_fault_policy() -> Dict:
    """The active :func:`set_fault_policy` settings as a plain dict."""
    return {
        "retries": _RETRIES,
        "retry_backoff": _RETRY_BACKOFF,
        "fail_fast": _FAIL_FAST,
        "timeout": _TIMEOUT,
        "resume": _RESUME,
    }


def set_jobs(jobs: int) -> None:
    """Set the worker-process count :func:`prefetch` fans out over."""
    global _JOBS
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _JOBS = jobs


def get_jobs() -> int:
    """Current worker-process count."""
    return _JOBS


def set_disk_cache(cache) -> None:
    """Install (or with None remove) the persistent result cache."""
    global _DISK_CACHE
    _DISK_CACHE = cache


def get_disk_cache():
    """The installed :class:`DiskCache`, or None when disabled."""
    return _DISK_CACHE


def clear_cache() -> None:
    """Drop all memoised runs and quarantined failures in this process
    (tests use this).

    Only the in-memory state is cleared; use ``DiskCache.clear()`` to
    purge the persistent store (including disk failure records).
    """
    _CACHE.clear()
    _FAILED.clear()
    _SERVED.clear()


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper aggregates every figure this way.

    Accepts any iterable, including one-pass generators.  Non-positive
    entries have no geometric mean; the error names the offending value
    and its position so a broken upstream metric is findable.
    """
    log_sum = 0.0
    count = 0
    for index, value in enumerate(values):
        if value <= 0:
            raise ValueError(
                f"geomean requires positive values; entry {index} "
                f"is {value!r}"
            )
        log_sum += math.log(value)
        count += 1
    if not count:
        return 0.0
    return math.exp(log_sum / count)

"""Shared simulation driver for the experiment modules.

Mirrors the paper's methodology at Python scale: the paper skips 4 G
instructions and measures 100 M; we functionally warm the predictor and
caches on a prefix of the same instruction stream and measure a cycle-
accurate interval after it.

Results are cached at two levels.  A per-process memo keeps the figures
sharing a (model, benchmark) pair from re-simulating within one run; an
optional persistent :class:`~repro.experiments.diskcache.DiskCache`
(enabled by the CLI, see :func:`set_disk_cache`) survives the process so
repeated invocations skip simulation entirely.  ``run_benchmark`` checks
memory -> disk -> simulate.

Experiment modules declare their whole job list up front via
:func:`prefetch`, which fans uncached jobs over N worker processes
(:func:`set_jobs` / the CLI ``--jobs`` flag) and seeds both caches, so
the per-benchmark ``run_benchmark`` calls that follow are pure lookups.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core import CoreConfig, CoreStats, build_core
from repro.core.warmup import functional_warmup
from repro.energy import EnergyBreakdown, EnergyModel
from repro.workloads import (
    TraceGenerator,
    build_program,
    get_profile,
    renumber_trace,
)

#: Default measured-interval length (dynamic instructions).
DEFAULT_MEASURE = 8_000
#: Default functional warm-up length.
DEFAULT_WARMUP = 30_000


@dataclass(frozen=True)
class BenchmarkRun:
    """One (model, benchmark) simulation plus its energy breakdown."""

    model: str
    benchmark: str
    stats: CoreStats
    energy: EnergyBreakdown

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def total_energy(self) -> float:
        return self.energy.total

    @property
    def per(self) -> float:
        """Performance/energy ratio = 1 / EDP (unnormalised)."""
        edp = self.energy.edp()
        return 1.0 / edp if edp else 0.0

    def to_dict(self) -> Dict:
        """Plain-dict form shared by the disk cache and CLI ``--json``."""
        return {
            "model": self.model,
            "benchmark": self.benchmark,
            "stats": self.stats.to_dict(),
            "energy": self.energy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BenchmarkRun":
        """Inverse of :meth:`to_dict`."""
        return cls(
            model=data["model"],
            benchmark=data["benchmark"],
            stats=CoreStats.from_dict(data["stats"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
        )


_CACHE: Dict[Tuple, BenchmarkRun] = {}
#: Persistent cache (None = disabled); see :func:`set_disk_cache`.
_DISK_CACHE = None
#: Worker processes :func:`prefetch` fans out over.
_JOBS = 1
#: Generated (warm, measure) trace pairs; every model simulating the
#: same benchmark interval replays the identical immutable trace.
_TRACE_MEMO: Dict[Tuple, Tuple[list, list]] = {}
#: Accounting for every job actually simulated by this process (pool
#: fan-outs and cache-miss ``run_benchmark`` calls alike); drained by
#: :func:`pop_job_records` for the CLI's manifest and slowest-jobs view.
_JOB_RECORDS: List = []


def _config_key(config: CoreConfig) -> Tuple:
    """Memo key covering the *complete* configuration.

    Derived from every ``CoreConfig`` field (``dataclasses.astuple``
    recurses into the IXU / cluster / hierarchy sub-configs), so two
    configs differing in any parameter — LSQ or PRF capacity, predictor
    geometry, cache sizes, ... — can never alias to one cached run.
    """
    return dataclasses.astuple(config)


def simulate(
    config: CoreConfig,
    benchmark: str,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    obs=None,
) -> BenchmarkRun:
    """Simulate one benchmark on one core model, bypassing all caches.

    A pure function of its arguments (the trace is re-derived from the
    benchmark profile and seed), which is what makes the result safe to
    compute in a worker process or load back from disk.  Traces are
    memoised per process: ``DynInst`` records are immutable and the
    cores never mutate the trace list, so every model simulating the
    same benchmark interval can replay one shared trace.

    ``obs`` optionally attaches a :class:`repro.obs.Observability`
    bundle to the simulated core (stall attribution, occupancy metrics,
    pipeline traces); observed runs are never cached, so the caching
    entry points don't take it.
    """
    trace_key = (benchmark, measure, warmup, seed)
    traces = _TRACE_MEMO.get(trace_key)
    if traces is None:
        generator = TraceGenerator(
            build_program(get_profile(benchmark), seed=seed), seed=seed
        )
        traces = (generator.generate(warmup),
                  renumber_trace(generator.generate(measure)))
        if len(_TRACE_MEMO) >= 64:  # bound memory on long sweeps
            _TRACE_MEMO.clear()
        _TRACE_MEMO[trace_key] = traces
    warm_trace, measure_trace = traces
    core = build_core(config, obs=obs)
    functional_warmup(core, warm_trace)
    stats = core.run(measure_trace)
    stats.benchmark = benchmark
    energy = EnergyModel(config).evaluate(stats)
    return BenchmarkRun(model=config.name, benchmark=benchmark,
                        stats=stats, energy=energy)


def run_benchmark(
    config: CoreConfig,
    benchmark: str,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    use_cache: bool = True,
) -> BenchmarkRun:
    """Simulate one benchmark on one core model (memory -> disk -> sim)."""
    key = (_config_key(config), benchmark, measure, warmup, seed)
    if use_cache:
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
        if _DISK_CACHE is not None:
            run = _DISK_CACHE.load(config, benchmark, measure, warmup,
                                   seed)
            if run is not None:
                _CACHE[key] = run
                return run
    from repro.experiments.pool import JobResult, SimJob

    started = time.perf_counter()
    run = simulate(config, benchmark, measure, warmup, seed)
    _JOB_RECORDS.append(JobResult(
        job=SimJob(config=config, benchmark=benchmark, measure=measure,
                   warmup=warmup, seed=seed),
        run=run, wall_seconds=time.perf_counter() - started,
    ))
    if use_cache:
        _CACHE[key] = run
        if _DISK_CACHE is not None:
            _DISK_CACHE.store(config, benchmark, measure, warmup, seed,
                              run)
    return run


def prefetch(
    pairs: Iterable[Tuple[CoreConfig, str]],
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> int:
    """Simulate every uncached (config, benchmark) pair via the pool.

    Experiment modules call this with their complete job list before
    reading any individual result: cached pairs (memory or disk) are
    skipped, the misses fan out over :func:`set_jobs` workers, and both
    caches are seeded so the ``run_benchmark`` calls that follow never
    simulate.  Returns the number of jobs actually simulated.
    """
    from repro.experiments.pool import SimJob, run_jobs

    todo: Dict[Tuple, SimJob] = {}
    for config, benchmark in pairs:
        key = (_config_key(config), benchmark, measure, warmup, seed)
        if key in _CACHE or key in todo:
            continue
        if _DISK_CACHE is not None:
            run = _DISK_CACHE.load(config, benchmark, measure, warmup,
                                   seed)
            if run is not None:
                _CACHE[key] = run
                continue
        todo[key] = SimJob(config=config, benchmark=benchmark,
                           measure=measure, warmup=warmup, seed=seed)
    if not todo:
        return 0
    results = run_jobs(list(todo.values()), workers=_JOBS)
    _JOB_RECORDS.extend(results)
    for key, result in zip(todo, results):
        _CACHE[key] = result.run
        if _DISK_CACHE is not None:
            job = todo[key]
            _DISK_CACHE.store(job.config, job.benchmark, job.measure,
                              job.warmup, job.seed, result.run)
    return len(results)


def pop_job_records() -> List:
    """Drain the accumulated :class:`~repro.experiments.pool.JobResult`
    accounting (every job this process simulated since the last drain).

    The CLI calls this once per invocation to build the run manifest
    and the slowest-jobs summary; tests use it to assert what actually
    simulated versus came from a cache.
    """
    records = list(_JOB_RECORDS)
    _JOB_RECORDS.clear()
    return records


def set_jobs(jobs: int) -> None:
    """Set the worker-process count :func:`prefetch` fans out over."""
    global _JOBS
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _JOBS = jobs


def get_jobs() -> int:
    """Current worker-process count."""
    return _JOBS


def set_disk_cache(cache) -> None:
    """Install (or with None remove) the persistent result cache."""
    global _DISK_CACHE
    _DISK_CACHE = cache


def get_disk_cache():
    """The installed :class:`DiskCache`, or None when disabled."""
    return _DISK_CACHE


def clear_cache() -> None:
    """Drop all memoised runs in this process (tests use this).

    Only the in-memory memo is cleared; use ``DiskCache.clear()`` to
    purge the persistent store.
    """
    _CACHE.clear()


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper aggregates every figure this way.

    Accepts any iterable, including one-pass generators.  Non-positive
    entries have no geometric mean; the error names the offending value
    and its position so a broken upstream metric is findable.
    """
    log_sum = 0.0
    count = 0
    for index, value in enumerate(values):
        if value <= 0:
            raise ValueError(
                f"geomean requires positive values; entry {index} "
                f"is {value!r}"
            )
        log_sum += math.log(value)
        count += 1
    if not count:
        return 0.0
    return math.exp(log_sum / count)

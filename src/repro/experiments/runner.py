"""Shared simulation driver for the experiment modules.

Mirrors the paper's methodology at Python scale: the paper skips 4 G
instructions and measures 100 M; we functionally warm the predictor and
caches on a prefix of the same instruction stream and measure a cycle-
accurate interval after it.  Runs are memoised per process so that the
figures sharing a (model, benchmark) pair do not re-simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core import CoreConfig, CoreStats, build_core
from repro.core.warmup import functional_warmup
from repro.energy import EnergyBreakdown, EnergyModel
from repro.workloads import (
    TraceGenerator,
    build_program,
    get_profile,
    renumber_trace,
)

#: Default measured-interval length (dynamic instructions).
DEFAULT_MEASURE = 8_000
#: Default functional warm-up length.
DEFAULT_WARMUP = 30_000


@dataclass(frozen=True)
class BenchmarkRun:
    """One (model, benchmark) simulation plus its energy breakdown."""

    model: str
    benchmark: str
    stats: CoreStats
    energy: EnergyBreakdown

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def total_energy(self) -> float:
        return self.energy.total

    @property
    def per(self) -> float:
        """Performance/energy ratio = 1 / EDP (unnormalised)."""
        edp = self.energy.edp()
        return 1.0 / edp if edp else 0.0


_CACHE: Dict[Tuple, BenchmarkRun] = {}


def _config_key(config: CoreConfig) -> Tuple:
    ixu = config.ixu
    ixu_key = None
    if ixu is not None:
        ixu_key = (ixu.stage_fus, ixu.bypass_stage_limit,
                   ixu.execute_mem_ops, ixu.execute_branches)
    return (config.name, config.core_type, config.issue_width,
            config.iq_entries, config.rob_entries, config.fu_int,
            config.fu_mem, config.fu_fp, config.fetch_width, ixu_key)


def run_benchmark(
    config: CoreConfig,
    benchmark: str,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
    use_cache: bool = True,
) -> BenchmarkRun:
    """Simulate one benchmark on one core model (memoised)."""
    key = (_config_key(config), benchmark, measure, warmup, seed)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    generator = TraceGenerator(
        build_program(get_profile(benchmark), seed=seed), seed=seed
    )
    warm_trace = generator.generate(warmup)
    measure_trace = renumber_trace(generator.generate(measure))
    core = build_core(config)
    functional_warmup(core, warm_trace)
    stats = core.run(measure_trace)
    stats.benchmark = benchmark
    energy = EnergyModel(config).evaluate(stats)
    run = BenchmarkRun(model=config.name, benchmark=benchmark,
                       stats=stats, energy=energy)
    if use_cache:
        _CACHE[key] = run
    return run


def clear_cache() -> None:
    """Drop all memoised runs (tests use this)."""
    _CACHE.clear()


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper aggregates every figure this way."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))

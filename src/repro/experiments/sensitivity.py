"""Sensitivity study: shrinking the IQ with and without the IXU.

The paper's core claim is that the IXU lets the OXU shrink "to the degree
at which performance is not significantly decreased" (Section IV-B1):
HALF loses 16 % of BIG's IPC, HALF+FX loses none.  This ablation sweeps
the IQ capacity/width jointly and reports, per size, the relative IPC and
IQ energy with and without the IXU — making the trade the paper's Figures
7/8 summarise visible across the whole design range.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core import model_config
from repro.core.presets import PAPER_IXU, big_config
from repro.energy import Component
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import ALL_BENCHMARKS

#: (IQ entries, issue width) sweep points; (64, 4) is BIG.
IQ_SWEEP: Tuple[Tuple[int, int], ...] = (
    (64, 4), (48, 3), (32, 2), (16, 2), (8, 2),
)


def _config(iq_entries: int, issue_width: int, with_ixu: bool):
    # commit width stays at BIG's (the presets keep it too): the sweep
    # varies only the scheduling window, as in the HALF comparison.
    base = replace(
        big_config(),
        iq_entries=iq_entries,
        issue_width=issue_width,
    )
    if with_ixu:
        return replace(base, ixu=PAPER_IXU,
                       name=f"FX/iq{iq_entries}w{issue_width}")
    return replace(base, name=f"OoO/iq{iq_entries}w{issue_width}")


def run(
    benchmarks: Optional[Sequence[str]] = None,
    sweep: Sequence[Tuple[int, int]] = IQ_SWEEP,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Return {"without_ixu"|"with_ixu": {"64x4": {"ipc", "iq_energy"}}}.

    IPC and IQ energy are relative to BIG (= the 64x4 point without an
    IXU).
    """
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    sweep = tuple(sweep)
    if not sweep:
        raise ValueError(
            "sensitivity sweep needs at least one (iq_entries, "
            "issue_width) point")
    configs = [model_config("BIG")]
    for entries, width in sweep:
        configs.append(_config(entries, width, False))
        configs.append(_config(entries, width, True))
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    # The sweep compares sums/geomeans across points, so a benchmark any
    # point's job was quarantined on is dropped whole (explicit gap).
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed at every sweep point; nothing to "
            "aggregate (see the failure summary)")
    base_runs = {
        bench: run_benchmark(model_config("BIG"), bench, measure, warmup)
        for bench in benchmarks
    }
    base_iq_energy = sum(
        r.energy.component_total(Component.IQ)
        for r in base_runs.values()
    )
    results: Dict[str, Dict[str, Dict[str, float]]] = {
        "without_ixu": {}, "with_ixu": {},
    }
    for entries, width in sweep:
        for with_ixu, family in ((False, "without_ixu"),
                                 (True, "with_ixu")):
            config = _config(entries, width, with_ixu)
            runs = [
                run_benchmark(config, bench, measure, warmup)
                for bench in benchmarks
            ]
            rel_ipc = geomean([
                r.ipc / base_runs[r.benchmark].ipc for r in runs
            ])
            iq_energy = sum(
                r.energy.component_total(Component.IQ) for r in runs
            )
            results[family][f"{entries}x{width}"] = {
                "ipc": rel_ipc,
                "iq_energy": (iq_energy / base_iq_energy
                              if base_iq_energy else 0.0),
            }
    return results


def format_table(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    points = list(results["without_ixu"])
    lines = ["Sensitivity: IQ size/width sweep (relative to BIG)",
             f"{'IQ':8s}{'IPC':>10s}{'IPC+IXU':>10s}"
             f"{'IQ energy':>11s}{'IQ en.+IXU':>11s}"]
    for point in points:
        without = results["without_ixu"][point]
        with_ixu = results["with_ixu"][point]
        lines.append(
            f"{point:8s}{without['ipc']:10.3f}{with_ixu['ipc']:10.3f}"
            f"{without['iq_energy']:11.3f}{with_ixu['iq_energy']:11.3f}"
        )
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

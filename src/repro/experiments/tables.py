"""Tables I and II: processor and device configurations.

These are inputs, not results — the regenerators render the implemented
configurations so a reader can diff them against the paper's tables.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import MODEL_NAMES, model_config
from repro.energy import DEFAULT_DEVICE


def table1() -> Dict[str, Dict[str, str]]:
    """Return the Table I parameter grid for every model."""
    grid: Dict[str, Dict[str, str]] = {}
    for model in MODEL_NAMES:
        config = model_config(model)
        hierarchy = config.hierarchy
        row = {
            "type": ("in-order" if config.core_type == "inorder"
                     else "out-of-order"),
            "fetch width": f"{config.fetch_width} inst.",
            "issue width": f"{config.issue_width} inst.",
            "issue queue": ("N/A" if config.core_type == "inorder"
                            else f"{config.iq_entries} entries"),
            "FU (int, mem, fp)":
                f"{config.fu_int}, {config.fu_mem}, {config.fu_fp}",
            "ROB": ("N/A" if config.core_type == "inorder"
                    else f"{config.rob_entries} entries"),
            "int/fp PRF": (
                "N/A" if config.core_type == "inorder"
                else f"{config.int_prf_entries}/"
                     f"{config.fp_prf_entries} entries"),
            "ld/st queue": (
                "N/A" if config.core_type == "inorder"
                else f"{config.lq_entries}/{config.sq_entries} entries"),
            "branch pred.":
                f"g-share, {config.pht_entries // 1024}K PHT, "
                f"{config.btb_entries} entries BTB",
            "br. mispred. penalty":
                f"~{config.mispredict_depth} cycles",
            "L1C (I)": f"{hierarchy.l1i_kb} KB, {hierarchy.l1i_ways} way,"
                       f" {hierarchy.line_bytes} B/line,"
                       f" {hierarchy.l1_latency} cycles",
            "L1C (D)": f"{hierarchy.l1d_kb} KB, {hierarchy.l1d_ways} way,"
                       f" {hierarchy.line_bytes} B/line,"
                       f" {hierarchy.l1_latency} cycles",
            "L2C": f"{hierarchy.l2_kb} KB, {hierarchy.l2_ways} way,"
                   f" {hierarchy.line_bytes} B/line,"
                   f" {hierarchy.l2_latency} cycles",
            "main mem.": f"{hierarchy.mem_latency} cycles",
            "ISA": "Alpha-like micro-ISA",
        }
        if config.has_ixu:
            row["IXU"] = (
                f"{list(config.ixu.stage_fus)} FUs, bypass limit "
                f"{config.ixu.bypass_stage_limit}"
            )
        grid[model] = row
    return grid


def table2() -> Dict[str, str]:
    """Return the Table II device configuration."""
    device = DEFAULT_DEVICE
    return {
        "technology": device.technology,
        "temperature": f"{device.temperature_k} K",
        "VDD": f"{device.vdd} V",
        "device type (core)":
            f"{device.core_device_type} "
            f"(I off: {device.core_ioff_na_per_um} nA/um)",
        "device type (L2)":
            f"{device.l2_device_type} "
            f"(I off: {device.l2_ioff_na_per_um} nA/um)",
        "clock": f"{device.clock_ghz} GHz",
    }


def format_table1(grid: Dict[str, Dict[str, str]]) -> str:
    models = list(grid)
    keys: List[str] = []
    for row in grid.values():
        for key in row:
            if key not in keys:
                keys.append(key)
    width = max(len(k) for k in keys) + 2
    lines = ["Table I: processor configurations",
             " " * width + "".join(f"{m:>24s}" for m in models)]
    for key in keys:
        cells = "".join(
            f"{grid[m].get(key, '-'):>24s}" for m in models
        )
        lines.append(f"{key:{width}s}{cells}")
    return "\n".join(lines)


def format_table2(rows: Dict[str, str]) -> str:
    lines = ["Table II: device configurations"]
    for key, value in rows.items():
        lines.append(f"  {key:22s}{value}")
    return "\n".join(lines)


def main() -> None:
    print(format_table1(table1()))
    print()
    print(format_table2(table2()))


if __name__ == "__main__":
    main()

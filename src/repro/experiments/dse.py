"""Design-space autotuner: seeded sampling, successive halving, Pareto.

The paper's sensitivity studies (Figures 10-13) sample a handful of
design points per axis.  This module walks a *declarative* parameter
space — IXU stage/FU shapes, IQ/ROB/LSQ/PRF sizes, bypass distance,
cluster shapes, cache geometry — over thousands of configs and reports
the exact Pareto frontier over (IPC, energy/instruction, area proxy).

The walk is budgeted with **successive halving**: every sampled config
is screened at a short measured interval, survivors are promoted rung
by rung to geometrically larger budgets (``x eta`` per rung), and only
the final rung runs at the full ``--budget``.  Promotion is
multi-objective: configs are ordered by Pareto rank (then an IPC-per-
energy tiebreak, then sample order), and a rung always promotes its
entire current Pareto front — so the frontier can never be pruned by a
tiebreak — but never more than ``max(ceil(n / eta), |front|)`` configs.

Everything rides the existing harness: jobs are scheduled on the
slot-based fault-tolerant pool (``--jobs``/``--retries``/``--timeout``,
crash quarantine, ``--resume``), results dedupe through the
content-addressed disk cache (a re-run with a warm cache is
bit-identical and near-instant), per-rung records land in the run
manifest (``--manifest``) and the Perfetto timeline (``--timeline``),
and two sweeps' manifests diff with ``repro-exp diff``.

Invariants (the gauntlet ``verify_payload`` checks, and CI asserts on
the emitted JSON):

* the final frontier is the exact Pareto set of the final rung — no
  member is dominated, every non-member is dominated by a member;
* every config pruned at a rung is strictly dominated, on that rung's
  own measurements, by a config promoted from that rung (the
  "dominance chain" down to the frontier);
* no rung promotes more than ``max(ceil(n / eta), |rung front|)``
  configs, and every rung's promoted set contains its Pareto front;
* the frontier JSON is a pure function of (space, samples, budget,
  rungs, eta, benchmarks, seed) — ``--jobs N``, cache state and resume
  history never change a byte of it.

CLI (also reachable as ``python -m repro.experiments.dse``)::

    repro-exp dse --space paper --samples 216 --budget 4000 \\
        --rungs 3 --eta 3 --jobs 4 --out frontier.json --chart
    repro-exp dse --space myspace.json --benchmarks hmmer mcf
    repro-exp dse --verify frontier.json       # exit 4 on violation
    repro-exp dse --list-spaces

Space files are JSON::

    {"name": "custom", "base": "BIG",
     "axes": [{"name": "iq_entries", "values": [8, 16, 32, 64]},
              {"name": "ixu", "values": [null,
                  {"stage_fus": [3, 1, 1], "bypass_stage_limit": 2}]},
              {"name": "hierarchy.l2_kb", "values": [256, 512]},
              {"name": "lsq", "values": [
                  {"lq_entries": 16, "sq_entries": 16},
                  {"lq_entries": 32, "sq_entries": 32}]}],
     "seeds": [{"name": "ca-2x2", "overrides": {"clusters": {
         "count": 2, "issue_width_per_cluster": 2}}}]}

An axis value that is an object merges all its overrides at once (for
parameters that only move together); scalar values override the field
named by the axis.  ``seeds`` are named design points that are always
included in the sample — the shipped presets seed CG-OoO-style
block/cluster shapes and FXA variants so the frontier directly extends
the paper's related-work comparison.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import random
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import ClusterConfig, CoreConfig, IXUConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.core.presets import model_config
from repro.energy import AreaModel
from repro.experiments import runner
from repro.experiments.pareto import (
    dominated_by_some,
    pareto_front_indices,
    pareto_ranks,
)
from repro.experiments.textchart import scatter_chart
from repro.workloads import ALL_BENCHMARKS

#: Schema version of the frontier JSON payload.
PAYLOAD_VERSION = 1
#: Exit code of ``--verify`` when an invariant does not hold.
EXIT_INVARIANT = 4
#: Benchmarks measured when ``--benchmarks`` is not given: one
#: high-ILP, one memory-bound, one streaming workload (the smoke triad
#: the figure modules use for quick runs).
DEFAULT_BENCHMARKS: Tuple[str, ...] = ("hmmer", "mcf", "lbm")
#: Objective directions, in vector order.
OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("ipc", "max"),
    ("energy_per_instruction", "min"),
    ("area_mm2", "min"),
)


class SpaceError(ValueError):
    """A malformed parameter space (unknown field, bad value, ...)."""


# ----------------------------------------------------------------------
# Parameter spaces
# ----------------------------------------------------------------------

#: Top-level override keys that take whole sub-config objects.
_NESTED_KEYS = ("ixu", "clusters")
_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(CoreConfig)
) - {"name", "hierarchy"}
_HIERARCHY_FIELDS = frozenset(
    f.name for f in dataclasses.fields(HierarchyConfig))
_IXU_FIELDS = frozenset(f.name for f in dataclasses.fields(IXUConfig))
_CLUSTER_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ClusterConfig))


def _validate_override_key(key: str, value: object) -> None:
    """Raise :class:`SpaceError` unless ``key``/``value`` name a real
    config knob; the error spells out what is known."""
    if key == "ixu":
        if value is not None:
            if not isinstance(value, Mapping):
                raise SpaceError("'ixu' takes null or an object of "
                                 f"IXUConfig fields, got {value!r}")
            unknown = set(value) - _IXU_FIELDS
            if unknown:
                raise SpaceError(
                    f"unknown IXU field(s) {sorted(unknown)}; known: "
                    f"{sorted(_IXU_FIELDS)}")
        return
    if key == "clusters":
        if value is not None:
            if not isinstance(value, Mapping):
                raise SpaceError("'clusters' takes null or an object of"
                                 f" ClusterConfig fields, got {value!r}")
            unknown = set(value) - _CLUSTER_FIELDS
            if unknown:
                raise SpaceError(
                    f"unknown cluster field(s) {sorted(unknown)}; "
                    f"known: {sorted(_CLUSTER_FIELDS)}")
        return
    if key.startswith("hierarchy."):
        fieldname = key.split(".", 1)[1]
        if fieldname not in _HIERARCHY_FIELDS:
            raise SpaceError(
                f"unknown hierarchy field {fieldname!r}; known: "
                f"{sorted(_HIERARCHY_FIELDS)}")
        return
    if key not in _CONFIG_FIELDS:
        raise SpaceError(
            f"unknown config field {key!r}; known: "
            f"{sorted(_CONFIG_FIELDS | set(_NESTED_KEYS))} plus "
            f"'hierarchy.<field>'")


def _validate_overrides(overrides: Mapping, where: str) -> None:
    if not isinstance(overrides, Mapping):
        raise SpaceError(f"{where}: overrides must be an object, got "
                         f"{overrides!r}")
    for key, value in overrides.items():
        try:
            _validate_override_key(key, value)
        except SpaceError as error:
            raise SpaceError(f"{where}: {error}") from None


def _names_config_field(name: str) -> bool:
    """True when an axis name addresses a real config knob directly."""
    return (name in _CONFIG_FIELDS or name in _NESTED_KEYS
            or name.startswith("hierarchy."))


@dataclass(frozen=True)
class Axis:
    """One sweep dimension.

    When ``name`` addresses a config field (including ``ixu``,
    ``clusters`` and ``hierarchy.<field>``), each value — scalar or
    object — is that field's value.  Otherwise ``name`` is only a
    label and every value must be an object merging several overrides
    at once (for parameters that only move together, like LQ/SQ size).
    """

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SpaceError(f"axis {self.name!r} has no values")
        for value in self.values:
            if _names_config_field(self.name):
                _validate_override_key(self.name, value)
            elif isinstance(value, Mapping):
                _validate_overrides(value, f"axis {self.name!r}")
            else:
                # A scalar under a label-only axis: the name itself is
                # the problem; surface the unknown-field error.
                _validate_override_key(self.name, value)

    def overrides_for(self, value: object) -> Dict:
        if _names_config_field(self.name):
            return {self.name: value}
        return dict(value)


@dataclass(frozen=True)
class SeedPoint:
    """A named design point always included in the sample."""

    name: str
    overrides: Dict

    def __post_init__(self) -> None:
        _validate_overrides(self.overrides, f"seed {self.name!r}")


@dataclass(frozen=True)
class DesignPoint:
    """One sampled configuration (a row of the sweep)."""

    index: int
    name: str
    overrides: Dict


@dataclass
class ParamSpace:
    """A declarative design space: a grid of axes plus seeded points."""

    name: str
    axes: List[Axis] = field(default_factory=list)
    seeds: List[SeedPoint] = field(default_factory=list)
    base: str = "BIG"
    description: str = ""

    def grid_size(self) -> int:
        """Number of grid points (0 when the space has no axes)."""
        if not self.axes:
            return 0
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def size(self) -> int:
        """Total candidate design points (grid plus seeds)."""
        return self.grid_size() + len(self.seeds)

    def _decode(self, index: int) -> Dict:
        """Overrides of grid point ``index`` (mixed-radix decode)."""
        overrides: Dict = {}
        for axis in self.axes:
            index, offset = divmod(index, len(axis.values))
            overrides.update(axis.overrides_for(axis.values[offset]))
        return overrides

    def sample(self, samples: int, seed: int) -> List[DesignPoint]:
        """Deterministically draw ``samples`` design points.

        Seeded points always ride along; the remaining budget is drawn
        from the grid without replacement with ``random.Random(seed)``.
        Grid point names encode the grid index, so the same grid point
        keeps the same name (and cache identity) whatever the sample
        size.  Duplicate configurations (a seed that collides with a
        grid point, or two axes overriding to the same values) are
        deduplicated, keeping the first occurrence.
        """
        if samples < 1:
            raise SpaceError("samples must be >= 1")
        points: List[DesignPoint] = []
        seen: set = set()

        def _add(name: str, overrides: Dict) -> None:
            key = json.dumps(overrides, sort_keys=True, default=str)
            if key in seen:
                return
            seen.add(key)
            points.append(DesignPoint(len(points), name, overrides))

        for seed_point in self.seeds:
            _add(seed_point.name, dict(seed_point.overrides))
        grid = self.grid_size()
        budget = max(0, samples - len(points))
        if grid and budget:
            if budget >= grid:
                chosen = range(grid)
            else:
                chosen = sorted(
                    random.Random(seed).sample(range(grid), budget))
            width = max(4, len(str(grid - 1)))
            for grid_index in chosen:
                _add(f"g{grid_index:0{width}d}",
                     self._decode(grid_index))
        return points

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "base": self.base,
            "description": self.description,
            "axes": [
                {"name": axis.name, "values": list(axis.values)}
                for axis in self.axes
            ],
            "seeds": [
                {"name": seed.name, "overrides": dict(seed.overrides)}
                for seed in self.seeds
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ParamSpace":
        if not isinstance(data, Mapping):
            raise SpaceError(f"space must be an object, got {data!r}")
        unknown = set(data) - {"name", "base", "description", "axes",
                               "seeds"}
        if unknown:
            raise SpaceError(f"unknown space key(s) {sorted(unknown)}")
        axes = [
            Axis(name=entry["name"], values=tuple(entry["values"]))
            for entry in data.get("axes", [])
        ]
        seeds = [
            SeedPoint(name=entry["name"],
                      overrides=dict(entry["overrides"]))
            for entry in data.get("seeds", [])
        ]
        return cls(name=data.get("name", "custom"), axes=axes,
                   seeds=seeds, base=data.get("base", "BIG"),
                   description=data.get("description", ""))


def apply_overrides(base: CoreConfig, overrides: Mapping,
                    name: str) -> CoreConfig:
    """Instantiate ``base`` with dse-style ``overrides`` applied.

    The override vocabulary (scalar config fields, ``ixu`` /
    ``clusters`` objects, dotted ``hierarchy.<field>`` keys) is shared
    with the job server's config specs; validate first with
    :func:`_validate_overrides` for up-front unknown-field errors.
    Raises :class:`SpaceError` when the overridden values do not form a
    valid configuration.
    """
    scalars: Dict = {}
    hierarchy: Dict = {}
    for key, value in overrides.items():
        if key.startswith("hierarchy."):
            hierarchy[key.split(".", 1)[1]] = value
        elif key == "ixu":
            if value is None:
                scalars["ixu"] = None
            else:
                ixu = dict(value)
                if "stage_fus" in ixu:
                    ixu["stage_fus"] = tuple(ixu["stage_fus"])
                scalars["ixu"] = IXUConfig(**ixu)
        elif key == "clusters":
            scalars["clusters"] = (None if value is None
                                   else ClusterConfig(**value))
        else:
            scalars[key] = value
    try:
        config = base
        if hierarchy:
            config = replace(
                config, hierarchy=replace(config.hierarchy, **hierarchy))
        return replace(config, name=name, **scalars)
    except (TypeError, ValueError) as error:
        raise SpaceError(
            f"overrides do not form a valid config: {error}") from None


def build_config(space: ParamSpace, point: DesignPoint) -> CoreConfig:
    """Instantiate the :class:`CoreConfig` a design point describes."""
    try:
        return apply_overrides(model_config(space.base),
                               point.overrides, f"dse/{point.name}")
    except SpaceError as error:
        raise SpaceError(
            f"design point {point.name!r}: {error}") from None


# ----------------------------------------------------------------------
# Preset spaces
# ----------------------------------------------------------------------

#: The paper's IXU shape as a space override.
_PAPER_IXU = {"stage_fus": [3, 1, 1], "bypass_stage_limit": 2}


def _cgooo_seed_points() -> List[SeedPoint]:
    """~10 named design points from CG-OoO / clustered-architecture
    shapes (PAPERS.md): block-granular narrow clusters, the paper's CA
    comparator, and FXA variants they trade off against."""
    return [
        # The paper's Section VII-A comparator: 2 Alpha-style clusters.
        SeedPoint("ca-2x2", {"clusters": {
            "count": 2, "issue_width_per_cluster": 2,
            "int_fus_per_cluster": 1, "inter_cluster_delay": 1,
            "steering": "dependence"}}),
        SeedPoint("ca-2x2-rr", {"clusters": {
            "count": 2, "issue_width_per_cluster": 2,
            "int_fus_per_cluster": 1, "inter_cluster_delay": 1,
            "steering": "roundrobin"}}),
        # CG-OoO-style block-granular scheduling: many narrow clusters,
        # small global window, pricier cross-cluster communication.
        SeedPoint("cgooo-4x1", {"iq_entries": 16, "clusters": {
            "count": 4, "issue_width_per_cluster": 1,
            "int_fus_per_cluster": 1, "inter_cluster_delay": 2,
            "steering": "dependence"}}),
        SeedPoint("cgooo-6x1", {"iq_entries": 8, "clusters": {
            "count": 6, "issue_width_per_cluster": 1,
            "int_fus_per_cluster": 1, "inter_cluster_delay": 2,
            "steering": "dependence"}}),
        SeedPoint("cgooo-4x2", {"iq_entries": 32, "clusters": {
            "count": 4, "issue_width_per_cluster": 2,
            "int_fus_per_cluster": 2, "inter_cluster_delay": 2,
            "steering": "dependence"}}),
        # FXA family: the paper's HALF+FX/BIG+FX plus depth variants.
        SeedPoint("fxa-half", {"iq_entries": 32, "issue_width": 2,
                               "ixu": dict(_PAPER_IXU)}),
        SeedPoint("fxa-big", {"ixu": dict(_PAPER_IXU)}),
        SeedPoint("fxa-deep", {"iq_entries": 16, "issue_width": 2,
                               "ixu": {"stage_fus": [4, 2, 1, 1],
                                       "bypass_stage_limit": 2}}),
        SeedPoint("fxa-lite", {"iq_entries": 8, "issue_width": 2,
                               "ixu": {"stage_fus": [2, 1],
                                       "bypass_stage_limit": 1}}),
        # Non-FXA corners of the paper's comparison.
        SeedPoint("half", {"iq_entries": 32, "issue_width": 2}),
        SeedPoint("inorder-2w", {
            "core_type": "inorder", "fetch_width": 2,
            "rename_width": 2, "issue_width": 2, "commit_width": 2,
            "fu_int": 2, "fu_mem": 1, "fu_fp": 1,
            "fetch_to_rename": 5, "fetch_breaks_on_taken": True}),
    ]


def _paper_space() -> ParamSpace:
    """The default multi-thousand-point space over the axes the paper's
    sensitivity studies sample (Figures 10-13), seeded with the CG-OoO
    and clustered shapes."""
    return ParamSpace(
        name="paper",
        description="IQ/issue/ROB/LSQ/PRF sizes, IXU shapes and bypass "
                    "distance, L2 geometry; CG-OoO/clustered seeds",
        axes=[
            Axis("iq_entries", (8, 16, 32, 48, 64)),
            Axis("issue_width", (2, 3, 4)),
            Axis("rob_entries", (64, 128, 192)),
            Axis("lsq", (
                {"lq_entries": 16, "sq_entries": 16},
                {"lq_entries": 32, "sq_entries": 32},
            )),
            Axis("prf", (
                {"int_prf_entries": 96, "fp_prf_entries": 64},
                {"int_prf_entries": 128, "fp_prf_entries": 96},
            )),
            Axis("ixu", (
                None,
                dict(_PAPER_IXU),
                {"stage_fus": [2, 1], "bypass_stage_limit": 2},
                {"stage_fus": [4, 1, 1, 1], "bypass_stage_limit": 2},
                {"stage_fus": [3, 1, 1], "bypass_stage_limit": None},
            )),
            Axis("hierarchy.l2_kb", (256, 512, 1024)),
        ],
        seeds=_cgooo_seed_points(),
    )


def _smoke_space() -> ParamSpace:
    """A 10-point space for tests and quick demos."""
    return ParamSpace(
        name="smoke",
        description="tiny IQ/issue/IXU grid plus two seeded shapes",
        axes=[
            Axis("iq_entries", (16, 64)),
            Axis("issue_width", (2, 4)),
            Axis("ixu", (None, dict(_PAPER_IXU))),
        ],
        seeds=[_cgooo_seed_points()[0], _cgooo_seed_points()[5]],
    )


def _cgooo_space() -> ParamSpace:
    """Only the named CG-OoO/clustered/FXA design points."""
    return ParamSpace(
        name="cgooo",
        description="the ~11 seeded CG-OoO / clustered / FXA shapes",
        seeds=_cgooo_seed_points(),
    )


PRESET_SPACES = {
    "paper": _paper_space,
    "smoke": _smoke_space,
    "cgooo": _cgooo_space,
}


def load_space(spec: str) -> ParamSpace:
    """Resolve ``--space``: a preset name or a JSON space file path."""
    factory = PRESET_SPACES.get(spec)
    if factory is not None:
        return factory()
    path = Path(spec)
    if not path.exists():
        raise SpaceError(
            f"{spec!r} is neither a preset "
            f"({', '.join(sorted(PRESET_SPACES))}) nor a space file")
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SpaceError(f"cannot read space file {spec}: {error}"
                         ) from None
    return ParamSpace.from_dict(data)


# ----------------------------------------------------------------------
# Successive halving
# ----------------------------------------------------------------------


def rung_measure(budget: int, eta: int, rungs: int, rung: int,
                 min_measure: int) -> int:
    """Measured-instruction budget of ``rung`` (the last rung runs the
    full ``budget``; earlier rungs shrink by ``eta`` per step, floored
    at ``min_measure``)."""
    return max(min_measure, round(budget / eta ** (rungs - 1 - rung)))


def promotion_allowance(survivors: int, eta: int) -> int:
    """How many configs the halving budget admits to the next rung."""
    return max(1, math.ceil(survivors / eta))


@dataclass
class ExploreResult:
    """Everything one sweep produced (JSON payload + harness extras)."""

    payload: Dict
    #: Final-rung BenchmarkRuns, for manifest aggregates.
    final_runs: List = field(default_factory=list)
    #: (name, started_ts, ended_ts) per rung, for the timeline export.
    rung_spans: List[Tuple[str, float, float]] = field(
        default_factory=list)


def _vector(entry: Mapping) -> Tuple[float, float, float]:
    """Maximisation-normalised objective vector of a result entry."""
    return (entry["ipc"], -entry["energy_per_instruction"],
            -entry["area_mm2"])


def explore(
    space: ParamSpace,
    samples: int,
    budget: int,
    rungs: int,
    eta: int,
    benchmarks: Sequence[str],
    seed: int = 0,
    min_measure: int = 200,
    warmup_factor: float = 4.0,
    log=None,
) -> ExploreResult:
    """Run one successive-halving sweep; pure up to the harness state.

    The caller owns harness setup (jobs, caches, fault policy) —
    typically via :func:`cmd`.  ``log`` is an optional callable taking
    one progress line per rung.
    """
    benchmarks = list(benchmarks)
    if not benchmarks:
        raise SpaceError("at least one benchmark is required")
    points = space.sample(samples, seed)
    configs = {p.name: build_config(space, p) for p in points}
    areas = {p.name: AreaModel(configs[p.name]).total() for p in points}
    alive = list(points)
    rung_records: List[Dict] = []
    failed: Dict[str, int] = {}
    spans: List[Tuple[str, float, float]] = []
    final_runs: List = []
    for rung in range(rungs):
        measure = rung_measure(budget, eta, rungs, rung, min_measure)
        warmup = int(round(measure * warmup_factor))
        began = time.time()
        runner.prefetch(
            [(configs[p.name], bench) for p in alive
             for bench in benchmarks],
            measure=measure, warmup=warmup, seed=seed)
        entries: List[Dict] = []
        entry_points: List[DesignPoint] = []
        rung_failed: List[str] = []
        rung_runs: List = []
        for point in alive:
            runs = [
                runner.run_benchmark(configs[point.name], bench,
                                     measure, warmup, seed=seed,
                                     missing_ok=True)
                for bench in benchmarks
            ]
            if any(run is None for run in runs):
                failed[point.name] = rung
                rung_failed.append(point.name)
                continue
            ipc = runner.geomean(run.ipc for run in runs)
            epi = runner.geomean(
                run.energy.energy_per_instruction for run in runs)
            entries.append({
                "index": point.index,
                "name": point.name,
                "ipc": ipc,
                "energy_per_instruction": epi,
                "area_mm2": areas[point.name],
                "score": ipc / epi if epi else 0.0,
            })
            entry_points.append(point)
            rung_runs.extend(runs)
        vectors = [_vector(entry) for entry in entries]
        ranks = pareto_ranks(vectors)
        front = set(pareto_front_indices(vectors))
        for position, entry in enumerate(entries):
            entry["rank"] = ranks[position]
        last_rung = rung == rungs - 1
        allowance = promotion_allowance(len(entries), eta)
        if last_rung:
            promoted_positions = sorted(front)
        else:
            keep = min(len(entries), max(allowance, len(front)))
            order = sorted(
                range(len(entries)),
                key=lambda i: (ranks[i], -entries[i]["score"],
                               entries[i]["index"]))
            promoted_positions = sorted(order[:keep])
        promoted_set = set(promoted_positions)
        for position, entry in enumerate(entries):
            entry["promoted"] = position in promoted_set
        rung_records.append({
            "rung": rung,
            "measure": measure,
            "warmup": warmup,
            "configs": len(alive),
            "promotion_allowance": allowance,
            "front_size": len(front),
            "promoted": len(promoted_positions),
            "failed": rung_failed,
            "results": entries,
        })
        spans.append((
            f"dse rung {rung} ({len(alive)} configs @ {measure} insts)",
            began, time.time()))
        if log is not None:
            log(f"rung {rung}: {len(alive)} configs at {measure} insts"
                f" -> {len(promoted_positions)} "
                f"{'frontier' if last_rung else 'promoted'}"
                f" (front {len(front)}, budget {allowance}"
                f"{f', {len(rung_failed)} failed' if rung_failed else ''})")
        alive = [entry_points[i] for i in promoted_positions]
        if last_rung:
            final_runs = rung_runs
        if not alive:
            break
    frontier_names = {p.name for p in alive}
    frontier = [
        dict(entry, overrides=dict(
            next(p for p in points if p.name == entry["name"]).overrides))
        for entry in (rung_records[-1]["results"] if rung_records else [])
        if entry["name"] in frontier_names
    ]
    for entry in frontier:
        entry.pop("promoted", None)
    measured = {
        entry["name"] for record in rung_records
        for entry in record["results"]
    }
    payload = {
        "version": PAYLOAD_VERSION,
        "space": space.to_dict(),
        "base": space.base,
        "samples": len(points),
        "benchmarks": benchmarks,
        "budget": budget,
        "rungs": rungs,
        "eta": eta,
        "min_measure": min_measure,
        "warmup_factor": warmup_factor,
        "seed": seed,
        "objectives": {name: direction
                       for name, direction in OBJECTIVES},
        "points": [
            {"index": p.index, "name": p.name,
             "overrides": dict(p.overrides),
             "area_mm2": areas[p.name]}
            for p in points
        ],
        "rungs_detail": rung_records,
        "frontier": frontier,
        "pruned": sorted(measured - frontier_names),
        "failed": failed,
    }
    return ExploreResult(payload=payload, final_runs=final_runs,
                         rung_spans=spans)


# ----------------------------------------------------------------------
# The invariant gauntlet
# ----------------------------------------------------------------------


def verify_payload(payload: Mapping) -> List[str]:
    """Check every frontier/halving invariant; returns violations.

    An empty list means the payload is internally consistent: exact
    final frontier, per-rung dominance of everything pruned, promotion
    budgets respected, and the rung chain unbroken.  Pure arithmetic on
    the JSON — no simulation — so CI can gate on it cheaply.
    """
    problems: List[str] = []
    records = payload.get("rungs_detail", [])
    eta = payload.get("eta", 0)
    if not records:
        problems.append("no rungs recorded")
        return problems
    for record in records:
        rung = record["rung"]
        entries = record["results"]
        vectors = [_vector(entry) for entry in entries]
        front = set(pareto_front_indices(vectors))
        ranks = pareto_ranks(vectors)
        last = rung == len(records) - 1
        promoted = [i for i, e in enumerate(entries) if e["promoted"]]
        pruned = [i for i, e in enumerate(entries)
                  if not e["promoted"]]
        for position, entry in enumerate(entries):
            if entry.get("rank") != ranks[position]:
                problems.append(
                    f"rung {rung}: {entry['name']} records rank "
                    f"{entry.get('rank')} but recomputes to "
                    f"{ranks[position]}")
        if not front <= set(promoted):
            dropped = sorted(
                entries[i]["name"] for i in front - set(promoted))
            problems.append(
                f"rung {rung}: Pareto-front config(s) {dropped} were "
                f"pruned")
        allowance = promotion_allowance(len(entries), eta)
        if record.get("promotion_allowance") != allowance:
            problems.append(
                f"rung {rung}: recorded allowance "
                f"{record.get('promotion_allowance')} != ceil(n/eta) "
                f"= {allowance}")
        if last:
            if set(promoted) != front:
                problems.append(
                    f"rung {rung} (final): frontier is not the exact "
                    f"Pareto set ({len(promoted)} promoted vs "
                    f"{len(front)} non-dominated)")
        elif len(promoted) > max(allowance, len(front)):
            problems.append(
                f"rung {rung}: promoted {len(promoted)} configs, over "
                f"the max(ceil(n/eta), |front|) = "
                f"{max(allowance, len(front))} budget")
        promoted_vectors = [vectors[i] for i in promoted]
        for i in pruned:
            if not dominated_by_some(vectors[i], promoted_vectors):
                problems.append(
                    f"rung {rung}: pruned config "
                    f"{entries[i]['name']} is not dominated by any "
                    f"promoted config")
    for earlier, later in zip(records, records[1:]):
        expected = {e["name"] for e in earlier["results"]
                    if e["promoted"]}
        got = ({e["name"] for e in later["results"]}
               | set(later.get("failed", [])))
        if expected != got:
            problems.append(
                f"rung {later['rung']}: participants {sorted(got)} != "
                f"rung {earlier['rung']} promotions {sorted(expected)}")
    final_entries = records[-1]["results"]
    final_promoted = {e["name"] for e in final_entries if e["promoted"]}
    frontier = payload.get("frontier", [])
    frontier_names = {entry["name"] for entry in frontier}
    if frontier_names != final_promoted:
        problems.append(
            f"frontier {sorted(frontier_names)} != final-rung "
            f"promotions {sorted(final_promoted)}")
    by_name = {e["name"]: e for e in final_entries}
    for entry in frontier:
        recorded = by_name.get(entry["name"])
        if recorded is None:
            continue
        if _vector(entry) != _vector(recorded):
            problems.append(
                f"frontier entry {entry['name']} metrics diverge from "
                f"its final-rung record")
    measured = {e["name"] for record in records
                for e in record["results"]}
    expected_pruned = sorted(measured - frontier_names)
    if sorted(payload.get("pruned", [])) != expected_pruned:
        problems.append("pruned list does not cover exactly the "
                        "measured-but-not-frontier configs")
    return problems


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _describe_overrides(overrides: Mapping) -> str:
    parts = []
    for key in sorted(overrides):
        value = overrides[key]
        if key == "ixu":
            parts.append(
                "ixu=none" if value is None else
                "ixu=" + "/".join(str(n) for n in value["stage_fus"]))
        elif key == "clusters":
            parts.append(
                "clusters=none" if value is None else
                f"clusters={value.get('count', 2)}x"
                f"{value.get('issue_width_per_cluster', 2)}")
        else:
            parts.append(f"{key.removeprefix('hierarchy.')}={value}")
    return " ".join(parts)


def format_frontier_table(payload: Mapping) -> str:
    """The frontier as an aligned text table (IPC/energy/area + knobs)."""
    frontier = sorted(payload["frontier"], key=lambda e: -e["ipc"])
    lines = [
        f"Pareto frontier: {len(frontier)} of {payload['samples']} "
        f"configs (ipc max, energy/instr min, area min; space "
        f"'{payload['space']['name']}', budget {payload['budget']})",
        f"{'name':14s}{'ipc':>8s}{'pJ/inst':>10s}{'mm2':>8s}  config",
    ]
    for entry in frontier:
        lines.append(
            f"{entry['name']:14s}{entry['ipc']:8.3f}"
            f"{entry['energy_per_instruction']:10.1f}"
            f"{entry['area_mm2']:8.2f}  "
            f"{_describe_overrides(entry['overrides'])}")
    return "\n".join(lines)


def format_charts(payload: Mapping) -> str:
    """Textchart scatters: IPC vs energy/instr and IPC vs area, with
    the frontier overdrawn on the explored cloud."""
    final = payload["rungs_detail"][-1]["results"]
    frontier_names = {e["name"] for e in payload["frontier"]}
    explored = [e for e in final if e["name"] not in frontier_names]
    charts = []
    for metric, label in (("energy_per_instruction", "pJ/inst"),
                          ("area_mm2", "mm2")):
        charts.append(scatter_chart(
            {
                "explored": [(e["ipc"], e[metric]) for e in explored],
                "frontier": [(e["ipc"], e[metric])
                             for e in final
                             if e["name"] in frontier_names],
            },
            title=f"Final rung: IPC vs {label} "
                  f"({len(final)} configs, frontier marked)",
            x_label="ipc", y_label=label,
        ))
    return "\n\n".join(charts)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _int_at_least(minimum: int):
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer, got {text!r}") from None
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"must be >= {minimum} (got {value})")
        return value
    return parse


def _float_at_least(minimum: float, exclusive: bool = False):
    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected a number, got {text!r}") from None
        if value < minimum or (exclusive and value == minimum):
            op = ">" if exclusive else ">="
            raise argparse.ArgumentTypeError(
                f"must be {op} {minimum:g} (got {value:g})")
        return value
    return parse


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``dse`` arguments (shared by ``repro-exp dse`` and
    ``python -m repro.experiments.dse``)."""
    parser.add_argument(
        "--space", default="paper",
        help="Preset name (%s) or JSON space file (default paper)."
             % ", ".join(sorted(PRESET_SPACES)))
    parser.add_argument(
        "--samples", type=_int_at_least(1), default=64, metavar="N",
        help="Design points to draw (seeded points always included; "
             "default 64; capped at the space size).")
    parser.add_argument(
        "--budget", type=_int_at_least(1), default=4000, metavar="N",
        help="Final-rung measured instructions per run (default 4000).")
    parser.add_argument(
        "--rungs", type=_int_at_least(1), default=3, metavar="N",
        help="Successive-halving rungs (default 3; 1 = no screening).")
    parser.add_argument(
        "--eta", type=_int_at_least(2), default=3, metavar="N",
        help="Halving rate: rung budgets grow and survivor counts "
             "shrink by this factor (default 3).")
    parser.add_argument(
        "--min-measure", type=_int_at_least(1), default=200, metavar="N",
        help="Floor on any rung's measured instructions (default 200).")
    parser.add_argument(
        "--warmup-factor", type=_float_at_least(0.0), default=4.0,
        metavar="F",
        help="Functional warm-up per rung = F x measured instructions "
             "(default 4.0).")
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="Benchmarks to measure (geomean across them; default "
             f"{' '.join(DEFAULT_BENCHMARKS)}).")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="Seed for the design-point sampler and trace generation "
             "(default 0).")
    parser.add_argument(
        "--jobs", type=_int_at_least(1), default=1,
        help="Worker processes the sweep fans out over (default 1).")
    parser.add_argument(
        "--cache-dir", default=None,
        help="On-disk result cache directory "
             "(default ~/.cache/fxa-repro).")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="Disable the on-disk result cache (always re-simulate).")
    parser.add_argument(
        "--resume", action="store_true",
        help="Replay completed jobs from the disk cache and re-run "
             "only missing or previously-failed ones.")
    parser.add_argument(
        "--retries", type=_int_at_least(0), default=0, metavar="N",
        help="Re-run a failed job up to N extra times before "
             "quarantining it (default 0).")
    parser.add_argument(
        "--retry-backoff", type=_float_at_least(0.0), default=0.25,
        metavar="SECONDS",
        help="Base exponential-backoff delay between retries "
             "(default 0.25).")
    parser.add_argument(
        "--timeout", type=_float_at_least(0.0, exclusive=True),
        default=None, metavar="SECONDS",
        help="Per-job execution-time limit (default: none).")
    parser.add_argument(
        "--inject-fault", default=None, metavar="SPEC",
        help="Testing/CI hook: inject a worker fault "
             "(KIND[:BENCHMARK[:PARAM]], e.g. crash:mcf).")
    parser.add_argument(
        "--out", default="dse-frontier.json", metavar="PATH",
        help="Frontier JSON output path (default dse-frontier.json).")
    parser.add_argument(
        "--chart", action="store_true",
        help="Print textchart scatter plots of the final rung.")
    parser.add_argument(
        "--chart-out", default=None, metavar="PATH",
        help="Also write the frontier table + scatter charts to PATH.")
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="Write a run manifest (provenance + per-config "
             "aggregates; diffable with repro-exp diff).")
    parser.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="Write a Perfetto-loadable trace with one span per rung "
             "and per simulated job.")
    parser.add_argument(
        "--verify", default=None, metavar="FRONTIER_JSON",
        help="Verify the invariant gauntlet on an existing frontier "
             f"JSON and exit ({EXIT_INVARIANT} on violation); no "
             "simulation.")
    parser.add_argument(
        "--list-spaces", action="store_true",
        help="List the preset spaces and their sizes, then exit.")


def _cmd_verify(path: str) -> int:
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (OSError, json.JSONDecodeError) as error:
        print(f"dse --verify: cannot load {path}: {error}",
              file=sys.stderr)
        return 2
    problems = verify_payload(payload)
    if problems:
        print(f"dse --verify: {len(problems)} invariant violation(s) "
              f"in {path}:")
        for problem in problems:
            print(f"  - {problem}")
        return EXIT_INVARIANT
    frontier = len(payload.get("frontier", []))
    print(f"dse --verify: OK — {frontier} frontier config(s) of "
          f"{payload.get('samples', '?')} sampled; exact frontier, "
          f"dominance chain and promotion budgets all hold")
    return 0


def cmd(args: argparse.Namespace) -> int:
    """Run the ``dse`` subcommand (already-parsed arguments)."""
    from repro.experiments.diskcache import DiskCache, code_version
    from repro.experiments.pool import FaultSpec, set_fault_injector

    if args.verify:
        return _cmd_verify(args.verify)
    if args.list_spaces:
        for name in sorted(PRESET_SPACES):
            space = PRESET_SPACES[name]()
            print(f"{name:8s} {space.grid_size():5d} grid points + "
                  f"{len(space.seeds):2d} seeds  {space.description}")
        return 0
    if args.resume and args.no_cache:
        print("dse: --resume needs the disk cache; drop --no-cache",
              file=sys.stderr)
        return 2
    try:
        space = load_space(args.space)
    except SpaceError as error:
        print(f"dse: --space: {error}", file=sys.stderr)
        return 2
    benchmarks = (list(args.benchmarks) if args.benchmarks
                  else list(DEFAULT_BENCHMARKS))
    unknown = set(benchmarks) - set(ALL_BENCHMARKS)
    if unknown:
        print(f"dse: unknown benchmarks: {sorted(unknown)}",
              file=sys.stderr)
        return 2
    injector = None
    if args.inject_fault:
        try:
            injector = FaultSpec.parse(args.inject_fault)
        except ValueError as error:
            print(f"dse: --inject-fault: {error}", file=sys.stderr)
            return 2

    started_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    started_clock = time.time()
    runner.pop_job_records()
    runner.pop_served_runs()
    runner.set_jobs(args.jobs)
    runner.set_fault_policy(retries=args.retries,
                            retry_backoff=args.retry_backoff,
                            timeout=args.timeout,
                            resume=args.resume)
    fault_policy = runner.get_fault_policy()
    previous_cache = runner.get_disk_cache()
    runner.set_disk_cache(None if args.no_cache
                          else DiskCache(args.cache_dir))
    if injector is not None:
        set_fault_injector(injector)
    try:
        result = explore(
            space, samples=args.samples, budget=args.budget,
            rungs=args.rungs, eta=args.eta, benchmarks=benchmarks,
            seed=args.seed, min_measure=args.min_measure,
            warmup_factor=args.warmup_factor, log=print)
        job_records = runner.pop_job_records()
        # Drain the served-run log too, so repeated in-process
        # invocations (tests) start from clean accounting.
        runner.pop_served_runs()
        cache = runner.get_disk_cache()
        cache_counts = cache.counters() if cache is not None else {}
    finally:
        runner.set_disk_cache(previous_cache)
        runner.set_jobs(1)
        runner.set_fault_policy()
        if injector is not None:
            set_fault_injector(None)

    payload = result.payload
    with open(args.out, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    table = format_frontier_table(payload)
    print(table)
    charts = None
    if args.chart or args.chart_out:
        charts = format_charts(payload)
    if args.chart:
        print()
        print(charts)
    if args.chart_out:
        with open(args.chart_out, "w") as stream:
            stream.write(table + "\n\n" + charts + "\n")
        print(f"charts written to {args.chart_out}")
    if payload["failed"]:
        print(f"[{len(payload['failed'])} config(s) failed and were "
              f"dropped: {sorted(payload['failed'])}; re-run with "
              f"--resume to retry them]")
    print(f"frontier JSON written to {args.out} "
          f"({len(payload['frontier'])} frontier configs of "
          f"{payload['samples']} sampled)")
    if cache_counts and (cache_counts.get("hits")
                         or cache_counts.get("stores")):
        print(f"[disk cache: {cache_counts['hits']} hits, "
              f"{cache_counts['stores']} new entries under "
              f"{cache_counts['root']}]")

    if args.manifest:
        import repro
        from repro.obs import JobRecord, RunManifest

        wall = {}
        for record in job_records:
            if record.ok:
                wall[(record.job.config.name, record.job.benchmark,
                      record.job.measure)] = record.wall_seconds
        final_measure = rung_measure(args.budget, args.eta, args.rungs,
                                     args.rungs - 1, args.min_measure)
        aggregates = []
        for run in sorted(result.final_runs,
                          key=lambda r: (r.model, r.benchmark)):
            key = (run.model, run.benchmark, final_measure)
            wall_seconds = wall.get(key, 0.0)
            aggregates.append({
                "model": run.model,
                "benchmark": run.benchmark,
                "ipc": run.ipc,
                "cycles": run.stats.cycles,
                "committed": run.stats.committed,
                "energy_total": run.total_energy,
                "energy_per_instruction":
                    run.energy.energy_per_instruction,
                "stalls": dict(run.stats.stalls),
                "wall_seconds": wall_seconds,
                "insts_per_second": (
                    run.stats.committed / wall_seconds
                    if wall_seconds else 0.0),
                "ff_skipped_cycles": 0,
                "topdown": None,
            })
        manifest = RunManifest(
            command=list(sys.argv[1:]),
            experiments=["dse"],
            benchmarks=benchmarks,
            measure=args.budget,
            warmup=int(round(args.budget * args.warmup_factor)),
            seed=args.seed,
            code_version=code_version(),
            repro_version=repro.__version__,
            started_at=started_at,
            finished_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            wall_seconds=time.time() - started_clock,
            workers=args.jobs,
            jobs_simulated=sum(1 for r in job_records if r.ok),
            jobs_failed=sum(1 for r in job_records if not r.ok),
            fault_policy=fault_policy,
            job_records=[
                JobRecord(job=r.job.describe(),
                          wall_seconds=r.wall_seconds,
                          worker_pid=r.worker_pid,
                          attempts=r.attempts,
                          status="ok" if r.ok else "failed",
                          cause=getattr(r, "cause", ""),
                          error=getattr(r, "error", ""),
                          started_ts=getattr(r, "started_ts", 0.0))
                for r in job_records
            ],
            cache=cache_counts,
            outputs={"frontier": args.out},
            aggregates=aggregates,
        )
        manifest.write(args.manifest)
        print(f"run manifest written to {args.manifest}")

    if args.timeline:
        from repro.obs.traceevent import TraceEventWriter

        writer = TraceEventWriter()
        for name, began, ended in result.rung_spans:
            writer.add_span(name, (began - started_clock) * 1e6,
                            (ended - began) * 1e6, tid=1)
        for record in job_records:
            began = getattr(record, "started_ts", 0.0)
            if not began:
                continue
            writer.add_span(
                f"job {record.job.describe()}",
                (began - started_clock) * 1e6,
                record.wall_seconds * 1e6,
                tid=record.worker_pid,
                args={"attempts": record.attempts, "ok": record.ok})
        writer.write(args.timeline)
        print(f"timeline trace written to {args.timeline}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-exp dse",
        description="Design-space autotuner: successive halving over a "
                    "declarative config space, exact Pareto frontier "
                    "over (IPC, energy/instruction, area).")
    configure_parser(parser)
    return cmd(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())

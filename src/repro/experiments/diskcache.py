"""Persistent, content-addressed on-disk cache for simulation results.

The in-process memo cache in :mod:`repro.experiments.runner` dies with
the process, so every CLI invocation, pytest session and example script
re-pays the full simulation cost.  This cache persists finished
:class:`~repro.experiments.runner.BenchmarkRun` records as JSON files
under ``~/.cache/fxa-repro/`` (or any ``--cache-dir``), keyed by a
SHA-256 fingerprint of

* the **complete** :class:`~repro.core.CoreConfig` (every field,
  including the nested IXU / cluster / cache-hierarchy configs),
* the benchmark name, measured/warm-up interval lengths and seed, and
* a **code-version stamp** hashing every ``repro`` source file, so any
  change to the simulator or workload generator invalidates old entries
  automatically.

Entries are written atomically (temp file + ``os.replace``) so parallel
workers and concurrent CLI invocations never observe torn files; a
corrupt or unreadable entry is treated as a miss and deleted.

Besides finished runs the cache also persists **failure records**
(``<digest>.fail.json``): when a sweep quarantines a job (crash, hang,
worker death) the structured failure is stored under the same content
address, so later invocations report the same gap without re-paying the
crash — until ``--resume`` clears the record and retries the job, the
code version changes (new fingerprint), or a successful run replaces
it.  These are the resume keys of the fault-tolerant runner.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.atomicio import replace_json

#: Bump to invalidate every existing cache entry on a format change.
CACHE_FORMAT = 1

_code_version_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/fxa-repro`` or ``~/.cache/fxa-repro``."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "fxa-repro"


def code_version() -> str:
    """Hash of every ``repro`` source file (cached per process).

    Any edit to the simulator, energy model or workload generator
    changes this stamp and therefore every cache key.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def fingerprint(config, benchmark: str, measure: int, warmup: int,
                seed: int) -> str:
    """Content address of one simulation: full config + run parameters.

    Unlike the old hand-picked field list this derives from
    ``dataclasses.asdict(config)``, so *every* config field — LSQ and
    PRF capacities, predictor geometry, the cache hierarchy, ... —
    participates in the key and two configs differing in any field can
    never alias.
    """
    payload = {
        "format": CACHE_FORMAT,
        "code": code_version(),
        "config": dataclasses.asdict(config),
        "benchmark": benchmark,
        "measure": measure,
        "warmup": warmup,
        "seed": seed,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class DiskCache:
    """Content-addressed store of finished benchmark runs.

    Args:
        root: Cache directory (created on demand); defaults to
            :func:`default_cache_dir`.
    """

    def __init__(self, root=None):
        self.root = Path(root) if root else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.failures_seen = 0
        self.failures_stored = 0

    def _path(self, digest: str) -> Path:
        # Two-level fan-out keeps directory listings small.
        return self.root / digest[:2] / f"{digest}.json"

    def _failure_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.fail.json"

    def load(self, config, benchmark: str, measure: int, warmup: int,
             seed: int):
        """Return the cached :class:`BenchmarkRun` or None on a miss."""
        from repro.experiments.runner import BenchmarkRun

        path = self._path(
            fingerprint(config, benchmark, measure, warmup, seed)
        )
        try:
            with open(path) as stream:
                payload = json.load(stream)
            run = BenchmarkRun.from_dict(payload["run"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Torn/corrupt entry: drop it and re-simulate.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return run

    def store(self, config, benchmark: str, measure: int, warmup: int,
              seed: int, run) -> None:
        """Persist one finished run (atomic write; failures are soft)."""
        digest = fingerprint(config, benchmark, measure, warmup, seed)
        path = self._path(digest)
        payload = {
            "fingerprint": digest,
            "model": run.model,
            "benchmark": benchmark,
            "run": run.to_dict(),
        }
        if not self._write_json(path, payload):
            return  # a read-only cache dir must not break simulation
        self.stores += 1
        # A fresh success supersedes any stale quarantine record.
        try:
            self._failure_path(digest).unlink()
        except OSError:
            pass

    def _write_json(self, path: Path, payload: dict) -> bool:
        """Atomic JSON write; False (never an exception) on failure.

        The temp name comes from :func:`repro.atomicio.tmp_path_for`
        (hostname + pid + monotonic counter): on a cache directory
        shared between hosts, a pid-only suffix lets two workers
        publishing the same digest clobber each other's temp file
        mid-write and publish a torn entry.
        """
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            replace_json(path, payload)
        except OSError:
            return False
        return True

    def store_failure(self, config, benchmark: str, measure: int,
                      warmup: int, seed: int, record: dict) -> None:
        """Persist one quarantined job's failure record (resume key).

        ``record`` is the plain-dict form of a
        :class:`~repro.experiments.pool.JobFailure`; later invocations
        treat the job as failed without re-running it until the record
        is cleared (``--resume``) or a successful run replaces it.
        """
        digest = fingerprint(config, benchmark, measure, warmup, seed)
        if self._write_json(self._failure_path(digest),
                            {"fingerprint": digest, "failure": record}):
            self.failures_stored += 1

    def load_failure(self, config, benchmark: str, measure: int,
                     warmup: int, seed: int):
        """Return the persisted failure record dict, or None."""
        digest = fingerprint(config, benchmark, measure, warmup, seed)
        path = self._failure_path(digest)
        try:
            with open(path) as stream:
                record = json.load(stream)["failure"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.failures_seen += 1
        return record

    def clear_failure(self, config, benchmark: str, measure: int,
                      warmup: int, seed: int) -> bool:
        """Drop one failure record (``--resume`` retries the job)."""
        digest = fingerprint(config, benchmark, measure, warmup, seed)
        try:
            self._failure_path(digest).unlink()
        except OSError:
            return False
        return True

    def counters(self) -> dict:
        """This invocation's accounting as a plain dict.

        Returned (not just printed) so callers — the CLI's cache
        summary, run manifests, ``--json`` consumers — can record the
        hit/miss/store counts programmatically.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "failures_seen": self.failures_seen,
            "failures_stored": self.failures_stored,
            "root": str(self.root),
        }

    def reset_counters(self) -> None:
        """Zero the per-invocation counters (the entries stay)."""
        self.hits = self.misses = self.stores = 0
        self.failures_seen = self.failures_stored = 0

    def clear(self) -> int:
        """Delete every entry (results and failure records alike);
        returns the number of *result* entries removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            if not path.name.endswith(".fail.json"):
                removed += 1
        return removed

    def __len__(self) -> int:
        """Number of cached *result* entries (failure records excluded)."""
        if not self.root.exists():
            return 0
        return sum(1 for path in self.root.glob("*/*.json")
                   if not path.name.endswith(".fail.json"))

"""Figure 10: performance/energy ratio (the inverse of EDP) vs BIG.

The paper reports PER relative to BIG for the INT group, FP group and
all programs.  PER = 1/EDP = 1/(energy × delay); for a fixed instruction
count this is IPC_rel / Energy_rel.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import model_config, MODEL_NAMES
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    models: Sequence[str] = MODEL_NAMES,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """Return {model: {"INT"|"FP"|"ALL": PER relative to BIG}}."""
    benchmarks = list(benchmarks or (INT_BENCHMARKS + FP_BENCHMARKS))
    configs = [model_config("BIG")] + [model_config(m) for m in models]
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    # Group geomeans need every model on every program: drop benchmarks
    # with quarantined jobs (the sweep's explicit gaps).
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed on every model; nothing to "
            "aggregate (see the failure summary)")
    int_set = [b for b in benchmarks if b in INT_BENCHMARKS]
    fp_set = [b for b in benchmarks if b in FP_BENCHMARKS]
    base = {
        bench: run_benchmark(model_config("BIG"), bench, measure, warmup)
        for bench in benchmarks
    }
    results: Dict[str, Dict[str, float]] = {}
    for model in models:
        config = model_config(model)
        rel_per = {}
        for bench in benchmarks:
            run_result = run_benchmark(config, bench, measure, warmup)
            rel_per[bench] = run_result.per / base[bench].per
        entry = {}
        if int_set:
            entry["INT"] = geomean([rel_per[b] for b in int_set])
        if fp_set:
            entry["FP"] = geomean([rel_per[b] for b in fp_set])
        entry["ALL"] = geomean([rel_per[b] for b in benchmarks])
        results[model] = entry
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    models = list(results)
    groups = list(next(iter(results.values())))
    lines = ["Figure 10: performance/energy ratio relative to BIG",
             f"{'group':6s}" + "".join(f"{m:>10s}" for m in models)]
    for group in groups:
        cells = "".join(f"{results[m][group]:10.3f}" for m in models)
        lines.append(f"{group:6s}{cells}")
    return "\n".join(lines)


def format_chart(results: Dict[str, Dict[str, float]]) -> str:
    """Bar chart of the ALL-group PER (the figure's headline bars)."""
    from repro.experiments.textchart import bar_chart

    values = {model: row["ALL"] for model, row in results.items()}
    return bar_chart(values, title="Figure 10 (PER vs BIG)",
                     reference=1.0)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

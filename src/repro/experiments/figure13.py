"""Figure 13: IPC relative to BIG versus IXU depth (1-6 stages).

Companion to Figure 12: the IPC of HALF+FX rises with IXU depth and
saturates past three stages (<1 % per extra stage, Section VI-H2).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import model_config
from repro.experiments.figure12 import DEPTHS, depth_config
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS


def run(
    benchmarks: Optional[Sequence[str]] = None,
    depths: Sequence[int] = DEPTHS,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[int, float]]:
    """Return {"INT"|"FP"|"ALL": {depth: IPC relative to BIG}}."""
    benchmarks = list(
        benchmarks or (INT_BENCHMARKS + FP_BENCHMARKS)
    )
    big = model_config("BIG")
    configs = [big] + [depth_config(d) for d in depths]
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    # Depth-series geomeans need every depth on every program: drop
    # benchmarks with quarantined jobs (the sweep's explicit gaps).
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed at every depth; nothing to "
            "aggregate (see the failure summary)")
    int_set = [b for b in benchmarks if b in INT_BENCHMARKS]
    fp_set = [b for b in benchmarks if b in FP_BENCHMARKS]
    base = {
        bench: run_benchmark(big, bench, measure, warmup).ipc
        for bench in benchmarks
    }
    results: Dict[str, Dict[int, float]] = {
        "INT": {}, "FP": {}, "ALL": {}
    }
    for depth in depths:
        config = depth_config(depth)
        rel = {
            bench: run_benchmark(config, bench, measure, warmup).ipc
            / base[bench]
            for bench in benchmarks
        }
        if int_set:
            results["INT"][depth] = geomean([rel[b] for b in int_set])
        if fp_set:
            results["FP"][depth] = geomean([rel[b] for b in fp_set])
        results["ALL"][depth] = geomean(list(rel.values()))
    return results


def format_table(results: Dict[str, Dict[int, float]]) -> str:
    depths = sorted(results["ALL"])
    lines = ["Figure 13: IPC relative to BIG vs IXU depth",
             f"{'depth':6s}" + "".join(f"{d:>8d}" for d in depths)]
    for group in ("INT", "ALL", "FP"):
        if not results.get(group):
            continue
        cells = "".join(f"{results[group][d]:8.3f}" for d in depths)
        lines.append(f"{group:6s}{cells}")
    return "\n".join(lines)


def format_chart(results: Dict[str, Dict[int, float]]) -> str:
    """Line-table of the relative-IPC series."""
    from repro.experiments.textchart import series_chart

    return series_chart(results, title="Figure 13 (IPC vs BIG)")


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

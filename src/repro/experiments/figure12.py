"""Figure 12: fraction of instructions executed in the IXU vs its depth.

HALF+FX with the IXU depth swept from 1 to 6 stages (3 FUs per stage,
full bypass — Section VI-H2 disables the Section III-A2 optimisation).
The paper reads 35 % at one stage and 54 % at three (61 % INT / 51 % FP).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core import IXUConfig
from repro.core.presets import half_fx_config
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    complete_subset,
    geomean,
    prefetch,
    run_benchmark,
)
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS

DEPTHS = (1, 2, 3, 4, 5, 6)


def depth_config(depth: int):
    """HALF+FX with an unoptimised depth-stage IXU."""
    ixu = IXUConfig(stage_fus=(3,) * depth, bypass_stage_limit=None)
    return replace(half_fx_config(ixu), name=f"HALF+FX/depth{depth}")


def run(
    benchmarks: Optional[Sequence[str]] = None,
    depths: Sequence[int] = DEPTHS,
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> Dict[str, Dict[int, float]]:
    """Return {"INT"|"FP"|"ALL": {depth: executed-in-IXU rate}}."""
    benchmarks = list(
        benchmarks or (INT_BENCHMARKS + FP_BENCHMARKS)
    )
    configs = [depth_config(d) for d in depths]
    prefetch([(c, b) for c in configs for b in benchmarks],
             measure=measure, warmup=warmup)
    # Depth-series geomeans need every depth on every program: drop
    # benchmarks with quarantined jobs (the sweep's explicit gaps).
    benchmarks = complete_subset(configs, benchmarks,
                                 measure=measure, warmup=warmup)
    if not benchmarks:
        raise RuntimeError(
            "no benchmark completed at every depth; nothing to "
            "aggregate (see the failure summary)")
    int_set = [b for b in benchmarks if b in INT_BENCHMARKS]
    fp_set = [b for b in benchmarks if b in FP_BENCHMARKS]
    results: Dict[str, Dict[int, float]] = {
        "INT": {}, "FP": {}, "ALL": {}
    }
    for depth in depths:
        config = depth_config(depth)
        rates = {
            bench: run_benchmark(config, bench, measure, warmup)
            .stats.ixu_executed_rate
            for bench in benchmarks
        }
        if int_set:
            results["INT"][depth] = geomean(
                [max(rates[b], 1e-9) for b in int_set]
            )
        if fp_set:
            results["FP"][depth] = geomean(
                [max(rates[b], 1e-9) for b in fp_set]
            )
        results["ALL"][depth] = geomean(
            [max(rates[b], 1e-9) for b in benchmarks]
        )
    return results


def format_table(results: Dict[str, Dict[int, float]]) -> str:
    depths = sorted(results["ALL"])
    lines = ["Figure 12: executed-instructions rate in the IXU",
             f"{'depth':6s}" + "".join(f"{d:>8d}" for d in depths)]
    for group in ("INT", "ALL", "FP"):
        if not results.get(group):
            continue
        cells = "".join(f"{results[group][d]:8.3f}" for d in depths)
        lines.append(f"{group:6s}{cells}")
    return "\n".join(lines)


def format_chart(results: Dict[str, Dict[int, float]]) -> str:
    """Line-table of the executed-rate series."""
    from repro.experiments.textchart import series_chart

    return series_chart(results, title="Figure 12 (IXU executed rate)")


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Simulator-throughput telemetry and the fast-forward perf guard.

The event-driven fast-forward kernel (:mod:`repro.core.kernel`) and the
flat in-flight window were sold on a multiple of raw simulation speed.
This module makes that claim a measured, guarded number instead of a
commit-message anecdote:

* ``python -m repro.experiments.simspeed --json BENCH_simspeed.json``
  measures simulated-instructions-per-second for every core family on
  the telemetry suite and appends one entry (per-pair rates, speedups
  vs the pinned seed rates, per-family aggregates, geomeans) to the
  same style of JSON history that ``--trajectory`` keeps for IPC and
  energy.
* ``--guard MIN`` additionally re-measures the recorded pre-kernel seed
  commit (:data:`SEED_COMMIT`) in a throwaway ``git worktree`` —
  back-to-back with the current tree, in the same process environment —
  and exits :data:`EXIT_SLOWDOWN` when the geomean family speedup on
  the guard suite falls below ``MIN``.  Measuring the baseline live
  makes the guard machine-independent: absolute rates swing by tens of
  percent across hosts and CI runners, ratios of back-to-back runs do
  not.

Measurement protocol (the pinned numbers below use exactly this):
every trace is memoised before any clock starts, each (model,
benchmark) pair simulates :data:`DEFAULT_MEASURE` instructions after a
:data:`DEFAULT_WARMUP`-instruction functional warm-up, and the reported
rate is the best of :data:`DEFAULT_ROUNDS` rounds (best-of-N discards
scheduler noise; means punish the faster tree more).  Both trees are
always measured by the same interpreter via a subprocess with
``PYTHONPATH`` pointed at the tree under test, so import caching or
in-process warm-up cannot favour either side.

The guard suite is the memory-bound column of the telemetry suite
(``mcf`` on all four families): long miss shadows are precisely what
the event-driven kernel exists to skip, so that is where the win is
guarded.  The full-suite geomean (which mixes compute-bound benchmarks
whose ticks cannot be skipped) is reported alongside, unguarded.

Escape hatch: ``REPRO_NO_FASTFORWARD=1`` disables the kernel at core
construction (see EXPERIMENTS.md); CI runs one validation sweep under
it so the serial loop stays correct, not just present.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Exit status of a ``--guard`` breach (3 is the manifest-diff
#: regression exit; keep them distinguishable for CI annotations).
EXIT_SLOWDOWN = 4

#: The commit the speedup is measured against: the tree immediately
#: before the event-driven kernel and the flat-window scheduler landed.
SEED_COMMIT = "30ca0eb905b62bff3f049ae60145456a25740871"

#: Core families × benchmarks of the telemetry suite.  Two compute-
#: bound benchmarks (hmmer, libquantum) and two memory-bound ones
#: (mcf, milc) per family keep both the skippable and the unskippable
#: cost visible.
SUITE_MODELS: Tuple[str, ...] = ("BIG", "HALF+FX", "LITTLE", "CA")
SUITE_BENCHMARKS: Tuple[str, ...] = ("hmmer", "mcf", "libquantum",
                                     "milc")

#: Benchmarks the ``--guard`` geomean is computed over (memory-bound:
#: the kernel's target workload).
GUARD_BENCHMARKS: Tuple[str, ...] = ("mcf",)

DEFAULT_MEASURE = 20_000
DEFAULT_WARMUP = 4_000
DEFAULT_ROUNDS = 3

#: Seed-tree rates (simulated insts/second) recorded from
#: :data:`SEED_COMMIT` under the exact protocol above, measured
#: back-to-back with the kernel tree on the development host.  These
#: anchor the history entries' headline speedup when no live baseline
#: is measured; ``--guard`` never trusts them (it re-measures).
SEED_RATES: Dict[str, float] = {
    "BIG/hmmer": 49753.0,
    "BIG/mcf": 23927.0,
    "BIG/libquantum": 45517.0,
    "BIG/milc": 37709.0,
    "HALF+FX/hmmer": 38171.0,
    "HALF+FX/mcf": 18188.0,
    "HALF+FX/libquantum": 45467.0,
    "HALF+FX/milc": 27173.0,
    "LITTLE/hmmer": 101650.0,
    "LITTLE/mcf": 21556.0,
    "LITTLE/libquantum": 138413.0,
    "LITTLE/milc": 60502.0,
    "CA/hmmer": 38616.0,
    "CA/mcf": 15873.0,
    "CA/libquantum": 33661.0,
    "CA/milc": 28168.0,
}

#: Stand-alone measurement worker run via ``python -c`` against an
#: arbitrary tree (the seed commit predates this module, so the probe
#: cannot live inside ``repro``).  Reads the job spec as its first
#: stdin line, memoises every trace, then runs one full-suite round
#: per subsequent ``go`` line, printing one ``{pair: insts_per_second}``
#: JSON line each time.  Keeping the worker alive between rounds lets
#: the parent interleave rounds across two trees, so host-load drift
#: hits both sides of a speedup ratio equally.
_MEASURE_SCRIPT = r"""
import json, sys, time
spec = json.loads(sys.stdin.readline())
from repro.core import model_config
from repro.experiments.runner import simulate
measure = spec["measure"]
warmup = spec["warmup"]
pairs = [tuple(p) for p in spec["pairs"]]
for _model, bench in pairs:  # memoise every trace before timing
    simulate(model_config("LITTLE"), bench, measure=measure,
             warmup=warmup, seed=0)
configs = {model: model_config(model) for model, _bench in pairs}
for line in sys.stdin:
    if line.strip() != "go":
        break
    rates = {}
    for model, bench in pairs:
        started = time.perf_counter()
        run = simulate(configs[model], bench, measure=measure,
                       warmup=warmup, seed=0)
        elapsed = time.perf_counter() - started
        rates[model + "/" + bench] = run.stats.committed / elapsed
    print(json.dumps(rates), flush=True)
"""


def suite_pairs(
    models: Sequence[str] = SUITE_MODELS,
    benchmarks: Sequence[str] = SUITE_BENCHMARKS,
) -> List[Tuple[str, str]]:
    return [(m, b) for m in models for b in benchmarks]


class _Worker:
    """One live measurement subprocess pinned to a tree."""

    def __init__(self, src_dir: str, spec: Dict):
        self.src_dir = src_dir
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        env.pop("REPRO_NO_FASTFORWARD", None)  # measure what ships
        self.proc = subprocess.Popen(
            [sys.executable, "-c", _MEASURE_SCRIPT],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
            env=env,
        )
        self.proc.stdin.write(json.dumps(spec) + "\n")
        self.proc.stdin.flush()

    def round(self) -> Dict[str, float]:
        self.proc.stdin.write("go\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"measurement subprocess for {self.src_dir} died "
                f"(exit {self.proc.poll()})")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.proc.stdin.close()
            self.proc.wait(timeout=10)
        except Exception:
            self.proc.kill()


def measure_trees(src_dirs: Sequence[str],
                  pairs: Sequence[Tuple[str, str]],
                  measure: int = DEFAULT_MEASURE,
                  warmup: int = DEFAULT_WARMUP,
                  rounds: int = DEFAULT_ROUNDS,
                  ) -> List[Dict[str, float]]:
    """Measure ``{model/bench: insts_per_second}`` for each tree (by
    its ``src`` directory), interleaving rounds across the trees.

    Round ``r`` of every tree runs before round ``r+1`` of any tree,
    so a host-load swing lands on all trees near-symmetrically instead
    of biasing whichever tree was measured last; per-pair best-of-
    ``rounds`` then discards the slow outliers.
    """
    workers = [_Worker(d, {"pairs": [list(p) for p in pairs],
                           "measure": measure, "warmup": warmup})
               for d in src_dirs]
    try:
        best: List[Dict[str, float]] = [{} for _ in workers]
        for _ in range(rounds):
            for index, worker in enumerate(workers):
                for pair, rate in worker.round().items():
                    if rate > best[index].get(pair, 0.0):
                        best[index][pair] = rate
        return best
    finally:
        for worker in workers:
            worker.close()


def measure_tree(src_dir: str, pairs: Sequence[Tuple[str, str]],
                 measure: int = DEFAULT_MEASURE,
                 warmup: int = DEFAULT_WARMUP,
                 rounds: int = DEFAULT_ROUNDS) -> Dict[str, float]:
    """Single-tree convenience wrapper over :func:`measure_trees`."""
    return measure_trees([src_dir], pairs, measure, warmup, rounds)[0]


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def pair_speedups(current: Dict[str, float],
                  baseline: Dict[str, float]) -> Dict[str, float]:
    return {
        pair: current[pair] / baseline[pair]
        for pair in current
        if baseline.get(pair)
    }


def family_speedups(
    current: Dict[str, float], baseline: Dict[str, float],
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Aggregate per-family speedups: total instructions over total
    time (the harmonic combination — each pair simulates the same
    instruction count, so summed reciprocal rates are summed times)."""
    times: Dict[str, List[float]] = {}
    for pair, rate in current.items():
        model, bench = pair.split("/", 1)
        if benchmarks is not None and bench not in benchmarks:
            continue
        base = baseline.get(pair)
        if not base:
            continue
        row = times.setdefault(model, [0.0, 0.0])
        row[0] += 1.0 / base
        row[1] += 1.0 / rate
    return {
        model: base_time / cur_time
        for model, (base_time, cur_time) in sorted(times.items())
        if cur_time > 0
    }


class seed_worktree:
    """Context manager: check ``commit`` out as a throwaway git
    worktree and yield its path (removed on exit)."""

    def __init__(self, repo_root: str, commit: str = SEED_COMMIT):
        self.repo_root = repo_root
        self.commit = commit
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self.path: Optional[str] = None

    def __enter__(self) -> str:
        self._tmp = tempfile.TemporaryDirectory(prefix="simspeed-seed-")
        self.path = os.path.join(self._tmp.name, "tree")
        proc = subprocess.run(
            ["git", "worktree", "add", "--detach", "--force",
             self.path, self.commit],
            cwd=self.repo_root, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            self._tmp.cleanup()
            raise RuntimeError(
                f"cannot check out seed commit {self.commit[:12]}: "
                f"{proc.stderr.strip()} (shallow clone? fetch with "
                f"full history to run the live guard)")
        return self.path

    def __exit__(self, *_exc) -> None:
        subprocess.run(
            ["git", "worktree", "remove", "--force", self.path],
            cwd=self.repo_root, capture_output=True, text=True,
        )
        if self._tmp is not None:
            self._tmp.cleanup()


def _repo_root() -> str:
    """The repository this installed ``repro`` package came from."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))


def build_entry(rates: Dict[str, float],
                baseline: Dict[str, float],
                baseline_kind: str,
                measure: int, warmup: int, rounds: int,
                wall_seconds: float) -> Dict:
    """One BENCH_simspeed.json history entry (same provenance fields
    as the ``--trajectory`` history so both plot the same way)."""
    import platform

    import repro
    from repro.experiments.diskcache import code_version

    pairs = pair_speedups(rates, baseline)
    families = family_speedups(rates, baseline)
    guard_families = family_speedups(rates, baseline,
                                     benchmarks=GUARD_BENCHMARKS)
    return {
        "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "code_version": code_version(),
        "repro_version": repro.__version__,
        "host": platform.node(),
        "measure": measure,
        "warmup": warmup,
        "rounds": rounds,
        "wall_seconds": wall_seconds,
        "baseline": baseline_kind,
        "rates": {k: round(v, 1) for k, v in sorted(rates.items())},
        "baseline_rates": {k: round(v, 1)
                           for k, v in sorted(baseline.items())},
        "speedups": {k: round(v, 4) for k, v in sorted(pairs.items())},
        "family_speedups": {k: round(v, 4)
                            for k, v in families.items()},
        "geomean_speedup": round(geomean(families.values()), 4),
        "guard_benchmarks": list(GUARD_BENCHMARKS),
        "guard_family_speedups": {k: round(v, 4)
                                  for k, v in guard_families.items()},
        "guard_geomean_speedup": round(geomean(
            guard_families.values()), 4),
    }


def format_report(entry: Dict) -> str:
    lines = [
        f"simulator throughput ({entry['measure']} insts/run, "
        f"best of {entry['rounds']}; baseline: {entry['baseline']})",
        f"{'pair':>20s} {'insts/s':>10s} {'seed':>10s} {'speedup':>8s}",
    ]
    for pair, rate in entry["rates"].items():
        base = entry["baseline_rates"].get(pair, 0.0)
        speedup = entry["speedups"].get(pair, 0.0)
        lines.append(f"{pair:>20s} {rate:10.0f} {base:10.0f} "
                     f"{speedup:7.2f}x")
    fams = "  ".join(f"{m} {s:.2f}x"
                     for m, s in entry["family_speedups"].items())
    lines.append(f"family aggregates: {fams}")
    lines.append(
        f"geomean speedup: {entry['geomean_speedup']:.2f}x (full "
        f"suite), {entry['guard_geomean_speedup']:.2f}x (guard suite: "
        f"{', '.join(entry['guard_benchmarks'])})")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.simspeed",
        description="Measure simulated-instructions-per-second and "
                    "guard the fast-forward kernel's speedup.")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="Append the measurement entry to this JSON history "
             "(e.g. BENCH_simspeed.json).")
    parser.add_argument(
        "--guard", type=float, default=None, metavar="MIN",
        help="Re-measure the recorded seed commit live (git worktree) "
             f"and exit {EXIT_SLOWDOWN} if the guard-suite geomean "
             "family speedup is below MIN.")
    parser.add_argument(
        "--pinned", action="store_true",
        help="Use the pinned seed rates as the --guard baseline "
             "instead of a live seed checkout (for trees without git "
             "history; machine-dependent, prefer the default).")
    parser.add_argument("--measure", type=int, default=DEFAULT_MEASURE,
                        help=f"Instructions per timed run "
                             f"(default {DEFAULT_MEASURE}).")
    parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                        help=f"Functional warm-up instructions "
                             f"(default {DEFAULT_WARMUP}).")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help=f"Timed rounds per pair; the best one "
                             f"counts (default {DEFAULT_ROUNDS}).")
    parser.add_argument("--seed-commit", default=SEED_COMMIT,
                        help="Baseline commit for the live guard.")
    args = parser.parse_args(argv)
    if args.measure < 1 or args.warmup < 0 or args.rounds < 1:
        parser.error("--measure/--rounds must be >= 1, --warmup >= 0")
    if args.guard is not None and args.guard <= 0:
        parser.error("--guard must be positive")

    pairs = suite_pairs()
    root = _repo_root()
    started = time.time()
    live_baseline: Optional[Dict[str, float]] = None
    if args.guard is not None and not args.pinned:
        # Both trees measured by live workers in interleaved rounds:
        # host-load drift lands on seed and current symmetrically, so
        # the speedup ratio stays stable even on a busy machine.
        with seed_worktree(root, args.seed_commit) as seed_path:
            live_baseline, rates = measure_trees(
                [os.path.join(seed_path, "src"),
                 os.path.join(root, "src")],
                pairs, args.measure, args.warmup, args.rounds)
    else:
        rates = measure_tree(os.path.join(root, "src"), pairs,
                             args.measure, args.warmup, args.rounds)
    baseline = live_baseline if live_baseline is not None else SEED_RATES
    baseline_kind = (f"live:{args.seed_commit[:12]}"
                     if live_baseline is not None else "pinned")
    entry = build_entry(rates, baseline, baseline_kind,
                        args.measure, args.warmup, args.rounds,
                        time.time() - started)
    print(format_report(entry))
    if args.json:
        from repro.obs.diffrun import append_history_entry

        append_history_entry(entry, args.json)
        print(f"simspeed entry appended to {args.json}")
    if args.guard is not None:
        achieved = entry["guard_geomean_speedup"]
        if achieved < args.guard:
            print(f"SIMSPEED GUARD FAILED: guard-suite geomean "
                  f"{achieved:.2f}x < required {args.guard:.2f}x "
                  f"(baseline {baseline_kind})")
            return EXIT_SLOWDOWN
        print(f"simspeed guard OK: {achieved:.2f}x >= "
              f"{args.guard:.2f}x (baseline {baseline_kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Exact Pareto-frontier utilities for the design-space autotuner.

All helpers operate on *maximisation-normalised* objective vectors: the
caller negates any objective it wants minimised (the autotuner plots
IPC against energy/instruction and an area proxy, so it passes
``(ipc, -energy_per_instruction, -area)``).  Everything here is exact
set arithmetic — no epsilon tolerances, no sampling — which is what
lets the invariant gauntlet assert frontier membership bit-for-bit.

Tie semantics: a point dominates another only if it is at least as good
on *every* objective and strictly better on at least one.  Two points
with identical vectors therefore dominate neither each other nor
themselves, so exact duplicates of a frontier point are all frontier
members.  Every function preserves input order (returned indices are
strictly ascending), so results are stable under re-runs and safe to
diff byte-for-byte.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if ``a`` Pareto-dominates ``b`` (maximising every entry).

    Requires ``a`` to be >= ``b`` everywhere and > somewhere; identical
    vectors dominate neither way.  Vectors must have equal length.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    better = False
    for x, y in zip(a, b):
        if x < y:
            return False
        if x > y:
            better = True
    return better


def pareto_front_indices(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Exact and duplicate-friendly: a point appears on the front unless
    some other point strictly dominates it, so ties and exact
    duplicates of a frontier point are all kept.  O(n^2) comparisons —
    fine for the few thousand configs a sweep screens.
    """
    front: List[int] = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(vectors) if j != i
        ):
            front.append(i)
    return front


def pareto_ranks(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Non-dominated sorting: rank 0 is the Pareto front, rank 1 the
    front of what remains, and so on (NSGA-II style fast sort).

    The successive-halving promoter orders configs by
    ``(rank, tiebreak)``; ranks are deterministic functions of the
    vectors alone.
    """
    n = len(vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(vectors[i], vectors[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(vectors[j], vectors[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    ranks = [0] * n
    current = [i for i in range(n) if domination_count[i] == 0]
    rank = 0
    while current:
        next_front: List[int] = []
        for i in current:
            ranks[i] = rank
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current = sorted(next_front)
        rank += 1
    return ranks


def dominated_by_some(
    vector: Sequence[float], pool: Sequence[Sequence[float]]
) -> bool:
    """True if any vector in ``pool`` strictly dominates ``vector``.

    The invariant checkers use this to prove every pruned config is
    dominated by a survivor of the rung that pruned it.
    """
    return any(dominates(other, vector) for other in pool)


__all__ = [
    "Vector",
    "dominates",
    "dominated_by_some",
    "pareto_front_indices",
    "pareto_ranks",
]

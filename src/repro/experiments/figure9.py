"""Figure 9: circuit area relative to BIG.

9a shows whole-processor areas per model; 9b zooms into the small units
(L1I, FUs, RAT, IXU, (P)RF, LSQ, IQ).  Purely analytical — no simulation.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core import model_config, MODEL_NAMES
from repro.energy import AreaModel, Component

#: The units Figure 9b zooms into.
ZOOM_COMPONENTS = (
    Component.L1I, Component.FUS, Component.RAT, Component.IXU,
    Component.PRF, Component.LSQ, Component.IQ,
)


def run(models: Sequence[str] = MODEL_NAMES) -> Dict[str, Dict]:
    """Return per-model component areas relative to BIG's total."""
    big_total = AreaModel(model_config("BIG")).total()
    figure9a = {}
    figure9b = {}
    for model in models:
        breakdown = AreaModel(model_config(model)).breakdown()
        figure9a[model] = {
            component.value: area / big_total
            for component, area in breakdown.items()
        }
        figure9b[model] = {
            component.value: breakdown[component] / big_total
            for component in ZOOM_COMPONENTS
        }
    return {"figure9a": figure9a, "figure9b": figure9b}


def format_table(results: Dict[str, Dict]) -> str:
    lines = ["Figure 9a: area relative to BIG (whole processor)"]
    figure9a = results["figure9a"]
    models = list(figure9a)
    components = list(next(iter(figure9a.values())))
    lines.append(f"{'component':10s}"
                 + "".join(f"{m:>10s}" for m in models))
    for component in components:
        cells = "".join(f"{figure9a[m][component]:10.4f}"
                        for m in models)
        lines.append(f"{component:10s}{cells}")
    totals = "".join(
        f"{sum(figure9a[m].values()):10.4f}" for m in models
    )
    lines.append(f"{'TOTAL':10s}{totals}")
    lines.append("")
    lines.append("Figure 9b: area relative to BIG (FUs to IQ zoom)")
    figure9b = results["figure9b"]
    lines.append(f"{'component':10s}"
                 + "".join(f"{m:>10s}" for m in models))
    for component in next(iter(figure9b.values())):
        cells = "".join(f"{figure9b[m][component]:10.4f}"
                        for m in models)
        lines.append(f"{component:10s}{cells}")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Micro-ISA used by the simulator.

The paper evaluates an Alpha-binary workload on a cycle-accurate simulator.
This package defines the Alpha-like abstract ISA the reproduction simulates:
operation classes with latencies and functional-unit requirements, the
logical register namespace, and the dynamic-instruction record that traces
are made of.
"""

from repro.isa.opclass import (
    FUType,
    OpClass,
    LATENCY,
    FU_FOR_OPCLASS,
    is_branch,
    is_fp,
    is_mem,
)
from repro.isa.registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    RegClass,
    Reg,
    int_reg,
    fp_reg,
    ZERO_REG,
)
from repro.isa.instruction import DynInst

__all__ = [
    "FUType",
    "OpClass",
    "LATENCY",
    "FU_FOR_OPCLASS",
    "is_branch",
    "is_fp",
    "is_mem",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "RegClass",
    "Reg",
    "int_reg",
    "fp_reg",
    "ZERO_REG",
    "DynInst",
]

"""Logical register namespace.

The Alpha ISA has 32 integer and 32 FP registers; register 31 of each file
reads as zero and writes to it are discarded.  We model registers as small
immutable value objects so that generators and the renamer cannot confuse
the two classes.
"""

from __future__ import annotations

import enum

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Index of the hard-wired zero register within each class.
ZERO_INDEX = 31


class RegClass(enum.Enum):
    """Architectural register file a logical register belongs to."""

    INT = "int"
    FP = "fp"

    # Members are singletons; identity hash avoids delegating to
    # ``str.__hash__`` in the renamer/PRF dict lookups.
    __hash__ = object.__hash__


class Reg:
    """A logical (architectural) register.

    Registers are hot dictionary keys (RAT maps, scoreboards, the
    in-order core's readiness table), so equality keeps an identity
    fast path and the hash is precomputed to a small int — with the
    interned instances from :func:`int_reg` / :func:`fp_reg`, CPython's
    dict probe resolves on identity without ever calling ``__eq__``.
    """

    __slots__ = ("cls", "index", "flat")

    def __init__(self, cls: RegClass, index: int):
        limit = NUM_INT_REGS if cls is RegClass.INT else NUM_FP_REGS
        if not 0 <= index < limit:
            raise ValueError(
                f"register index {index} out of range for {cls}"
            )
        self.cls = cls
        self.index = index
        # Dense index across both classes (INT 0..31, FP 32..63): used
        # as the hash and as a direct subscript into flat per-register
        # state tables (e.g. the in-order core's readiness array).
        self.flat = index + (NUM_INT_REGS if cls is RegClass.FP else 0)

    def __hash__(self) -> int:
        return self.flat

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is Reg:
            return self.index == other.index and self.cls is other.cls
        return NotImplemented

    @property
    def is_zero(self) -> bool:
        """True when this is the hard-wired zero register (r31/f31)."""
        return self.index == ZERO_INDEX

    def __repr__(self) -> str:
        prefix = "r" if self.cls is RegClass.INT else "f"
        return f"{prefix}{self.index}"


#: Interned instances: one object per architectural register, so the
#: identity fast paths in ``__eq__`` and dict lookups always hit.
_INT_REGS = tuple(Reg(RegClass.INT, i) for i in range(NUM_INT_REGS))
_FP_REGS = tuple(Reg(RegClass.FP, i) for i in range(NUM_FP_REGS))


def int_reg(index: int) -> Reg:
    """Build an integer logical register."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(
            f"register index {index} out of range for {RegClass.INT}"
        )
    return _INT_REGS[index]


def fp_reg(index: int) -> Reg:
    """Build a floating-point logical register."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(
            f"register index {index} out of range for {RegClass.FP}"
        )
    return _FP_REGS[index]


#: Canonical integer zero register (Alpha r31).
ZERO_REG = int_reg(ZERO_INDEX)

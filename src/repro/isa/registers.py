"""Logical register namespace.

The Alpha ISA has 32 integer and 32 FP registers; register 31 of each file
reads as zero and writes to it are discarded.  We model registers as small
immutable value objects so that generators and the renamer cannot confuse
the two classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Index of the hard-wired zero register within each class.
ZERO_INDEX = 31


class RegClass(enum.Enum):
    """Architectural register file a logical register belongs to."""

    INT = "int"
    FP = "fp"

    # Members are singletons; identity hash avoids delegating to
    # ``str.__hash__`` in the renamer/PRF dict lookups.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class Reg:
    """A logical (architectural) register."""

    cls: RegClass
    index: int

    def __post_init__(self) -> None:
        limit = NUM_INT_REGS if self.cls is RegClass.INT else NUM_FP_REGS
        if not 0 <= self.index < limit:
            raise ValueError(
                f"register index {self.index} out of range for {self.cls}"
            )

    @property
    def is_zero(self) -> bool:
        """True when this is the hard-wired zero register (r31/f31)."""
        return self.index == ZERO_INDEX

    def __repr__(self) -> str:
        prefix = "r" if self.cls is RegClass.INT else "f"
        return f"{prefix}{self.index}"


def int_reg(index: int) -> Reg:
    """Build an integer logical register."""
    return Reg(RegClass.INT, index)


def fp_reg(index: int) -> Reg:
    """Build a floating-point logical register."""
    return Reg(RegClass.FP, index)


#: Canonical integer zero register (Alpha r31).
ZERO_REG = int_reg(ZERO_INDEX)

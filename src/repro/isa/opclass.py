"""Operation classes, execution latencies and functional-unit requirements.

The paper's workloads are Alpha binaries; instructions fall into the usual
classes: simple integer ALU operations (logical/add-sub/shift), integer
multiply/divide, floating-point arithmetic, loads, stores, and branches.
The IXU executes integer, branch and (port-permitting) memory operations;
it deliberately has no FP units (paper Section II-D2).
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Dynamic-instruction operation class."""

    INT_ALU = "int_alu"      # add/sub/logical/shift/compare, 1-cycle
    MOV = "mov"              # register move (RENO-eliminable)
    INT_MUL = "int_mul"      # integer multiply
    INT_DIV = "int_div"      # integer divide (unpipelined in real cores)
    FP_ADD = "fp_add"        # FP add/sub/convert
    FP_MUL = "fp_mul"        # FP multiply
    FP_DIV = "fp_div"        # FP divide/sqrt
    LOAD = "load"            # integer load
    STORE = "store"          # integer store
    FP_LOAD = "fp_load"      # FP load
    FP_STORE = "fp_store"    # FP store
    BR_COND = "br_cond"      # conditional branch
    BR_UNCOND = "br_uncond"  # unconditional direct branch/jump
    CALL = "call"            # direct call (pushes RAS)
    RET = "ret"              # return (pops RAS)
    NOP = "nop"              # no-op

    # Identity hashing: enum members are singletons, so hashing the id is
    # equivalent to hashing the (str) value but skips the delegated
    # ``str.__hash__`` — these members key the simulator's hottest dict
    # and frozenset lookups.
    __hash__ = object.__hash__


class FUType(enum.Enum):
    """Functional-unit pools; Table I gives per-model counts (int, mem, fp)."""

    INT = "int"
    MEM = "mem"
    FP = "fp"

    __hash__ = object.__hash__


#: Execution latency in cycles once issued to a functional unit.  Loads add
#: the memory-hierarchy latency on top of the 1-cycle address generation.
LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.MOV: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 16,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.FP_LOAD: 1,
    OpClass.FP_STORE: 1,
    OpClass.BR_COND: 1,
    OpClass.BR_UNCOND: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
    OpClass.NOP: 1,
}

#: Which FU pool each op class issues to.
FU_FOR_OPCLASS = {
    OpClass.INT_ALU: FUType.INT,
    OpClass.MOV: FUType.INT,
    OpClass.INT_MUL: FUType.INT,
    OpClass.INT_DIV: FUType.INT,
    OpClass.FP_ADD: FUType.FP,
    OpClass.FP_MUL: FUType.FP,
    OpClass.FP_DIV: FUType.FP,
    OpClass.LOAD: FUType.MEM,
    OpClass.STORE: FUType.MEM,
    OpClass.FP_LOAD: FUType.MEM,
    OpClass.FP_STORE: FUType.MEM,
    OpClass.BR_COND: FUType.INT,
    OpClass.BR_UNCOND: FUType.INT,
    OpClass.CALL: FUType.INT,
    OpClass.RET: FUType.INT,
    OpClass.NOP: FUType.INT,
}

_BRANCHES = frozenset(
    {OpClass.BR_COND, OpClass.BR_UNCOND, OpClass.CALL, OpClass.RET}
)
_FP_OPS = frozenset({OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV})
_MEM_OPS = frozenset(
    {OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.FP_STORE}
)
_LOADS = frozenset({OpClass.LOAD, OpClass.FP_LOAD})
_STORES = frozenset({OpClass.STORE, OpClass.FP_STORE})

#: Op classes the IXU can execute.  The IXU's FUs are simple 1-cycle
#: integer units — adder, shifter, logic (paper Figure 6) — so integer
#: multiply/divide are excluded along with FP arithmetic (no FP units in
#: the IXU, Section II-D2).  FP loads/stores are address generation on
#: the memory port and are eligible subject to port arbitration.
IXU_ELIGIBLE = frozenset(
    {
        OpClass.INT_ALU,
        OpClass.MOV,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.FP_LOAD,
        OpClass.FP_STORE,
        OpClass.BR_COND,
        OpClass.BR_UNCOND,
        OpClass.CALL,
        OpClass.RET,
        OpClass.NOP,
    }
)

#: "INT operations" in the paper's Section VI-C sense: logical, add/sub,
#: shift and branch instructions, excluding loads/stores.
INT_OPERATIONS = frozenset(
    {
        OpClass.INT_ALU,
        OpClass.MOV,
        OpClass.INT_MUL,
        OpClass.INT_DIV,
        OpClass.BR_COND,
        OpClass.BR_UNCOND,
        OpClass.CALL,
        OpClass.RET,
    }
)


def is_branch(op: OpClass) -> bool:
    """Return True for any control-transfer op class."""
    return op in _BRANCHES


def is_fp(op: OpClass) -> bool:
    """Return True for FP *arithmetic* (not FP loads/stores)."""
    return op in _FP_OPS


def is_mem(op: OpClass) -> bool:
    """Return True for loads and stores of either register class."""
    return op in _MEM_OPS


def is_load(op: OpClass) -> bool:
    """Return True for integer and FP loads."""
    return op in _LOADS


def is_store(op: OpClass) -> bool:
    """Return True for integer and FP stores."""
    return op in _STORES

"""Dynamic instruction record — the unit of a simulation trace.

The simulator is trace-driven: the workload generator produces a stream of
``DynInst`` records carrying everything the timing model needs (op class,
register operands, memory address, branch outcome).  The cores annotate a
*shadow* of per-instruction pipeline state elsewhere; the trace record
itself stays immutable so a trace can be replayed across models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opclass import (
    FU_FOR_OPCLASS,
    FUType,
    IXU_ELIGIBLE,
    LATENCY,
    OpClass,
    is_branch,
    is_load,
    is_mem,
    is_store,
)
from repro.isa.registers import Reg


@dataclass(frozen=True, slots=True)
class DynInst:
    """One dynamic instruction as it appears in a trace.

    Attributes:
        seq: Position in the dynamic instruction stream (0-based).
        pc: Instruction address; repeated PCs let predictors train.
        op: Operation class.
        dest: Destination logical register, or None.
        srcs: Source logical registers (zero registers are pre-filtered
            by the generator and never appear here).
        mem_addr: Effective address for loads/stores, else None.
        mem_size: Access size in bytes for loads/stores, else 0.
        taken: Branch outcome for control instructions, else False.
        target: Branch target address when taken, else None.
        is_branch/is_mem/is_load/is_store: Op-class category flags,
            precomputed at construction — the cores test them every
            cycle for every in-flight instruction.
    """

    seq: int
    pc: int
    op: OpClass
    dest: Optional[Reg] = None
    srcs: Tuple[Reg, ...] = field(default=())
    mem_addr: Optional[int] = None
    mem_size: int = 0
    taken: bool = False
    target: Optional[int] = None
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    fu_type: "FUType" = field(init=False, repr=False, compare=False)
    latency: int = field(init=False, repr=False, compare=False)
    ixu_eligible: bool = field(init=False, repr=False, compare=False)
    src_flats: Tuple[int, ...] = field(init=False, repr=False,
                                       compare=False)
    dest_flat: Optional[int] = field(init=False, repr=False,
                                     compare=False)

    def __post_init__(self) -> None:
        mem = is_mem(self.op)
        if mem and self.mem_addr is None:
            raise ValueError(f"{self.op} requires a memory address")
        if not mem and self.mem_addr is not None:
            raise ValueError(f"{self.op} must not carry a memory address")
        if self.taken and self.target is None:
            raise ValueError("taken branch requires a target")
        set_attr = object.__setattr__
        set_attr(self, "is_branch", is_branch(self.op))
        set_attr(self, "is_mem", mem)
        set_attr(self, "is_load", is_load(self.op))
        set_attr(self, "is_store", is_store(self.op))
        # FU routing and base execution latency are pure functions of
        # the op class; traces are memoised across runs, so resolving
        # them here removes two dict lookups per issue attempt.
        set_attr(self, "fu_type", FU_FOR_OPCLASS[self.op])
        set_attr(self, "latency", LATENCY[self.op])
        set_attr(self, "ixu_eligible", self.op in IXU_ELIGIBLE)
        # Dense cross-class register indices (see Reg.flat): the
        # in-order core's readiness table is subscripted with these on
        # every issue attempt.
        set_attr(self, "src_flats", tuple(s.flat for s in self.srcs))
        set_attr(self, "dest_flat",
                 self.dest.flat if self.dest is not None else None)

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction."""
        return self.pc + 4

    @property
    def next_pc(self) -> int:
        """Address control actually flows to after this instruction."""
        if self.taken and self.target is not None:
            return self.target
        return self.fall_through

    def __repr__(self) -> str:
        operands = ", ".join(repr(s) for s in self.srcs)
        dest = f"{self.dest!r} <- " if self.dest is not None else ""
        extra = ""
        if self.is_mem:
            extra = f" [0x{self.mem_addr:x}]"
        elif self.is_branch:
            extra = f" ({'T' if self.taken else 'NT'})"
        return (
            f"<#{self.seq} pc=0x{self.pc:x} {self.op.value} "
            f"{dest}{operands}{extra}>"
        )

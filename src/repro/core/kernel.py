"""Shared event-driven fast-forward kernel for the four core models.

The per-cycle tick loops burn most of their time on cycles where nothing
can possibly change: long memory-miss shadows, branch-redirect bubbles,
front-end refills.  On such a cycle every pipeline stage re-evaluates a
frozen predicate — the completion heap's head is in the future, every
queue head is not yet due, every issue-queue entry waits on an operand
that arrives with a future completion.  This module lets a core jump
``self.cycle`` straight to the earliest cycle at which any state *can*
change, charging the skipped cycles to exactly the accounting the serial
loop would have produced.

Correctness rests on two facts the cores uphold:

1. **An idle tick touches no counters.**  A tick that commits, issues,
   dispatches, renames and fetches nothing — and processes no
   completions — leaves every energy/event counter, every queue, and
   every stall-attribution input untouched.  The cores detect this with
   cheap per-stage activity returns; only then do they fast-forward.
2. **The event horizon is conservative.**  ``_event_horizon`` returns a
   cycle no later than the first cycle at which any stage could act:
   the completion heap's head, the fetch-redirect resume cycle, the
   outstanding refill, each front-end queue head's due cycle, and the
   issue window's earliest wakeup.  Extra thresholds only shorten the
   jump, so being conservative is always safe.

The jump is bounded by the deadlock detector's trip point and by
``max_cycles`` so error cycles and truncated runs stay bit-identical to
the serial loop.  Skipped-cycle accounting replays occupancy samples,
stall attribution and timeline accumulation in bulk; an attached
validator is replayed cycle-by-cycle to preserve its periodic-audit
cadence (validated runs trade most of the speedup for full checking).

Escape hatch: ``REPRO_NO_FASTFORWARD=1`` in the environment disables
fast-forwarding at core construction, restoring the serial loop (the
equivalence suite and CI exercise both paths).
"""

from __future__ import annotations

import os

#: Abort the run when commit makes no progress for this many cycles.
DEADLOCK_LIMIT = 20_000

#: Horizon sentinel: no future event is scheduled.  Strictly greater
#: than :data:`repro.rename.prf.NEVER` so an unscheduled producer never
#: masquerades as an event.
NO_EVENT = 1 << 62


def fastforward_enabled() -> bool:
    """Read the escape hatch (sampled once, at core construction)."""
    return os.environ.get("REPRO_NO_FASTFORWARD", "") in ("", "0")


def advance(core, progress_cycle: int) -> None:
    """Jump ``core.cycle`` forward to the core's event horizon.

    Called at the end of an idle ``_tick`` (after the cycle increment).
    ``progress_cycle`` is the core's last forward-progress cycle; the
    jump never passes the cycle at which the run loop's deadlock check
    would trip, nor ``core._max_cycles``, so both fire at the exact
    cycle the serial loop would report.
    """
    target = core._event_horizon()
    limit = progress_cycle + DEADLOCK_LIMIT + 1
    if target > limit:
        target = limit
    max_cycles = core._max_cycles
    if max_cycles is not None and target > max_cycles:
        target = max_cycles
    cycle = core.cycle
    skipped = target - cycle
    if skipped <= 0:
        return
    core._ff_skipped += skipped
    # Bulk accounting for the skipped cycles, in the serial tick's
    # order: occupancy sample, observability hook, validator hook.
    iq = getattr(core, "iq", None)
    if iq is not None:
        iq.sample_occupancy_many(skipped)
    obs = core._obs
    if obs is not None:
        obs.on_cycles(core, skipped)
    validator = core._validator
    if validator is not None:
        # Replayed per cycle: the validator's periodic audits key on
        # ``core.cycle % audit_interval`` and must keep their cadence.
        for replay_cycle in range(cycle, target):
            core.cycle = replay_cycle
            validator.on_cycle(core, 0)
    core.cycle = target

"""Cycle-level in-order superscalar core (the LITTLE model).

A dual-issue, scoreboarded in-order pipeline after Cortex-A53: no rename,
no issue queue, no load/store queue — which is precisely why its energy
per instruction is the lowest of all models (paper Section VI-I).  Issue
stalls at the oldest not-ready instruction; a small store buffer provides
store-to-load forwarding (memory ordering is trivially maintained because
memory operations issue in program order).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.backend import BypassNetwork, FUPool
from repro.branch import BranchPredictor
from repro.core.config import CoreConfig
from repro.core.inflight import InFlight
from repro.core.stats import CoreStats, EventCounts
from repro.isa.instruction import DynInst
from repro.isa.opclass import FUType, FU_FOR_OPCLASS, LATENCY, OpClass
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, Reg
from repro.mem.hierarchy import CacheHierarchy

from repro.core import kernel
from repro.core.kernel import NO_EVENT
from repro.core.ooo import (
    DEADLOCK_LIMIT,
    SimulationError,
    _TOPDOWN_LEAVES,
    memory_bound_leaf,
)

#: Store-buffer entries kept for forwarding.
STORE_BUFFER_DEPTH = 8

#: 1-cycle integer ops the late-ALU slot may dual-issue.
_SIMPLE_INT = frozenset(
    {OpClass.INT_ALU, OpClass.BR_COND, OpClass.BR_UNCOND}
)

#: FP arithmetic classes counted at commit (not FP loads/stores).
_FP_ARITH = frozenset({OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV})


class InOrderCore:
    """In-order superscalar (LITTLE of Table I)."""

    def __init__(self, config: CoreConfig, obs=None, validator=None):
        if config.core_type != "inorder":
            raise ValueError("InOrderCore requires an 'inorder' config")
        self.config = config
        self.predictor = BranchPredictor(
            pht_entries=config.pht_entries,
            btb_entries=config.btb_entries,
            ras_depth=config.ras_depth,
            kind=config.predictor_kind,
        )
        self.hierarchy = CacheHierarchy(config.hierarchy)
        self.fu = {
            FUType.INT: FUPool(FUType.INT, config.fu_int),
            FUType.MEM: FUPool(FUType.MEM, config.fu_mem),
            FUType.FP: FUPool(FUType.FP, config.fu_fp),
        }
        self.bypass = BypassNetwork("inorder", config.total_oxu_fus)
        self.stats = CoreStats(model=config.name)
        # Fast-forward kernel state (see repro.core.kernel).
        self._ff = kernel.fastforward_enabled()
        self._ff_skipped = 0  # cycles jumped, not ticked
        self._max_cycles: Optional[int] = None
        # Per-tick scratch for early/late ALU pairing, holding flat
        # register indices (cleared, never reallocated, in _issue).
        self._early_results: set = set()
        # Architectural register readiness (no renaming), one slot
        # per register indexed by ``Reg.flat`` (INT 0..31, FP 32..63).
        self._reg_ready: List[int] = (
            [0] * (NUM_INT_REGS + NUM_FP_REGS)
        )
        self._rf_reads = 0
        self._rf_writes = 0
        # Pipeline state.
        self.cycle = 0
        self.trace: List[DynInst] = []
        self.fetch_idx = 0
        self.fetch_resume_cycle = 0
        self.waiting_branch: Optional[InFlight] = None
        self.issue_q: Deque[InFlight] = deque()
        self._completions: List[Tuple[int, int, InFlight]] = []
        self._completion_counter = 0
        self._last_fetched_line = -1
        self._last_issue_cycle = 0
        self._store_buffer: OrderedDict = OrderedDict()
        self._final_cycle = 0
        # Observability (free when obs is None, see repro.obs).
        self._obs = obs
        self._pipeview = obs.pipeview if obs is not None else None
        self._fetch_stall_kind = ""
        # Registers whose pending value is produced by an in-flight
        # load (distinguishes dcache stalls from ALU operand waits).
        self._load_dest: List[bool] = (
            [False] * (NUM_INT_REGS + NUM_FP_REGS)
        )
        # Total latency of the last writer of each register (frozen at
        # execute time): lets the top-down collector classify a
        # load-operand stall by miss level without consulting the
        # remaining wait, which would diverge under fast-forward.
        self._load_wait: List[int] = (
            [0] * (NUM_INT_REGS + NUM_FP_REGS)
        )
        if obs is not None:
            obs.attach(self)
        self._validator = validator
        if validator is not None:
            validator.attach(self)

    # ------------------------------------------------------------------

    def run(self, trace: List[DynInst],
            max_cycles: Optional[int] = None) -> CoreStats:
        """Simulate ``trace`` to completion and return statistics."""
        self.trace = trace
        self._max_cycles = max_cycles  # clamps the fast-forward jump
        trace_len = len(trace)
        while self.fetch_idx < trace_len or self.issue_q:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            self._tick()
            if self.cycle - self._last_issue_cycle > DEADLOCK_LIMIT:
                raise SimulationError(
                    f"{self.config.name}: no issue for {DEADLOCK_LIMIT} "
                    f"cycles at cycle {self.cycle}"
                )
        self.stats.cycles = max(self.cycle, self._final_cycle)
        self._collect_events()
        if self._obs is not None:
            self._obs.finalize(self)
        if self._validator is not None:
            self._validator.finalize(self)
        return self.stats

    def _tick(self) -> None:
        completions = self._completions
        quiet = not completions or completions[0][0] > self.cycle
        if not quiet:
            self._process_completions()
        issued = self._issue()
        fetch_moved = self._fetch()
        if self._obs is not None:
            # In-order issue is commitment: an issued instruction
            # retires, so zero-issue cycles are the stall cycles.
            self._obs.on_cycle(self, issued)
        if self._validator is not None:
            self._validator.on_cycle(self, issued)
        self.cycle += 1
        if self._ff and quiet and not issued and not fetch_moved:
            kernel.advance(self, self._last_issue_cycle)

    # ------------------------------------------------------------------
    # Event horizon (fast-forward kernel)
    # ------------------------------------------------------------------

    def _event_horizon(self) -> int:
        """Earliest future cycle at which any state can change.

        Every future register arrival is also a pending completion, so
        the completion heap alone covers operand waits; the head-of-
        queue thresholds keep the horizon tight on issue-latency and
        redirect bubbles.
        """
        cycle = self.cycle
        horizon = NO_EVENT
        completions = self._completions
        if completions:
            horizon = completions[0][0]
        resume = self.fetch_resume_cycle
        if cycle <= resume < horizon:
            horizon = resume
        fill = self.hierarchy.fill_horizon(cycle)
        if fill is not None and fill < horizon:
            horizon = fill
        if self.issue_q:
            head = self.issue_q[0]
            ready = head.issue_ready
            if ready >= cycle:
                if ready < horizon:
                    horizon = ready
            else:
                # Head is due but blocked on registers: stop at the
                # *earliest* pending arrival (source or WAW dest) so
                # the stall cause's first-pending-source attribution
                # stays constant across the jumped gap.
                reg_ready = self._reg_ready
                inst = head.inst
                for flat in inst.src_flats:
                    arrival = reg_ready[flat]
                    if cycle <= arrival < horizon:
                        horizon = arrival
                dest_flat = inst.dest_flat
                if dest_flat is not None:
                    arrival = reg_ready[dest_flat]
                    if cycle <= arrival < horizon:
                        horizon = arrival
        return horizon

    # ------------------------------------------------------------------
    # Fetch (mirrors the OoO front end at LITTLE's width/depth)
    # ------------------------------------------------------------------

    def _fetch(self) -> bool:
        if self.cycle < self.fetch_resume_cycle:
            return False
        if self.waiting_branch is not None:
            return False
        config = self.config
        trace = self.trace
        trace_len = len(trace)
        issue_q = self.issue_q
        line_bytes = config.hierarchy.line_bytes
        fetch_width = config.fetch_width
        queue_depth = config.frontend_queue_depth
        stats = self.stats
        cycle = self.cycle
        fetch_idx = self.fetch_idx
        issue_lat = config.fetch_to_rename
        fetched = 0
        while (
            fetched < fetch_width
            and fetch_idx < trace_len
            and len(issue_q) < queue_depth
        ):
            inst = trace[fetch_idx]
            line = inst.pc // line_bytes
            if line != self._last_fetched_line:
                result = self.hierarchy.fetch(inst.pc)
                self._last_fetched_line = line
                if not result.l1_hit:
                    self.fetch_idx = fetch_idx
                    stats.fetched += fetched
                    self.fetch_resume_cycle = cycle + result.latency
                    self.hierarchy.note_refill(self.fetch_resume_cycle)
                    self._fetch_stall_kind = "icache"
                    return True
            entry = InFlight(inst, fetch_cycle=cycle)
            entry.issue_ready = cycle + issue_lat
            stop_after = False
            if inst.is_branch:
                stats.branches += 1
                entry.prediction = self.predictor.predict(inst)
                if not entry.prediction.correct_for(inst):
                    if (entry.prediction.taken and inst.taken
                            and entry.prediction.target is None):
                        entry.btb_redirect = True
                        self.stats.btb_redirects += 1
                        self.fetch_resume_cycle = (
                            cycle + config.decode_redirect_latency
                        )
                        self._fetch_stall_kind = "redirect"
                    else:
                        entry.mispredicted = True
                        self.waiting_branch = entry
                    stop_after = True
                elif inst.taken:
                    stop_after = True
            issue_q.append(entry)
            fetch_idx += 1
            fetched += 1
            if stop_after:
                break
        self.fetch_idx = fetch_idx
        stats.fetched += fetched
        return fetched > 0

    # ------------------------------------------------------------------
    # In-order issue
    # ------------------------------------------------------------------

    def _ready(self, reg: Reg, cycle: int) -> bool:
        return self._reg_ready[reg.flat] <= cycle

    def _issue(self) -> int:
        issue_q = self.issue_q
        if not issue_q:
            return 0
        issued = 0
        cycle = self.cycle
        width = self.config.issue_width
        fu = self.fu
        reg_ready = self._reg_ready
        # Early/late ALU pairing (after Cortex-A53): one dependent
        # 1-cycle integer op per cycle may dual-issue behind its
        # producer, executing in the late ALU stage with an
        # early-to-late forward.
        early_results = self._early_results
        early_results.clear()
        late_slot_used = False
        while issue_q and issued < width:
            entry = issue_q[0]
            if entry.issue_ready > cycle:
                break
            inst = entry.inst
            uses_late = False
            stalled = False
            for flat in inst.src_flats:
                if reg_ready[flat] > cycle:
                    # RAW hazard: every pending source must be an early
                    # result forwardable to the late ALU slot.
                    if (late_slot_used or flat not in early_results
                            or inst.op not in _SIMPLE_INT):
                        stalled = True
                        break
                    uses_late = True
            if stalled:
                break  # RAW hazard: stall in order
            # WAW: destination's previous write must have completed.
            dest_flat = inst.dest_flat
            if dest_flat is not None and reg_ready[dest_flat] > cycle:
                break
            if not fu[inst.fu_type].try_issue(inst.op, cycle):
                break
            issue_q.popleft()
            self._rf_reads += len(inst.srcs)
            self._execute(entry, cycle)
            if uses_late:
                late_slot_used = True
            if (inst.op is OpClass.INT_ALU and dest_flat is not None
                    and inst.latency == 1):
                early_results.add(dest_flat)
            issued += 1
            self._last_issue_cycle = cycle
            if inst.is_branch and entry.mispredicted:
                break
        return issued

    def _execute(self, entry: InFlight, cycle: int) -> None:
        inst = entry.inst
        entry.issue_cycle = cycle
        if inst.is_load:
            if inst.mem_addr in self._store_buffer:
                self.stats.forwarded_loads += 1
                latency = 2
            else:
                result = self.hierarchy.load(inst.mem_addr)
                latency = 1 + result.latency
            complete = cycle + latency
        elif inst.is_store:
            self.hierarchy.store(inst.mem_addr)
            self._store_buffer[inst.mem_addr] = inst.seq
            if len(self._store_buffer) > STORE_BUFFER_DEPTH:
                self._store_buffer.popitem(last=False)
            complete = cycle + 1
        else:
            complete = cycle + inst.latency
        entry.complete_cycle = complete
        self._final_cycle = max(self._final_cycle, complete)
        flat = inst.dest_flat
        if flat is not None:
            self._reg_ready[flat] = complete
            self._load_dest[flat] = inst.is_load
            self._load_wait[flat] = complete - cycle
            self._rf_writes += 1
            self.bypass.broadcast()
        self._completion_counter += 1
        heapq.heappush(
            self._completions, (complete, self._completion_counter, entry)
        )
        # Commit accounting: in-order issue means the instruction will
        # retire; count it now and classify.
        if self._validator is not None:
            self._validator.on_commit(self, entry)
        stats = self.stats
        stats.committed += 1
        if inst.is_load:
            stats.committed_loads += 1
        elif inst.is_store:
            stats.committed_stores += 1
        elif inst.is_branch:
            stats.committed_branches += 1
        elif inst.op in _FP_ARITH:
            stats.committed_fp += 1

    # ------------------------------------------------------------------

    def _process_completions(self) -> None:
        pipeview = self._pipeview
        while self._completions and self._completions[0][0] <= self.cycle:
            _, _, entry = heapq.heappop(self._completions)
            entry.done = True
            if pipeview is not None:
                pipeview.record(entry, self.cycle, flushed=False)
            if entry.inst.is_branch:
                self.predictor.resolve(entry.inst, entry.prediction)
                if entry.mispredicted:
                    self.stats.mispredictions += 1
                    # A short in-order pipe flushes little wrong-path work.
                    window = max(
                        0, self.cycle - entry.fetch_cycle
                        - self.config.fetch_to_rename
                    )
                    self.stats.events.wrongpath_ops += (
                        0.25 * self.config.issue_width * window
                    )
                if self.waiting_branch is entry:
                    self.waiting_branch = None
                    self.fetch_resume_cycle = self.cycle + 1

    # ------------------------------------------------------------------
    # Stall attribution (read by repro.obs on zero-issue cycles)
    # ------------------------------------------------------------------

    def _stall_cause(self) -> str:
        """Why did this cycle issue nothing?  One taxonomy cause."""
        entry = self.issue_q[0] if self.issue_q else None
        if entry is not None and entry.issue_ready <= self.cycle:
            cycle = self.cycle
            reg_ready = self._reg_ready
            for flat in entry.inst.src_flats:
                if reg_ready[flat] > cycle:
                    if self._load_dest[flat]:
                        return "dcache_miss"
                    return "operand_wait"
            dest_flat = entry.inst.dest_flat
            if dest_flat is not None and reg_ready[dest_flat] > cycle:
                return "operand_wait"  # WAW on an in-flight writer
            return "other"             # FU structural conflict
        if self.waiting_branch is not None:
            return "branch_recovery"
        if self.cycle < self.fetch_resume_cycle:
            if self._fetch_stall_kind == "icache":
                return "icache_miss"
            return "branch_recovery"
        return "frontend_fill"

    # ------------------------------------------------------------------
    # Top-down slot refinement (read by repro.obs.topdown)
    # ------------------------------------------------------------------

    def _topdown_width(self) -> int:
        """In-order issue == commit, so the slot budget is the issue
        width."""
        return self.config.issue_width

    def _topdown_leaf(self, cause: str) -> str:
        """Flat cause -> slot-tree leaf.  ``dcache_miss`` re-walks the
        head's sources (the same scan ``_stall_cause`` did) and
        classifies the blocking load by its frozen total latency;
        ``other`` on this core is exactly the FU structural-conflict
        path (head ready, operands ready, pool refused)."""
        if cause == "dcache_miss":
            entry = self.issue_q[0] if self.issue_q else None
            if entry is not None:
                cycle = self.cycle
                reg_ready = self._reg_ready
                for flat in entry.inst.src_flats:
                    if reg_ready[flat] > cycle and self._load_dest[flat]:
                        return memory_bound_leaf(
                            self.config.hierarchy,
                            self._load_wait[flat])
            return "backend_bound.memory.l1d_bound"
        if cause == "branch_recovery":
            if (self.waiting_branch is None
                    and self._fetch_stall_kind == "redirect"):
                return "frontend_bound.redirect"
            return "bad_speculation.branch_recovery"
        if cause == "other":
            return "backend_bound.core.fu_port"
        return _TOPDOWN_LEAVES.get(cause, "backend_bound.core.other")

    # ------------------------------------------------------------------

    def snapshot_events(self) -> EventCounts:
        """Fresh :class:`EventCounts` from the live counters (see
        ``OutOfOrderCore.snapshot_events``).  Mid-run the reported
        drain-extended cycle count is not known yet, so ``cycles``
        falls back to the live tick."""
        events = EventCounts()
        events.cycles = self.stats.cycles or self.cycle
        events.wrongpath_ops = self.stats.events.wrongpath_ops
        events.fetched = self.stats.fetched
        events.decoded = self.stats.fetched
        events.prf_reads = self._rf_reads
        events.prf_writes = self._rf_writes
        events.fu_int_ops = self.fu[FUType.INT].executions
        events.fu_mem_ops = self.fu[FUType.MEM].executions
        events.fu_fp_ops = self.fu[FUType.FP].executions
        events.oxu_bypass_broadcasts = self.bypass.broadcasts
        events.predictor_lookups = self.predictor.lookups
        events.btb_lookups = self.predictor.lookups
        l1i, l1d, l2 = (self.hierarchy.l1i, self.hierarchy.l1d,
                        self.hierarchy.l2)
        events.l1i_accesses = l1i.stats.accesses
        events.l1i_misses = l1i.stats.misses
        events.l1d_accesses = l1d.stats.accesses
        events.l1d_misses = l1d.stats.misses
        events.l2_accesses = l2.stats.accesses
        events.l2_misses = l2.stats.misses
        events.mem_accesses = self.hierarchy.mem_accesses
        events.prefetches = self.hierarchy.prefetches
        return events

    def _collect_events(self) -> None:
        self.stats.events = self.snapshot_events()

"""FXA: an out-of-order core with an in-order execution unit (Figure 2).

The FXA pipeline extends the conventional one with, between rename and
dispatch:

1. a **front-end register-read stage** — the PRF scoreboard is read
   first and the PRF only for available values (sequential access,
   Section III-B), which costs one extra pipeline stage;
2. the **IXU stages** — in-order FUs with a bypass network.  An
   instruction executes in the IXU the first cycle all of its operands
   are reachable (captured at register read, or bypassed from an older
   IXU-executed instruction) and a stage FU is free; otherwise it flows
   through as a NOP and dispatches to the issue queue.

Memory operations execute in the IXU only when the OXU leaves a memory
port free that cycle (OXU has priority, Section II-D3); IXU-executed
stores skip the violation search and IXU loads whose older stores have
all executed skip the LSQ write.  Branches resolved in the IXU redirect
fetch from the front end, roughly halving the misprediction penalty;
instructions that fall through to the OXU pay the IXU depth on top of
the baseline penalty (Section IV-B2).

The scoreboard is read twice per instruction (Section III-C): once
before the IXU and again at dispatch, so instructions whose producers
completed in the OXU during their IXU transit enter the IQ marked ready.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.config import CoreConfig
from repro.core.inflight import InFlight
from repro.core.ooo import OutOfOrderCore
from repro.backend import BypassNetwork
from repro.isa.opclass import FUType
from repro.ixu.pipeline import BypassRegistry, StageFUUsage


class FXACore(OutOfOrderCore):
    """Front-end execution architecture (BIG+FX / HALF+FX)."""

    def __init__(self, config: CoreConfig, obs=None, validator=None):
        if config.ixu is None:
            raise ValueError("FXACore requires an IXU configuration")
        super().__init__(config, obs, validator)
        ixu = config.ixu
        self.ixu_config = ixu
        self._track_prf_ports = True  # regread shares OXU read ports
        self.ixu_bypass = BypassNetwork("ixu", ixu.total_fus)
        self._bypass_registry = BypassRegistry(
            depth=ixu.depth, stage_limit=ixu.bypass_stage_limit
        )
        self._stage_usage = StageFUUsage(ixu.stage_fus)
        self._regread_q: Deque[InFlight] = deque()
        self._ixu_pipe: List[InFlight] = []   # program order, pos 0..depth-1
        self._exit_q: Deque[InFlight] = deque()
        self._ixu_exec_count = 0              # includes squashed replays
        self._ixu_mem_exec_count = 0
        self._ixu_bypass_operand_hits = 0     # operands taken off the
        #                                       IXU bypass network

    # ------------------------------------------------------------------
    # Rename plumbing: no IQ reservation; stall on front-end backlog.
    # ------------------------------------------------------------------

    def _iq_slot_available(self, entry: InFlight) -> bool:
        # The IQ is checked at IXU exit; rename stalls only when the
        # register-read stage backs up (i.e. the IXU pipe is stalled).
        return len(self._regread_q) < 2 * self.config.rename_width

    def _after_rename(self, entry: InFlight) -> None:
        entry.dispatch_cycle = self.cycle + 1  # register-read stage
        self._regread_q.append(entry)

    # ------------------------------------------------------------------
    # The dispatch phase runs the whole front-end execution pipeline.
    # ------------------------------------------------------------------

    def _dispatch(self) -> int:
        exit_before = len(self._exit_q)
        stalled = not self._drain_exit_queue()
        active = len(self._exit_q) != exit_before
        if not stalled:
            if self._ixu_pipe:
                self._run_ixu_stages()
                self._advance_pipe()
                active = True
            regread_before = len(self._regread_q)
            self._enter_pipe()
            # Entries entering — or still inside — an unstalled pipe
            # advance next cycle, so the front end is not idle.
            if len(self._regread_q) != regread_before or self._ixu_pipe:
                active = True
        self._bypass_registry.prune(self.cycle)
        return 1 if active else 0

    def _event_horizon(self) -> int:
        horizon = super()._event_horizon()
        cycle = self.cycle
        # IXU front-end queue heads.  A stalled-but-frozen IXU pipe adds
        # no threshold of its own: it unblocks only via an issue-queue
        # drain, which requires a completion the base horizon covers.
        if self._exit_q:
            due = self._exit_q[0].dispatch_cycle
            if cycle <= due < horizon:
                horizon = due
        if self._regread_q:
            due = self._regread_q[0].dispatch_cycle
            if cycle <= due < horizon:
                horizon = due
        return horizon

    def _drain_exit_queue(self) -> bool:
        """Dispatch IXU-exiting instructions; False when the IQ blocks."""
        exit_q = self._exit_q
        if not exit_q:
            return True
        cycle = self.cycle
        iq = self.iq
        scoreboard = self.renamer.scoreboard
        issue_lat = self.config.dispatch_to_issue
        dispatched = 0
        width = self.config.rename_width
        while exit_q and dispatched < width:
            entry = exit_q[0]
            if entry.dispatch_cycle > cycle:
                break
            if entry.squashed:
                exit_q.popleft()
                continue
            if entry.executed_in_ixu:
                exit_q.popleft()
                dispatched += 1
                continue
            if iq.full:
                return False  # structural stall: hold the whole pipe
            exit_q.popleft()
            # Second scoreboard read (Section III-C): operands that became
            # ready in the OXU during IXU transit dispatch as ready.
            for cls, _preg in entry.renamed.srcs:
                scoreboard[cls].reads += 1
            entry.iq_cycle = cycle
            # issue_ready is final before dispatch: the wakeup engine
            # folds it into the entry's wake cycle on registration.
            entry.issue_ready = cycle + issue_lat
            iq.dispatch(entry)
            self._schedule_entry(entry)
            dispatched += 1
        if exit_q and exit_q[0].dispatch_cycle <= cycle:
            return False  # leftovers: pipe holds this cycle
        return True

    def _run_ixu_stages(self) -> None:
        """Attempt execution for every live instruction in the IXU."""
        cycle = self.cycle
        for entry in self._ixu_pipe:
            if (entry.squashed or entry.executed_in_ixu
                    or not entry.ixu_eligible):
                continue
            self._try_ixu_execute(entry, cycle)

    def _try_ixu_execute(self, entry: InFlight, cycle: int) -> bool:
        # Static gates (op class, branch/mem config) were resolved into
        # entry.ixu_eligible at register read.
        inst = entry.inst
        pos = entry.ixu_pos
        # Operand reachability: sources captured at register read are
        # settled; only the rest consult the bypass network each cycle.
        uncaptured = entry.ixu_uncaptured
        if uncaptured:
            available = self._bypass_registry.available
            for cls, preg in uncaptured:
                if not available(cls, preg, cycle, pos):
                    return False
        if inst.is_load and not self._load_dependence_clear(entry):
            return False
        if inst.is_store and self.lsq.has_younger_executed_load(entry.seq):
            # Omission 1's premise fails: a younger load already
            # executed (it beat this store through the IXU, or issued
            # from the OXU), so the store must run its violation
            # search — let it flow to the OXU where the search runs.
            return False
        # Structural: a free FU at this stage...
        if not self._stage_usage.try_use(cycle, pos):
            return False
        # ...and, for memory ops, a memory port the OXU left free (the
        # OXU issued earlier this cycle, giving it priority).
        if inst.is_mem:
            if not self.fu[FUType.MEM].try_issue(inst.op, cycle):
                return False
        entry.executed_in_ixu = True
        entry.ixu_exec_cycle = cycle
        entry.ixu_exec_stage = pos
        entry.ixu_category = "b" if uncaptured else "a"
        self._ixu_bypass_operand_hits += len(uncaptured)
        self._ixu_exec_count += 1
        if inst.is_mem:
            self._ixu_mem_exec_count += 1
        self._execute(entry, cycle, in_ixu=True)
        renamed = entry.renamed
        if renamed.dest is not None:
            self._bypass_registry.record(
                renamed.dest_cls, renamed.dest, entry,
                exec_cycle=cycle, exec_pos=pos,
                value_ready=entry.complete_cycle,
            )
        return True

    def _advance_pipe(self) -> None:
        """Move every in-pipe instruction one stage; exit the last."""
        depth = self.ixu_config.depth
        remaining: List[InFlight] = []
        for entry in self._ixu_pipe:
            if entry.squashed:
                continue
            entry.ixu_pos += 1
            if entry.ixu_pos >= depth:
                entry.dispatch_cycle = self.cycle + 1
                self._exit_q.append(entry)
            else:
                remaining.append(entry)
        self._ixu_pipe = remaining

    def _enter_pipe(self) -> None:
        """Register-read stage: capture available operands, enter stage 0."""
        regread_q = self._regread_q
        if not regread_q:
            return
        width = self.config.rename_width
        cycle = self.cycle
        scoreboard = self.renamer.scoreboard
        prf = self.renamer.prf
        ixu_pipe = self._ixu_pipe
        entered = 0
        ixu = self.ixu_config
        ports = self.config.prf_read_ports
        port_use = self._prf_port_use
        claimed = port_use.get(cycle, 0)
        while regread_q and entered < width:
            entry = regread_q[0]
            if entry.dispatch_cycle > cycle:  # regread not due yet
                break
            regread_q.popleft()
            if entry.squashed:
                continue
            captured = []
            uncaptured = []
            for cls, preg in entry.renamed.srcs:
                # Sequential scoreboard-then-PRF access (Section III-B):
                # the PRF is read only for available values, and only
                # through a shared port the OXU left free this cycle
                # (OXU priority, Section II-A).  A value missed here can
                # still arrive via IXU bypassing or the issue queue.
                board = scoreboard[cls]
                board.reads += 1
                if board._written[preg] <= cycle and claimed < ports:
                    file = prf[cls]
                    file.reads += 1
                    claimed += 1
                    captured.append(True)
                else:
                    captured.append(False)
                    uncaptured.append((cls, preg))
            entry.regread_captured = tuple(captured)
            entry.ixu_uncaptured = tuple(uncaptured)
            inst = entry.inst
            entry.ixu_eligible = (
                inst.ixu_eligible
                and (ixu.execute_branches or not inst.is_branch)
                and (ixu.execute_mem_ops or not inst.is_mem)
            )
            entry.ixu_pos = 0
            entry.ixu_exec_cycle = -1
            ixu_pipe.append(entry)
            entered += 1
        port_use[cycle] = claimed
        if len(port_use) > 64:
            self._prf_port_use = {
                c: n for c, n in port_use.items() if c >= cycle
            }

    # ------------------------------------------------------------------
    # Hooks into the base pipeline
    # ------------------------------------------------------------------

    def _bypass_network(self, in_ixu: bool) -> BypassNetwork:
        return self.ixu_bypass if in_ixu else self.oxu_bypass

    def _squash_hook(self, boundary_seq: int) -> None:
        for queue in (self._regread_q, self._ixu_pipe, self._exit_q):
            for entry in queue:
                if entry.seq > boundary_seq:
                    # Every front-end-pipe entry already holds a ROB slot,
                    # so the ROB sweep flush-recorded it; just (re)mark.
                    entry.squashed = True
        self._regread_q = deque(
            e for e in self._regread_q if not e.squashed
        )
        self._ixu_pipe = [e for e in self._ixu_pipe if not e.squashed]
        self._exit_q = deque(e for e in self._exit_q if not e.squashed)
        self._bypass_registry.drop_squashed()

    def _on_commit(self, entry: InFlight) -> None:
        if not entry.executed_in_ixu:
            return
        stats = self.stats
        stats.ixu_executed += 1
        if entry.ixu_category == "a":
            stats.ixu_category_a += 1
        else:
            stats.ixu_category_b += 1
        stage = entry.ixu_exec_stage
        stats.ixu_by_stage[stage] = stats.ixu_by_stage.get(stage, 0) + 1
        if entry.inst.is_mem:
            stats.ixu_mem_ops += 1
        if entry.inst.is_branch:
            stats.ixu_branches += 1

    def _topdown_leaf(self, cause: str) -> str:
        """IXU-executed entries never dispatch into the IQ, so the
        flat taxonomy reports a not-done IXU head as ``frontend_fill``
        (``issue_ready`` stays unset).  Its completion is scheduled,
        though — classify by what it actually waits on: the memory
        sub-tree for loads, operand/writeback latency otherwise."""
        if cause == "frontend_fill":
            head = self.rob.head()
            if (head is not None and not head.done
                    and head.executed_in_ixu):
                if head.inst.is_load:
                    return self._memory_bound_leaf(head)
                return "backend_bound.core.iq_not_ready"
        return super()._topdown_leaf(cause)

    def _prf_write_cycle(self, entry: InFlight) -> int:
        """IXU results reach the PRF only after exiting the IXU
        (paper Section II-B), not when they become bypassable."""
        if not entry.executed_in_ixu:
            return super()._prf_write_cycle(entry)
        exit_cycle = entry.ixu_exec_cycle + (
            self.ixu_config.depth - entry.ixu_exec_stage
        )
        return max(entry.complete_cycle, exit_cycle) + 1

    def snapshot_events(self):
        events = super().snapshot_events()
        events.ixu_ops = self._ixu_exec_count
        events.ixu_mem_ops = self._ixu_mem_exec_count
        events.ixu_bypass_broadcasts = self.ixu_bypass.broadcasts
        return events

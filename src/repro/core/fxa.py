"""FXA: an out-of-order core with an in-order execution unit (Figure 2).

The FXA pipeline extends the conventional one with, between rename and
dispatch:

1. a **front-end register-read stage** — the PRF scoreboard is read
   first and the PRF only for available values (sequential access,
   Section III-B), which costs one extra pipeline stage;
2. the **IXU stages** — in-order FUs with a bypass network.  An
   instruction executes in the IXU the first cycle all of its operands
   are reachable (captured at register read, or bypassed from an older
   IXU-executed instruction) and a stage FU is free; otherwise it flows
   through as a NOP and dispatches to the issue queue.

Memory operations execute in the IXU only when the OXU leaves a memory
port free that cycle (OXU has priority, Section II-D3); IXU-executed
stores skip the violation search and IXU loads whose older stores have
all executed skip the LSQ write.  Branches resolved in the IXU redirect
fetch from the front end, roughly halving the misprediction penalty;
instructions that fall through to the OXU pay the IXU depth on top of
the baseline penalty (Section IV-B2).

The scoreboard is read twice per instruction (Section III-C): once
before the IXU and again at dispatch, so instructions whose producers
completed in the OXU during their IXU transit enter the IQ marked ready.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.config import CoreConfig
from repro.core.inflight import InFlight
from repro.core.ooo import OutOfOrderCore
from repro.backend import BypassNetwork
from repro.isa.opclass import FUType, IXU_ELIGIBLE
from repro.ixu.pipeline import BypassRegistry, StageFUUsage


class FXACore(OutOfOrderCore):
    """Front-end execution architecture (BIG+FX / HALF+FX)."""

    def __init__(self, config: CoreConfig, obs=None, validator=None):
        if config.ixu is None:
            raise ValueError("FXACore requires an IXU configuration")
        super().__init__(config, obs, validator)
        ixu = config.ixu
        self.ixu_config = ixu
        self.ixu_bypass = BypassNetwork("ixu", ixu.total_fus)
        self._bypass_registry = BypassRegistry(
            depth=ixu.depth, stage_limit=ixu.bypass_stage_limit
        )
        self._stage_usage = StageFUUsage(ixu.stage_fus)
        self._regread_q: Deque[InFlight] = deque()
        self._ixu_pipe: List[InFlight] = []   # program order, pos 0..depth-1
        self._exit_q: Deque[InFlight] = deque()
        self._ixu_exec_count = 0              # includes squashed replays
        self._ixu_mem_exec_count = 0
        self._ixu_bypass_operand_hits = 0     # operands taken off the
        #                                       IXU bypass network

    # ------------------------------------------------------------------
    # Rename plumbing: no IQ reservation; stall on front-end backlog.
    # ------------------------------------------------------------------

    def _iq_slot_available(self, entry: InFlight) -> bool:
        # The IQ is checked at IXU exit; rename stalls only when the
        # register-read stage backs up (i.e. the IXU pipe is stalled).
        return len(self._regread_q) < 2 * self.config.rename_width

    def _after_rename(self, entry: InFlight) -> None:
        entry.dispatch_cycle = self.cycle + 1  # register-read stage
        self._regread_q.append(entry)

    # ------------------------------------------------------------------
    # The dispatch phase runs the whole front-end execution pipeline.
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        stalled = not self._drain_exit_queue()
        if not stalled:
            self._run_ixu_stages()
            self._advance_pipe()
            self._enter_pipe()
        self._bypass_registry.prune(self.cycle)

    def _drain_exit_queue(self) -> bool:
        """Dispatch IXU-exiting instructions; False when the IQ blocks."""
        dispatched = 0
        while self._exit_q and dispatched < self.config.rename_width:
            entry = self._exit_q[0]
            if entry.dispatch_cycle > self.cycle:
                break
            if entry.squashed:
                self._exit_q.popleft()
                continue
            if entry.executed_in_ixu:
                self._exit_q.popleft()
                dispatched += 1
                continue
            if self.iq.full:
                return False  # structural stall: hold the whole pipe
            self._exit_q.popleft()
            # Second scoreboard read (Section III-C): operands that became
            # ready in the OXU during IXU transit dispatch as ready.
            for cls, preg in entry.renamed.srcs:
                self.renamer.scoreboard[cls].is_ready(preg, self.cycle)
            self.iq.dispatch(entry)
            entry.iq_cycle = self.cycle
            entry.issue_ready = self.cycle + self.config.dispatch_to_issue
            dispatched += 1
        if self._exit_q and self._exit_q[0].dispatch_cycle <= self.cycle:
            return False  # leftovers: pipe holds this cycle
        return True

    def _run_ixu_stages(self) -> None:
        """Attempt execution for every live instruction in the IXU."""
        cycle = self.cycle
        for entry in self._ixu_pipe:
            if entry.squashed or entry.executed_in_ixu:
                continue
            self._try_ixu_execute(entry, cycle)

    def _try_ixu_execute(self, entry: InFlight, cycle: int) -> bool:
        inst = entry.inst
        if inst.op not in IXU_ELIGIBLE:
            return False
        ixu = self.ixu_config
        if inst.is_branch and not ixu.execute_branches:
            return False
        if inst.is_mem and not ixu.execute_mem_ops:
            return False
        pos = entry.ixu_pos
        # Operand reachability: captured at register read, or IXU bypass.
        captured = entry.regread_captured
        for index, (cls, preg) in enumerate(entry.renamed.srcs):
            if captured[index]:
                continue
            if not self._bypass_registry.available(cls, preg, cycle, pos):
                return False
        if inst.is_load and not self._load_dependence_clear(entry):
            return False
        if inst.is_store and self.lsq.has_younger_executed_load(entry.seq):
            # Omission 1's premise fails: a younger load already
            # executed (it beat this store through the IXU, or issued
            # from the OXU), so the store must run its violation
            # search — let it flow to the OXU where the search runs.
            return False
        # Structural: a free FU at this stage...
        if not self._stage_usage.try_use(cycle, pos):
            return False
        # ...and, for memory ops, a memory port the OXU left free (the
        # OXU issued earlier this cycle, giving it priority).
        if inst.is_mem:
            if not self.fu[FUType.MEM].try_issue(inst.op, cycle):
                return False
        entry.executed_in_ixu = True
        entry.ixu_exec_cycle = cycle
        entry.ixu_exec_stage = pos
        entry.ixu_category = "a" if all(captured) else "b"
        self._ixu_bypass_operand_hits += len(captured) - sum(captured)
        self._ixu_exec_count += 1
        if inst.is_mem:
            self._ixu_mem_exec_count += 1
        self._execute(entry, cycle, in_ixu=True)
        renamed = entry.renamed
        if renamed.dest is not None:
            self._bypass_registry.record(
                renamed.dest_cls, renamed.dest, entry,
                exec_cycle=cycle, exec_pos=pos,
                value_ready=entry.complete_cycle,
            )
        return True

    def _advance_pipe(self) -> None:
        """Move every in-pipe instruction one stage; exit the last."""
        depth = self.ixu_config.depth
        remaining: List[InFlight] = []
        for entry in self._ixu_pipe:
            if entry.squashed:
                continue
            entry.ixu_pos += 1
            if entry.ixu_pos >= depth:
                entry.dispatch_cycle = self.cycle + 1
                self._exit_q.append(entry)
            else:
                remaining.append(entry)
        self._ixu_pipe = remaining

    def _enter_pipe(self) -> None:
        """Register-read stage: capture available operands, enter stage 0."""
        regread_q = self._regread_q
        if not regread_q:
            return
        width = self.config.rename_width
        cycle = self.cycle
        scoreboard = self.renamer.scoreboard
        prf = self.renamer.prf
        ixu_pipe = self._ixu_pipe
        entered = 0
        while regread_q and entered < width:
            entry = regread_q[0]
            if entry.dispatch_cycle > cycle:  # regread not due yet
                break
            regread_q.popleft()
            if entry.squashed:
                continue
            captured = []
            for cls, preg in entry.renamed.srcs:
                # Sequential scoreboard-then-PRF access (Section III-B):
                # the PRF is read only for available values, and only
                # through a shared port the OXU left free this cycle
                # (OXU priority, Section II-A).  A value missed here can
                # still arrive via IXU bypassing or the issue queue.
                if (
                    scoreboard[cls].is_ready(preg, cycle)
                    and self._prf_port_free(cycle)
                ):
                    prf[cls].read(preg)
                    self._claim_prf_port(cycle)
                    captured.append(True)
                else:
                    captured.append(False)
            entry.regread_captured = tuple(captured)
            entry.ixu_pos = 0
            entry.ixu_exec_cycle = -1
            ixu_pipe.append(entry)
            entered += 1

    # ------------------------------------------------------------------
    # Hooks into the base pipeline
    # ------------------------------------------------------------------

    def _bypass_network(self, in_ixu: bool) -> BypassNetwork:
        return self.ixu_bypass if in_ixu else self.oxu_bypass

    def _squash_hook(self, boundary_seq: int) -> None:
        for queue in (self._regread_q, self._ixu_pipe, self._exit_q):
            for entry in queue:
                if entry.seq > boundary_seq:
                    # Every front-end-pipe entry already holds a ROB slot,
                    # so the ROB sweep flush-recorded it; just (re)mark.
                    entry.squashed = True
        self._regread_q = deque(
            e for e in self._regread_q if not e.squashed
        )
        self._ixu_pipe = [e for e in self._ixu_pipe if not e.squashed]
        self._exit_q = deque(e for e in self._exit_q if not e.squashed)
        self._bypass_registry.drop_squashed()

    def _on_commit(self, entry: InFlight) -> None:
        if not entry.executed_in_ixu:
            return
        stats = self.stats
        stats.ixu_executed += 1
        if entry.ixu_category == "a":
            stats.ixu_category_a += 1
        else:
            stats.ixu_category_b += 1
        stage = entry.ixu_exec_stage
        stats.ixu_by_stage[stage] = stats.ixu_by_stage.get(stage, 0) + 1
        if entry.inst.is_mem:
            stats.ixu_mem_ops += 1
        if entry.inst.is_branch:
            stats.ixu_branches += 1

    def _prf_write_cycle(self, entry: InFlight) -> int:
        """IXU results reach the PRF only after exiting the IXU
        (paper Section II-B), not when they become bypassable."""
        if not entry.executed_in_ixu:
            return super()._prf_write_cycle(entry)
        exit_cycle = entry.ixu_exec_cycle + (
            self.ixu_config.depth - entry.ixu_exec_stage
        )
        return max(entry.complete_cycle, exit_cycle) + 1

    def snapshot_events(self):
        events = super().snapshot_events()
        events.ixu_ops = self._ixu_exec_count
        events.ixu_mem_ops = self._ixu_mem_exec_count
        events.ixu_bypass_broadcasts = self.ixu_bypass.broadcasts
        return events

"""Clustered out-of-order core — the paper's related-work comparator.

Section VII-A contrasts FXA with clustered architectures (CA) such as the
Alpha 21264: both add execution bandwidth, but CA's clusters have no order
relation, so it needs (1) cross-cluster operand bypassing and wakeup with
extra latency, and (2) instruction steering to keep dependent chains
together.  FXA avoids both because the IXU and OXU are in series.

This model implements CA faithfully enough to reproduce that argument:

* each cluster owns private integer FUs and issue slots (memory and FP
  units remain shared, as on the 21264);
* a value consumed in its producer's cluster is bypassed normally; a
  value crossing clusters arrives ``inter_cluster_delay`` cycles later
  and is counted as an inter-cluster forward (priced like a longer
  result wire by the energy model);
* dependence steering places an instruction in its first producer's
  cluster when possible, falling back to the least-loaded cluster;
  round-robin steering is the strawman the paper alludes to.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Dict, List, Tuple

from repro.backend import FUPool
from repro.core.config import CoreConfig
from repro.core.inflight import InFlight
from repro.core.ooo import OutOfOrderCore
from repro.isa.opclass import FUType, FU_FOR_OPCLASS
from repro.isa.registers import RegClass


class ClusteredCore(OutOfOrderCore):
    """Alpha 21264-style clustered out-of-order core."""

    def __init__(self, config: CoreConfig, obs=None, validator=None):
        if config.clusters is None:
            raise ValueError("ClusteredCore requires a cluster config")
        super().__init__(config, obs, validator)
        clusters = config.clusters
        self.cluster_config = clusters
        # Private integer FU pools per cluster; MEM/FP stay shared.
        self.cluster_int_fus: List[FUPool] = [
            FUPool(FUType.INT, clusters.int_fus_per_cluster)
            for _ in range(clusters.count)
        ]
        # Producing cluster of each in-flight physical register.
        self._preg_cluster: Dict[Tuple[RegClass, int], int] = {}
        # Rolling occupancy estimate for least-loaded steering.
        self._steer_load: List[int] = [0] * clusters.count
        self._roundrobin_next = 0
        self.intercluster_forwards = 0
        self.issued_per_cluster: List[int] = [0] * clusters.count
        # Per-tick scratch: per-cluster issue counts, zeroed in place
        # each _issue call instead of reallocated every cycle.
        self._per_cluster: List[int] = [0] * clusters.count

    # ------------------------------------------------------------------
    # Steering (at rename/dispatch)
    # ------------------------------------------------------------------

    def _steer(self, entry: InFlight) -> int:
        clusters = self.cluster_config
        if clusters.steering == "roundrobin":
            cluster = self._roundrobin_next
            self._roundrobin_next = (cluster + 1) % clusters.count
            return cluster
        # Dependence steering: follow the first in-flight producer —
        # unless that cluster is badly overloaded (21264-style steering
        # balances too, or throughput-bound code piles onto one side).
        loads = self._steer_load
        least = loads.index(min(loads))
        for cls, preg in entry.renamed.srcs:
            producer_cluster = self._preg_cluster.get((cls, preg))
            if producer_cluster is None:
                continue
            if (self._steer_load[producer_cluster]
                    <= self._steer_load[least] + 6):
                return producer_cluster
            break
        return least

    def _after_rename(self, entry: InFlight) -> None:
        super()._after_rename(entry)
        entry.cluster = self._steer(entry)
        self._steer_load[entry.cluster] += 1
        renamed = entry.renamed
        if renamed.dest is not None:
            self._preg_cluster[(renamed.dest_cls, renamed.dest)] = (
                entry.cluster
            )

    # ------------------------------------------------------------------
    # Issue: per-cluster widths, private INT FUs, cross-cluster latency
    # ------------------------------------------------------------------

    def _entry_wake(self, entry: InFlight) -> int:
        """Cluster-aware wake cycle: a value crossing clusters arrives
        ``inter_cluster_delay`` cycles after the producer's value is
        ready.  Computed once per entry when its last producer's
        arrival becomes known — the producer-cluster map is stable for
        the life of the consumer (the producer's physical register is
        not reclaimed while an in-flight consumer names it)."""
        wake = entry.issue_ready
        delay = self.cluster_config.inter_cluster_delay
        prf = self.renamer.prf
        preg_cluster_get = self._preg_cluster.get
        cluster = entry.cluster
        for cls, preg in entry.renamed.srcs:
            arrival = prf[cls].ready_cycles[preg]
            producer_cluster = preg_cluster_get((cls, preg))
            if (producer_cluster is not None
                    and producer_cluster != cluster):
                arrival += delay
            if arrival > wake:
                wake = arrival
        return wake

    def _issue(self) -> int:
        cycle = self.cycle
        heap = self._wake_heap
        ready = self._ready_entries
        if heap and heap[0][0] <= cycle:
            heappop = heapq.heappop
            while heap and heap[0][0] <= cycle:
                _, seq, entry = heappop(heap)
                if entry.squashed or entry.issued:
                    continue
                insort(ready, (seq, entry))
        if not ready:
            return 0
        per_cluster = self._per_cluster
        for index in range(len(per_cluster)):
            per_cluster[index] = 0
        width = self.cluster_config.issue_width_per_cluster
        total_width = self.config.issue_width
        iq = self.iq
        issued_total = 0
        for _, entry in ready:
            if entry.squashed or entry.issued:
                continue
            cluster = entry.cluster
            if per_cluster[cluster] >= width:
                continue
            inst = entry.inst
            if inst.is_load and not self._load_dependence_clear(entry):
                continue
            fu_type = inst.fu_type
            if fu_type is FUType.INT:
                if not self.cluster_int_fus[cluster].try_issue(
                        inst.op, cycle):
                    continue
            elif not self.fu[fu_type].try_issue(inst.op, cycle):
                continue
            iq.note_issue()
            entry.issued = True
            per_cluster[cluster] += 1
            issued_total += 1
            self.issued_per_cluster[cluster] += 1
            self._count_cross_cluster(entry)
            self._steer_load[cluster] = max(
                0, self._steer_load[cluster] - 1)
            self._execute(entry, cycle, in_ixu=False)
            if entry.squashed:
                break
            if issued_total >= total_width:
                break
        if issued_total:
            iq.remove_issued()
            self._ready_entries = [
                item for item in self._ready_entries
                if not item[1].issued and not item[1].squashed
            ]
        return issued_total

    def _topdown_leaf(self, cause: str) -> str:
        """An ``operand_wait`` head whose cluster-aware wake cycle has
        already passed is not waiting on operands at all — it lost the
        per-cluster select (issue-port starvation).  Fast-forward
        stable: the wake heap's head bounds the kernel's jump horizon,
        so this predicate cannot flip inside a skipped gap."""
        if cause == "operand_wait":
            head = self.rob.head()
            if (head is not None and not head.issued and not head.done
                    and head.issue_ready >= 0
                    and self._entry_wake(head) <= self.cycle):
                return "backend_bound.core.fu_port"
        return super()._topdown_leaf(cause)

    def _count_cross_cluster(self, entry: InFlight) -> None:
        for cls, preg in entry.renamed.srcs:
            producer_cluster = self._preg_cluster.get((cls, preg))
            if (producer_cluster is not None
                    and producer_cluster != entry.cluster):
                self.intercluster_forwards += 1

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def _squash_hook(self, boundary_seq: int) -> None:
        # Squashed producers' pregs went back to the free lists and may
        # be re-allocated to any cluster; drop their stale mappings.
        for (cls, preg) in list(self._preg_cluster):
            if preg in self.renamer.free[cls]:
                del self._preg_cluster[(cls, preg)]

    def snapshot_events(self):
        # += is safe: the base snapshot is a fresh object every call.
        events = super().snapshot_events()
        events.fu_int_ops += sum(
            pool.executions for pool in self.cluster_int_fus
        )
        events.intercluster_forwards = self.intercluster_forwards
        return events

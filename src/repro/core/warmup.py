"""Functional warm-up shared by every core model.

The paper skips the first 4 G instructions of each benchmark before
measuring 100 M, so its predictors and caches are warm.  Our traces are
short; to avoid measuring cold-start transients, each core supports a
*functional* warm-up pass that trains the branch predictor and touches the
caches architecturally (no timing), after which its event counters are
reset so the measured interval is clean.
"""

from __future__ import annotations

from typing import Iterable

from repro.isa.instruction import DynInst
from repro.mem.cache import CacheStats


def functional_warmup(core, trace: Iterable[DynInst]) -> None:
    """Train ``core``'s predictor and caches on ``trace``; reset counters.

    Works on any core exposing ``predictor``, ``hierarchy`` and ``config``
    (all three models do).
    """
    line_bytes = core.config.hierarchy.line_bytes
    last_line = -1
    for inst in trace:
        line = inst.pc // line_bytes
        if line != last_line:
            core.hierarchy.fetch(inst.pc)
            last_line = line
        if inst.is_branch:
            prediction = core.predictor.predict(inst)
            core.predictor.resolve(inst, prediction)
        elif inst.is_load:
            core.hierarchy.load(inst.mem_addr)
        elif inst.is_store:
            core.hierarchy.store(inst.mem_addr)
    reset_event_counters(core)


def reset_event_counters(core) -> None:
    """Zero the counters warm-up perturbed (cache stats, predictor).

    Every hierarchy *event* counter must be reset here — including
    ``prefetches``, which warm-up traffic trains heavily; leaving it
    would leak warm-up-issued prefetches into the measured interval and
    inflate the energy model's prefetch traffic.  The warmed *state*
    (cache contents, the tagged-prefetch line set, predictor tables)
    is deliberately kept: that is the point of the warm-up.
    """
    for cache in (core.hierarchy.l1i, core.hierarchy.l1d,
                  core.hierarchy.l2):
        cache.stats = CacheStats()
    core.hierarchy.mem_accesses = 0
    core.hierarchy.prefetches = 0
    core.predictor.lookups = 0
    core.predictor.mispredictions = 0

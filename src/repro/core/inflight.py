"""Per-instruction pipeline shadow state.

The trace's :class:`~repro.isa.DynInst` records stay immutable; each core
wraps every fetched instruction in an :class:`InFlight` that carries the
mutable pipeline state (renamed operands, timing, IXU progress, squash
flag).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instruction import DynInst

#: complete_cycle sentinel: not yet scheduled.
UNSCHEDULED = -1


class InFlight:
    """Mutable pipeline state of one in-flight dynamic instruction."""

    __slots__ = (
        "inst",
        "renamed",
        "src_pairs",
        "prediction",
        "mispredicted",
        "btb_redirect",
        "fetch_cycle",
        "rename_ready",
        "rename_cycle",
        "dispatch_cycle",
        "iq_cycle",
        "issue_ready",
        "wait_count",
        "issued",
        "issue_cycle",
        "complete_cycle",
        "done",
        "squashed",
        "mem_executed",
        "lsq_written",
        "mem_dep",
        "cluster",
        "executed_in_ixu",
        "ixu_eligible",
        "ixu_pos",
        "ixu_exec_cycle",
        "ixu_exec_stage",
        "ixu_category",
        "regread_captured",
        "ixu_uncaptured",
    )

    def __init__(self, inst: DynInst, fetch_cycle: int):
        self.inst = inst
        self.renamed = None
        # Prebound ``(prf_ready_cycles_list, preg)`` pairs, one per
        # renamed source: the issue loop's operand check becomes two
        # flat list indexings with no dict lookup or attribute chase.
        # Bound at rename (the PRF ready lists are mutated in place and
        # never rebound, so the references stay valid for the entry's
        # whole lifetime).
        self.src_pairs: Tuple = ()
        self.prediction = None
        self.mispredicted = False
        self.btb_redirect = False
        self.fetch_cycle = fetch_cycle
        self.rename_ready = fetch_cycle
        self.rename_cycle = UNSCHEDULED
        self.dispatch_cycle = UNSCHEDULED
        self.iq_cycle = UNSCHEDULED
        self.issue_ready = UNSCHEDULED
        # Unscheduled-producer count for the event-driven wakeup engine
        # (see OutOfOrderCore._schedule_entry).
        self.wait_count = 0
        self.issued = False
        self.issue_cycle = UNSCHEDULED
        self.complete_cycle = UNSCHEDULED
        self.done = False
        self.squashed = False
        self.mem_executed = False
        self.lsq_written = False
        self.mem_dep = None
        self.cluster = -1
        self.executed_in_ixu = False
        # Resolved at IXU entry: op class, branch/mem config gates.
        self.ixu_eligible = False
        self.ixu_pos = -1
        self.ixu_exec_cycle = UNSCHEDULED
        self.ixu_exec_stage = -1
        self.ixu_category = ""
        self.regread_captured: Optional[Tuple[bool, ...]] = None
        # Sources *not* captured at register read: the per-cycle IXU
        # execute attempt only re-checks these against the bypass net.
        self.ixu_uncaptured: Tuple = ()

    @property
    def seq(self) -> int:
        """Program-order sequence number (trace position)."""
        return self.inst.seq

    def __repr__(self) -> str:
        flags = []
        if self.executed_in_ixu:
            flags.append("IXU")
        if self.done:
            flags.append("done")
        if self.squashed:
            flags.append("squashed")
        return f"<InFlight {self.inst!r} {' '.join(flags)}>"

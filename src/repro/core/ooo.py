"""Cycle-level out-of-order superscalar core (Figure 1 baseline).

Trace-driven model of the conventional physical-register-file superscalar
the paper compares against (BIG / HALF).  Key mechanisms:

* Fetch with g-share+BTB+RAS prediction; a misprediction stops fetch until
  the branch executes (no wrong-path fetch), after which the front-end
  refill depth supplies the Table I penalty.
* Rename allocates PRF/ROB/LSQ/IQ resources in program order and stalls on
  exhaustion.
* Age-ordered wakeup/select over the issue queue under issue-width, FU and
  memory-dependence (store-set) constraints; operand readiness is a
  per-physical-register timestamp, giving back-to-back wakeup.
* Loads search the LSQ for store-to-load forwarding; stores search younger
  executed loads and squash-and-replay on an ordering violation (the trace
  cursor literally rewinds).
* In-order commit; stores write the data cache at commit.

The model executes no wrong-path instructions; their FU energy is instead
estimated statistically at each misprediction resolution (see
``_charge_wrongpath``) so the energy comparison against the in-order core
keeps the paper's Figure 8b shape.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.backend import (
    BypassNetwork,
    FUPool,
    IssueQueue,
    LoadStoreQueue,
    ReorderBuffer,
    StoreSetPredictor,
)
from repro.branch import BranchPredictor
from repro.core.config import CoreConfig
from repro.core.inflight import InFlight
from repro.core.stats import CoreStats, EventCounts
from repro.isa.instruction import DynInst
from repro.isa.opclass import FUType, FU_FOR_OPCLASS, LATENCY, OpClass
from repro.mem.hierarchy import CacheHierarchy

#: Abort the run when commit makes no progress for this many cycles.
DEADLOCK_LIMIT = 20_000

#: FP arithmetic classes the commit stage counts (not FP loads/stores).
_FP_ARITH = frozenset({OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV})


class SimulationError(RuntimeError):
    """The pipeline wedged (a model bug, surfaced loudly)."""


class OutOfOrderCore:
    """Conventional out-of-order superscalar (BIG/HALF of Table I).

    Args:
        config: Table I parameters for this model.
        obs: Optional :class:`~repro.obs.Observability` bundle; when
            None (the default) the pipeline pays one ``is None`` test
            per cycle and collects nothing.
        validator: Optional :class:`~repro.validate.Validator`; same
            contract as ``obs`` — None (the default) costs one ``is
            None`` test per hook site and checks nothing.
    """

    def __init__(self, config: CoreConfig, obs=None, validator=None):
        if config.core_type != "ooo":
            raise ValueError("OutOfOrderCore requires an 'ooo' config")
        self.config = config
        self.predictor = BranchPredictor(
            pht_entries=config.pht_entries,
            btb_entries=config.btb_entries,
            ras_depth=config.ras_depth,
            kind=config.predictor_kind,
        )
        self.hierarchy = CacheHierarchy(config.hierarchy)
        # Renamer import is local to avoid a cycle with repro.rename docs.
        from repro.rename import Renamer

        self.renamer = Renamer(config.int_prf_entries,
                               config.fp_prf_entries)
        self.rob = ReorderBuffer(config.rob_entries)
        self.iq = IssueQueue(config.iq_entries, config.issue_width)
        self.lsq = LoadStoreQueue(config.lq_entries, config.sq_entries)
        self.store_sets = StoreSetPredictor()
        self.fu = {
            FUType.INT: FUPool(FUType.INT, config.fu_int),
            FUType.MEM: FUPool(FUType.MEM, config.fu_mem),
            FUType.FP: FUPool(FUType.FP, config.fu_fp),
        }
        self.oxu_bypass = BypassNetwork("oxu", config.total_oxu_fus)
        self.stats = CoreStats(model=config.name)
        # Pipeline state.
        self.cycle = 0
        self.trace: List[DynInst] = []
        self.fetch_idx = 0
        self.fetch_resume_cycle = 0
        self.waiting_branch: Optional[InFlight] = None
        self.rename_q: Deque[InFlight] = deque()
        self.dispatch_q: Deque[InFlight] = deque()
        self._completions: List[Tuple[int, int, InFlight]] = []
        self._completion_counter = 0
        self._last_fetched_line = -1
        self._last_commit_cycle = 0
        self._iq_reserved = 0
        # PRF read-port usage per cycle (shared with the IXU in FXA;
        # the OXU issues first each cycle and therefore has priority).
        self._prf_port_use: Dict[int, int] = {}
        # Observability (stall attribution state is kept even when obs
        # is off: the stores sit on cold paths and cost nothing).
        self._obs = obs
        self._pipeview = obs.pipeview if obs is not None else None
        self._stall_reason: Optional[str] = None
        self._fetch_stall_kind = ""
        if obs is not None:
            obs.attach(self)
        self._validator = validator
        if validator is not None:
            validator.attach(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, trace: List[DynInst],
            max_cycles: Optional[int] = None) -> CoreStats:
        """Simulate ``trace`` to completion and return statistics.

        The trace must be indexable by sequence number (``trace[i].seq
        == i``) because ordering-violation replay rewinds the cursor.
        """
        if trace and trace[0].seq != 0:
            raise ValueError("trace must start at seq 0")
        self.trace = trace
        while self.fetch_idx < len(trace) or len(self.rob) or self.rename_q:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            self._tick()
            if self.cycle - self._last_commit_cycle > DEADLOCK_LIMIT:
                raise SimulationError(
                    f"{self.config.name}: no commit for "
                    f"{DEADLOCK_LIMIT} cycles at cycle {self.cycle} "
                    f"(head={self.rob.head()!r})"
                )
        self.stats.cycles = self.cycle
        self._collect_events()
        if self._obs is not None:
            self._obs.finalize(self)
        if self._validator is not None:
            self._validator.finalize(self)
        return self.stats

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._process_completions()
        committed = self._commit()
        self._issue()
        self._dispatch()
        self._rename()
        self._fetch()
        self.iq.sample_occupancy()
        if self._obs is not None:
            self._obs.on_cycle(self, committed)
        if self._validator is not None:
            self._validator.on_cycle(self, committed)
        self.cycle += 1

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        if self.cycle < self.fetch_resume_cycle:
            return
        if self.waiting_branch is not None:
            return
        config = self.config
        cycle = self.cycle
        trace = self.trace
        trace_len = len(trace)
        rename_q = self.rename_q
        fetch_width = config.fetch_width
        queue_depth = config.frontend_queue_depth
        line_bytes = config.hierarchy.line_bytes
        rename_lat = config.fetch_to_rename
        fetched = 0
        while (
            fetched < fetch_width
            and self.fetch_idx < trace_len
            and len(rename_q) < queue_depth
        ):
            inst = trace[self.fetch_idx]
            line = inst.pc // line_bytes
            if line != self._last_fetched_line:
                result = self.hierarchy.fetch(inst.pc)
                self._last_fetched_line = line
                if not result.l1_hit:
                    # Refill in flight: resume once the line arrives.
                    self.fetch_resume_cycle = cycle + result.latency
                    self._fetch_stall_kind = "icache"
                    break
            entry = InFlight(inst, fetch_cycle=cycle)
            entry.rename_ready = cycle + rename_lat
            stop_after = False
            if inst.is_branch:
                self.stats.branches += 1
                entry.prediction = self.predictor.predict(inst)
                if not entry.prediction.correct_for(inst):
                    if (entry.prediction.taken and inst.taken
                            and entry.prediction.target is None):
                        # Direction right, BTB cold: the decoder computes
                        # the target — a short front-end redirect.
                        entry.btb_redirect = True
                        self.stats.btb_redirects += 1
                        self.fetch_resume_cycle = (
                            cycle + config.decode_redirect_latency
                        )
                        self._fetch_stall_kind = "redirect"
                    else:
                        entry.mispredicted = True
                        self.waiting_branch = entry
                    stop_after = True
                elif inst.taken and config.fetch_breaks_on_taken:
                    # Simple fetch units stop at a taken branch.
                    stop_after = True
            rename_q.append(entry)
            self.fetch_idx += 1
            fetched += 1
            self.stats.fetched += 1
            if stop_after:
                break

    # ------------------------------------------------------------------
    # Rename
    # ------------------------------------------------------------------

    def _rename(self) -> None:
        config = self.config
        self._stall_reason = None
        renamed = 0
        while self.rename_q and renamed < config.rename_width:
            entry = self.rename_q[0]
            if entry.rename_ready > self.cycle:
                break
            if not self._rename_resources_ready(entry):
                break
            self.rename_q.popleft()
            if self._is_eliminable(entry.inst):
                # RENO: the move becomes a rename-table update; it still
                # takes a ROB slot and commits, but never executes.
                entry.renamed = self.renamer.rename_move(entry.inst)
                entry.rename_cycle = self.cycle
                entry.complete_cycle = self.cycle
                if self._validator is not None:
                    self._validator.on_rename(self, entry)
                self.rob.insert(entry)
                self._completion_counter += 1
                heapq.heappush(
                    self._completions,
                    (self.cycle, self._completion_counter, entry),
                )
                renamed += 1
                continue
            entry.renamed = self.renamer.rename(entry.inst)
            entry.rename_cycle = self.cycle
            if self._validator is not None:
                self._validator.on_rename(self, entry)
            self.rob.insert(entry)
            inst = entry.inst
            if inst.is_load:
                self.lsq.insert_load(entry)
                # LFST is read in program order at rename: it holds the
                # youngest *older* store of the load's store set.
                entry.mem_dep = self.store_sets.load_dependency(inst.pc)
            elif inst.is_store:
                self.lsq.insert_store(entry)
                self.store_sets.store_dispatched(inst.pc, entry)
            self._after_rename(entry)
            renamed += 1

    def _is_eliminable(self, inst: DynInst) -> bool:
        """Is this a move the RENO extension can eliminate at rename?"""
        return (
            self.config.move_elimination
            and inst.op is OpClass.MOV
            and inst.dest is not None
            and len(inst.srcs) == 1
            and inst.dest.cls is inst.srcs[0].cls
        )

    def _rename_resources_ready(self, entry: InFlight) -> bool:
        """Check every resource rename must secure for ``entry``.

        A failed check records which structure blocked rename this
        cycle (``_stall_reason``); the stall attributor charges the
        cycle to it when nothing commits.
        """
        inst = entry.inst
        if self._is_eliminable(inst):
            if self.rob.full:  # needs no register, IQ or LSQ slot
                self._stall_reason = "rob_full"
                return False
            return True
        if not self.renamer.can_rename(inst):
            self._stall_reason = "prf_full"
            return False
        if self.rob.full:
            self._stall_reason = "rob_full"
            return False
        if inst.is_load and not self.lsq.loads_free:
            self._stall_reason = "lsq_full"
            return False
        if inst.is_store and not self.lsq.stores_free:
            self._stall_reason = "lsq_full"
            return False
        if not self._iq_slot_available(entry):
            self._stall_reason = "iq_full"
            return False
        return True

    def _iq_slot_available(self, entry: InFlight) -> bool:
        """The plain OoO core reserves an IQ slot at rename."""
        return self.iq.free - self._iq_reserved > 0

    def _after_rename(self, entry: InFlight) -> None:
        """Hook: route the renamed instruction toward dispatch."""
        entry.dispatch_cycle = self.cycle + self.config.rename_to_dispatch
        self.dispatch_q.append(entry)
        self._iq_reserved += 1

    # ------------------------------------------------------------------
    # Dispatch (into the issue queue)
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        config = self.config
        dispatched = 0
        while self.dispatch_q and dispatched < config.rename_width:
            entry = self.dispatch_q[0]
            if entry.dispatch_cycle > self.cycle:
                break
            self.dispatch_q.popleft()
            if entry.squashed:
                continue
            self._iq_reserved -= 1
            self.iq.dispatch(entry)
            entry.iq_cycle = self.cycle
            entry.issue_ready = self.cycle + config.dispatch_to_issue
            dispatched += 1

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _srcs_ready(self, entry: InFlight, cycle: int) -> bool:
        prf = self.renamer.prf
        return all(
            prf[cls].ready_cycle(preg) <= cycle
            for cls, preg in entry.renamed.srcs
        )

    def _load_dependence_clear(self, entry: InFlight) -> bool:
        """Store-set check: may this load issue ahead of older stores?

        The dependency was captured at rename (LFST read in program
        order); the load waits until that store has executed.
        """
        dep = entry.mem_dep
        if dep is None:
            return True
        return dep.squashed or dep.mem_executed or dep.seq >= entry.seq

    def _issue(self) -> None:
        iq = self.iq
        if not len(iq):
            return
        issued = 0
        cycle = self.cycle
        width = self.config.issue_width
        fu = self.fu
        ready_for = {
            cls: p.ready_cycles for cls, p in self.renamer.prf.items()
        }
        # Iterating the queue's live list is safe: issue removal is
        # deferred to the post-loop sweep, and a mid-loop squash rebinds
        # the queue's list, leaving this iterator on the old snapshot
        # (the pre-existing semantics).
        for entry in iq:
            if issued >= width:
                break
            if entry.squashed or entry.issued:
                continue
            if entry.issue_ready > cycle:
                continue
            srcs_ready = True
            for cls, preg in entry.renamed.srcs:
                if ready_for[cls][preg] > cycle:
                    srcs_ready = False
                    break
            if not srcs_ready:
                continue
            inst = entry.inst
            if inst.is_load and not self._load_dependence_clear(entry):
                continue
            if not fu[FU_FOR_OPCLASS[inst.op]].try_issue(inst.op, cycle):
                continue
            iq.note_issue()
            entry.issued = True
            issued += 1
            self._execute(entry, cycle, in_ixu=False)
            if entry.squashed:
                # An ordering violation squashed younger state (possibly
                # entries later in our snapshot); restart next cycle.
                break
        if issued:
            iq.remove_issued()

    def _execute(self, entry: InFlight, cycle: int, in_ixu: bool) -> None:
        """Begin execution at ``cycle``; schedules the completion."""
        inst = entry.inst
        entry.issue_cycle = cycle
        if not in_ixu and entry.renamed is not None:
            # Register-read stage after issue (counts PRF read ports).
            srcs = entry.renamed.srcs
            if srcs:
                prf = self.renamer.prf
                for cls, preg in srcs:
                    prf[cls].read(preg)
                    self._claim_prf_port(cycle)
        if inst.is_load:
            forwarded = self.lsq.execute_load(entry, in_ixu)
            if forwarded:
                self.stats.forwarded_loads += 1
                latency = 2  # AGU + store-queue forward
            else:
                result = self.hierarchy.load(inst.mem_addr)
                latency = 1 + result.latency
            complete = cycle + latency
        elif inst.is_store:
            violator = self.lsq.execute_store(entry, in_ixu)
            self.store_sets.store_executed(inst.pc, entry)
            complete = cycle + 1
            if violator is not None:
                self._handle_violation(violator, entry)
            if self._validator is not None:
                # After recovery: surviving younger executed loads to
                # this address are missed ordering violations.
                self._validator.on_store_executed(self, entry, in_ixu)
        else:
            complete = cycle + LATENCY[inst.op]
        entry.complete_cycle = complete
        if entry.renamed is not None and entry.renamed.dest is not None:
            network = self._bypass_network(in_ixu)
            network.broadcast()
        self._completion_counter += 1
        heapq.heappush(
            self._completions, (complete, self._completion_counter, entry)
        )

    def _bypass_network(self, in_ixu: bool) -> BypassNetwork:
        return self.oxu_bypass

    def _claim_prf_port(self, cycle: int) -> None:
        """The OXU takes a shared PRF read port unconditionally."""
        self._prf_port_use[cycle] = self._prf_port_use.get(cycle, 0) + 1
        if len(self._prf_port_use) > 64:
            self._prf_port_use = {
                c: n for c, n in self._prf_port_use.items() if c >= cycle
            }

    def _prf_port_free(self, cycle: int) -> bool:
        """Is a shared PRF read port left for the front end this cycle?"""
        used = self._prf_port_use.get(cycle, 0)
        return used < self.config.prf_read_ports

    # ------------------------------------------------------------------
    # Completion / writeback
    # ------------------------------------------------------------------

    def _process_completions(self) -> None:
        completions = self._completions
        if not completions or completions[0][0] > self.cycle:
            return
        cycle = self.cycle
        heappop = heapq.heappop
        prf_map = self.renamer.prf
        while completions and completions[0][0] <= cycle:
            _, _, entry = heappop(completions)
            if entry.squashed:
                continue
            entry.done = True
            renamed = entry.renamed
            if (renamed is not None and renamed.dest is not None
                    and not renamed.eliminated):
                prf = prf_map[renamed.dest_cls]
                prf.mark_ready(renamed.dest, entry.complete_cycle)
                prf.mark_written(renamed.dest,
                                 self._prf_write_cycle(entry))
                if not entry.executed_in_ixu:
                    # Completing producers broadcast their tag into the IQ.
                    self.iq.broadcast_wakeup()
            if entry.inst.is_branch:
                self._resolve_branch(entry)

    def _prf_write_cycle(self, entry: InFlight) -> int:
        """Cycle the result is readable from the PRF (writeback + 1)."""
        return entry.complete_cycle + 1

    def _resolve_branch(self, entry: InFlight) -> None:
        self.predictor.resolve(entry.inst, entry.prediction)
        if entry.mispredicted:
            self.stats.mispredictions += 1
            if entry.executed_in_ixu:
                self.stats.mispredictions_resolved_in_ixu += 1
            self._charge_wrongpath(entry)
        if self.waiting_branch is entry:
            self.waiting_branch = None
            self.fetch_resume_cycle = self.cycle + 1

    def _charge_wrongpath(self, entry: InFlight) -> None:
        """Estimate wrong-path FU work for one misprediction.

        The model fetches no wrong path, but real cores execute down it
        until resolution; the deeper/wider the window, the more flushed
        work (the reason LITTLE's FU energy is lowest in Figure 8b).  We
        charge half the issue bandwidth over the resolution window.
        """
        window = max(
            0, self.cycle - entry.fetch_cycle - self.config.fetch_to_rename
        )
        self.stats.events.wrongpath_ops += (
            0.5 * self.config.issue_width * window
        )

    # ------------------------------------------------------------------
    # Memory-ordering violation: squash and replay
    # ------------------------------------------------------------------

    def _handle_violation(self, load_entry: InFlight,
                          store_entry: InFlight) -> None:
        self.stats.violations += 1
        self.store_sets.train_violation(load_entry.inst.pc,
                                        store_entry.inst.pc)
        self._squash_after(load_entry.seq - 1)
        if self._validator is not None:
            self._validator.on_violation(self, load_entry, store_entry)

    def _squash_after(self, boundary_seq: int) -> None:
        """Squash every instruction younger than ``boundary_seq`` and
        rewind the trace cursor to refetch them."""
        removed = self.rob.squash_younger_than(boundary_seq)
        pipeview = self._pipeview
        for entry in removed:  # youngest first
            entry.squashed = True
            self.stats.squashed += 1
            if entry.inst.is_store:
                self.store_sets.store_squashed(entry.inst.pc, entry)
            self.renamer.squash(entry.renamed)
            if pipeview is not None:
                pipeview.record(entry, self.cycle, flushed=True)
        self.iq.squash_younger_than(boundary_seq)
        self.lsq.squash_younger_than(boundary_seq)
        for queue in (self.rename_q, self.dispatch_q):
            for entry in queue:
                if entry.seq > boundary_seq:
                    # Renamed entries were already flush-recorded by the
                    # ROB sweep above; only pre-rename ones are new here.
                    if pipeview is not None and not entry.squashed:
                        pipeview.record(entry, self.cycle, flushed=True)
                    entry.squashed = True
        self.rename_q = deque(
            e for e in self.rename_q if not e.squashed
        )
        kept_dispatch = deque()
        for entry in self.dispatch_q:
            if entry.squashed:
                self._iq_reserved -= 1
            else:
                kept_dispatch.append(entry)
        self.dispatch_q = kept_dispatch
        if (self.waiting_branch is not None
                and self.waiting_branch.seq > boundary_seq):
            self.waiting_branch = None
        self._squash_hook(boundary_seq)
        if self._validator is not None:
            self._validator.on_squash(self, boundary_seq)
        self.fetch_idx = boundary_seq + 1
        self.fetch_resume_cycle = self.cycle + 1
        self._last_fetched_line = -1

    def _squash_hook(self, boundary_seq: int) -> None:
        """Hook for subclasses (FXA clears the IXU pipe)."""

    # ------------------------------------------------------------------
    # Stall attribution (read by repro.obs on zero-commit cycles)
    # ------------------------------------------------------------------

    def _stall_cause(self) -> str:
        """Why did this cycle commit nothing?  One taxonomy cause.

        Priority order: a rename stall on a full backend structure wins
        (window pressure is the actionable signal), then the ROB head's
        execution state, then front-end conditions.
        """
        reason = self._stall_reason
        if reason is not None:
            return reason
        head = self.rob.head()
        if head is not None:
            if not head.done:
                if head.mispredicted:
                    return "branch_recovery"
                if head.issued:
                    if head.inst.is_load:
                        return "dcache_miss"
                    return "operand_wait"
                if head.issue_ready < 0:
                    return "frontend_fill"  # still in dispatch transit
                return "operand_wait"
            return "other"  # done, but writeback/commit-timing limited
        if self.waiting_branch is not None:
            return "branch_recovery"
        if self.cycle < self.fetch_resume_cycle:
            if self._fetch_stall_kind == "icache":
                return "icache_miss"
            return "branch_recovery"
        return "frontend_fill"

    def _on_commit(self, entry: InFlight) -> None:
        """Hook for subclasses (FXA records IXU-execution statistics)."""

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self) -> int:
        rob = self.rob
        cycle = self.cycle
        stats = self.stats
        pipeview = self._pipeview
        committed = 0
        width = self.config.commit_width
        while committed < width:
            head = rob.head()
            if head is None or not head.done:
                break
            if head.complete_cycle > cycle:
                break
            rob.pop_head()
            inst = head.inst
            if inst.is_mem:
                if inst.is_store:
                    self.hierarchy.store(inst.mem_addr)
                    stats.committed_stores += 1
                else:
                    stats.committed_loads += 1
                self.lsq.commit(head)
            elif inst.is_branch:
                stats.committed_branches += 1
            elif inst.op in _FP_ARITH:
                stats.committed_fp += 1
            self.renamer.commit(head.renamed)
            self._on_commit(head)
            if self._validator is not None:
                self._validator.on_commit(self, head)
            if pipeview is not None:
                pipeview.record(head, cycle, flushed=False)
            stats.committed += 1
            committed += 1
            self._last_commit_cycle = cycle
        return committed

    # ------------------------------------------------------------------
    # Event collection for the energy model
    # ------------------------------------------------------------------

    def snapshot_events(self) -> EventCounts:
        """Fresh :class:`EventCounts` read from the live counters.

        Callable mid-run (the timeline collector deltas successive
        snapshots at interval boundaries) as well as at the end of the
        run; each call builds a new object, so calling it twice never
        double-counts.  ``wrongpath_ops`` is the one count accumulated
        on ``stats.events`` during the run rather than on a live
        structure, so it is copied across.
        """
        events = EventCounts()
        events.cycles = self.cycle
        events.wrongpath_ops = self.stats.events.wrongpath_ops
        events.fetched = self.stats.fetched
        events.decoded = self.stats.fetched
        events.iq_dispatches = self.iq.dispatches
        events.iq_issues = self.iq.issues
        events.iq_wakeup_broadcasts = self.iq.wakeup_broadcasts
        events.iq_cam_compares = self.iq.wakeup_cam_compares
        events.lsq_writes = self.lsq.stats.writes
        events.lsq_searches = self.lsq.stats.searches
        events.lsq_omitted_writes = self.lsq.stats.omitted_load_writes
        events.lsq_omitted_searches = (
            self.lsq.stats.omitted_violation_searches
        )
        prf = self.renamer.prf
        events.prf_reads = sum(p.reads for p in prf.values())
        events.prf_writes = sum(p.writes for p in prf.values())
        events.scoreboard_reads = sum(
            s.reads for s in self.renamer.scoreboard.values()
        )
        events.rat_reads = sum(
            r.reads for r in self.renamer.rat.values()
        )
        events.rat_writes = sum(
            r.writes for r in self.renamer.rat.values()
        )
        events.rob_allocations = self.rob.allocations
        events.moves_eliminated = self.renamer.moves_eliminated
        events.fu_int_ops = self.fu[FUType.INT].executions
        events.fu_mem_ops = self.fu[FUType.MEM].executions
        events.fu_fp_ops = self.fu[FUType.FP].executions
        events.oxu_bypass_broadcasts = self.oxu_bypass.broadcasts
        events.predictor_lookups = self.predictor.lookups
        events.btb_lookups = self.predictor.lookups
        l1i, l1d, l2 = (self.hierarchy.l1i, self.hierarchy.l1d,
                        self.hierarchy.l2)
        events.l1i_accesses = l1i.stats.accesses
        events.l1i_misses = l1i.stats.misses
        events.l1d_accesses = l1d.stats.accesses
        events.l1d_misses = l1d.stats.misses
        events.l2_accesses = l2.stats.accesses
        events.l2_misses = l2.stats.misses
        events.mem_accesses = self.hierarchy.mem_accesses
        events.prefetches = self.hierarchy.prefetches
        return events

    def _collect_events(self) -> None:
        self.stats.events = self.snapshot_events()
        self.stats.iq_mean_occupancy = self.iq.mean_occupancy
        self.stats.forwarded_loads = self.lsq.stats.forwarded_loads

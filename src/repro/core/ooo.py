"""Cycle-level out-of-order superscalar core (Figure 1 baseline).

Trace-driven model of the conventional physical-register-file superscalar
the paper compares against (BIG / HALF).  Key mechanisms:

* Fetch with g-share+BTB+RAS prediction; a misprediction stops fetch until
  the branch executes (no wrong-path fetch), after which the front-end
  refill depth supplies the Table I penalty.
* Rename allocates PRF/ROB/LSQ/IQ resources in program order and stalls on
  exhaustion.
* Age-ordered wakeup/select over the issue queue under issue-width, FU and
  memory-dependence (store-set) constraints; operand readiness is a
  per-physical-register timestamp, giving back-to-back wakeup.
* Loads search the LSQ for store-to-load forwarding; stores search younger
  executed loads and squash-and-replay on an ordering violation (the trace
  cursor literally rewinds).
* In-order commit; stores write the data cache at commit.

The model executes no wrong-path instructions; their FU energy is instead
estimated statistically at each misprediction resolution (see
``_charge_wrongpath``) so the energy comparison against the in-order core
keeps the paper's Figure 8b shape.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.backend import (
    BypassNetwork,
    FUPool,
    IssueQueue,
    LoadStoreQueue,
    ReorderBuffer,
    StoreSetPredictor,
)
from repro.branch import BranchPredictor
from repro.core import kernel
from repro.core.config import CoreConfig
from repro.core.inflight import InFlight
from repro.core.kernel import DEADLOCK_LIMIT, NO_EVENT
from repro.core.stats import CoreStats, EventCounts
from repro.isa.instruction import DynInst
from repro.isa.opclass import FUType, FU_FOR_OPCLASS, LATENCY, OpClass
from repro.mem.hierarchy import CacheHierarchy
from repro.rename.prf import NEVER

#: FP arithmetic classes the commit stage counts (not FP loads/stores).
_FP_ARITH = frozenset({OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV})

#: Flat stall causes whose slot-tree leaf needs no per-cycle state
#: (see ``_topdown_leaf``; dcache_miss and branch_recovery are refined
#: there, retiring/squash slots are charged by the collector itself).
_TOPDOWN_LEAVES = {
    "iq_full": "backend_bound.core.iq_full",
    "rob_full": "backend_bound.core.rob_full",
    "lsq_full": "backend_bound.core.lsq_full",
    "prf_full": "backend_bound.core.prf_full",
    "operand_wait": "backend_bound.core.iq_not_ready",
    "icache_miss": "frontend_bound.icache_miss",
    "frontend_fill": "frontend_bound.queue_empty",
    "other": "backend_bound.core.other",
}


def memory_bound_leaf(hier, wait: int) -> str:
    """Bucket a load's total latency into the memory sub-tree.  The
    thresholds mirror CacheHierarchy's access results (+1 covers the
    issue->execute cycle): L1 hit <= 1+l1, L2 hit <= 1+l1+l2, else
    DRAM.  Store-forward hits (latency 1) land in l1d_bound."""
    if wait <= 1 + hier.l1_latency:
        return "backend_bound.memory.l1d_bound"
    if wait <= 1 + hier.l1_latency + hier.l2_latency:
        return "backend_bound.memory.l2_bound"
    return "backend_bound.memory.dram_bound"


class SimulationError(RuntimeError):
    """The pipeline wedged (a model bug, surfaced loudly)."""


class OutOfOrderCore:
    """Conventional out-of-order superscalar (BIG/HALF of Table I).

    Args:
        config: Table I parameters for this model.
        obs: Optional :class:`~repro.obs.Observability` bundle; when
            None (the default) the pipeline pays one ``is None`` test
            per cycle and collects nothing.
        validator: Optional :class:`~repro.validate.Validator`; same
            contract as ``obs`` — None (the default) costs one ``is
            None`` test per hook site and checks nothing.
    """

    def __init__(self, config: CoreConfig, obs=None, validator=None):
        if config.core_type != "ooo":
            raise ValueError("OutOfOrderCore requires an 'ooo' config")
        self.config = config
        self.predictor = BranchPredictor(
            pht_entries=config.pht_entries,
            btb_entries=config.btb_entries,
            ras_depth=config.ras_depth,
            kind=config.predictor_kind,
        )
        self.hierarchy = CacheHierarchy(config.hierarchy)
        # Renamer import is local to avoid a cycle with repro.rename docs.
        from repro.rename import Renamer

        self.renamer = Renamer(config.int_prf_entries,
                               config.fp_prf_entries)
        self.rob = ReorderBuffer(config.rob_entries)
        self.iq = IssueQueue(config.iq_entries, config.issue_width)
        self.lsq = LoadStoreQueue(config.lq_entries, config.sq_entries)
        self.store_sets = StoreSetPredictor()
        self.fu = {
            FUType.INT: FUPool(FUType.INT, config.fu_int),
            FUType.MEM: FUPool(FUType.MEM, config.fu_mem),
            FUType.FP: FUPool(FUType.FP, config.fu_fp),
        }
        self.oxu_bypass = BypassNetwork("oxu", config.total_oxu_fus)
        self.stats = CoreStats(model=config.name)
        # Fast-forward kernel state (see repro.core.kernel).  The PRF
        # ready lists are prebound per class once: they are mutated in
        # place and never rebound, so rename can pair each source preg
        # with its list for flat-column operand checks.
        self._ff = kernel.fastforward_enabled()
        self._ff_skipped = 0  # cycles jumped, not ticked
        self._max_cycles: Optional[int] = None
        self._ready_lists = {
            cls: prf.ready_cycles for cls, prf in self.renamer.prf.items()
        }
        # Pipeline state.
        self.cycle = 0
        self.trace: List[DynInst] = []
        self.fetch_idx = 0
        self.fetch_resume_cycle = 0
        self.waiting_branch: Optional[InFlight] = None
        self.rename_q: Deque[InFlight] = deque()
        self.dispatch_q: Deque[InFlight] = deque()
        self._completions: List[Tuple[int, int, InFlight]] = []
        self._completion_counter = 0
        # Event-driven wakeup (see _schedule_entry): entries whose
        # operand-arrival cycles are all known sit in the wake heap
        # keyed (wake_cycle, seq); entries waiting on an unscheduled
        # producer sit in per-preg waiter lists until the producer's
        # completion reveals its arrival cycle.  Woken entries move to
        # the age-ordered ready list the select loop scans — the loop
        # never touches entries that cannot issue yet.
        self._wake_heap: List[Tuple[int, int, InFlight]] = []
        self._ready_entries: List[Tuple[int, InFlight]] = []
        self._iq_waiters: Dict[Tuple, List[InFlight]] = {}
        self._last_fetched_line = -1
        self._last_commit_cycle = 0
        self._iq_reserved = 0
        # PRF read-port usage per cycle (shared with the IXU in FXA;
        # the OXU issues first each cycle and therefore has priority).
        self._prf_port_use: Dict[int, int] = {}
        # Only FXA consumes the per-cycle port ledger (its front-end
        # register-read competes with the OXU for shared read ports);
        # the plain OoO and clustered cores skip the bookkeeping.
        self._track_prf_ports = False
        # Observability (stall attribution state is kept even when obs
        # is off: the stores sit on cold paths and cost nothing).
        self._obs = obs
        self._pipeview = obs.pipeview if obs is not None else None
        self._stall_reason: Optional[str] = None
        self._fetch_stall_kind = ""
        if obs is not None:
            obs.attach(self)
        self._validator = validator
        if validator is not None:
            validator.attach(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, trace: List[DynInst],
            max_cycles: Optional[int] = None) -> CoreStats:
        """Simulate ``trace`` to completion and return statistics.

        The trace must be indexable by sequence number (``trace[i].seq
        == i``) because ordering-violation replay rewinds the cursor.
        """
        if trace and trace[0].seq != 0:
            raise ValueError("trace must start at seq 0")
        self.trace = trace
        self._max_cycles = max_cycles  # clamps the fast-forward jump
        trace_len = len(trace)
        rob_entries = self.rob._entries
        while self.fetch_idx < trace_len or rob_entries or self.rename_q:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            self._tick()
            if self.cycle - self._last_commit_cycle > DEADLOCK_LIMIT:
                raise SimulationError(
                    f"{self.config.name}: no commit for "
                    f"{DEADLOCK_LIMIT} cycles at cycle {self.cycle} "
                    f"(head={self.rob.head()!r})"
                )
        self.stats.cycles = self.cycle
        self._collect_events()
        if self._obs is not None:
            self._obs.finalize(self)
        if self._validator is not None:
            self._validator.finalize(self)
        return self.stats

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        # Each stage reports whether it moved any state; a tick where
        # nothing moved is provably repeatable and may fast-forward.
        completions = self._completions
        quiet = not completions or completions[0][0] > self.cycle
        if not quiet:
            self._process_completions()
        committed = self._commit()
        issued = self._issue()
        dispatched = self._dispatch()
        renamed = self._rename()
        fetch_moved = self._fetch()
        self.iq.sample_occupancy()
        if self._obs is not None:
            self._obs.on_cycle(self, committed)
        if self._validator is not None:
            self._validator.on_cycle(self, committed)
        self.cycle += 1
        if (
            self._ff
            and quiet
            and not committed
            and not issued
            and not dispatched
            and not renamed
            and not fetch_moved
        ):
            kernel.advance(self, self._last_commit_cycle)

    # ------------------------------------------------------------------
    # Event horizon (fast-forward kernel)
    # ------------------------------------------------------------------

    def _event_horizon(self) -> int:
        """Earliest future cycle at which any pipeline state can change.

        Only consulted on idle ticks.  Conservative thresholds (those
        that merely *might* unblock a stage) are always safe: they only
        shorten the jump.
        """
        cycle = self.cycle
        horizon = NO_EVENT
        completions = self._completions
        if completions:
            horizon = completions[0][0]
        resume = self.fetch_resume_cycle
        if cycle <= resume < horizon:
            horizon = resume
        fill = self.hierarchy.fill_horizon(cycle)
        if fill is not None and fill < horizon:
            horizon = fill
        if self.rename_q:
            ready = self.rename_q[0].rename_ready
            if cycle <= ready < horizon:
                horizon = ready
        if self.dispatch_q:
            due = self.dispatch_q[0].dispatch_cycle
            if cycle <= due < horizon:
                horizon = due
        iq_horizon = self._iq_horizon(cycle)
        if iq_horizon < horizon:
            horizon = iq_horizon
        return horizon

    def _iq_horizon(self, cycle: int) -> int:
        """Earliest cycle any issue-queue entry could become ready.

        The wake heap's head *is* that cycle: entries waiting on an
        unscheduled producer (arrival ``NEVER``) are not in the heap —
        their producer has yet to complete, which requires an earlier
        event already covered by the completion heap.  Entries in the
        ready list are ready *now* but blocked structurally; their
        unblocking likewise requires another covered event, so they
        contribute no threshold (this matches the former full scan's
        ``cycle <= threshold`` guard).
        """
        heap = self._wake_heap
        heappop = heapq.heappop
        while heap:
            wake, _, entry = heap[0]
            if entry.squashed or entry.issued:
                heappop(heap)
                continue
            if wake < cycle:
                # Only reachable on an active tick (dispatch runs after
                # issue); never on the idle ticks that fast-forward.
                return cycle
            return wake
        return NO_EVENT

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> bool:
        if self.cycle < self.fetch_resume_cycle:
            return False
        if self.waiting_branch is not None:
            return False
        config = self.config
        cycle = self.cycle
        trace = self.trace
        trace_len = len(trace)
        rename_q = self.rename_q
        fetch_width = config.fetch_width
        queue_depth = config.frontend_queue_depth
        line_bytes = config.hierarchy.line_bytes
        rename_lat = config.fetch_to_rename
        stats = self.stats
        fetch_idx = self.fetch_idx
        fetched = 0
        while (
            fetched < fetch_width
            and fetch_idx < trace_len
            and len(rename_q) < queue_depth
        ):
            inst = trace[fetch_idx]
            line = inst.pc // line_bytes
            if line != self._last_fetched_line:
                result = self.hierarchy.fetch(inst.pc)
                self._last_fetched_line = line
                if not result.l1_hit:
                    # Refill in flight: resume once the line arrives.
                    self.fetch_idx = fetch_idx
                    stats.fetched += fetched
                    self.fetch_resume_cycle = cycle + result.latency
                    self.hierarchy.note_refill(self.fetch_resume_cycle)
                    self._fetch_stall_kind = "icache"
                    return True
            entry = InFlight(inst, fetch_cycle=cycle)
            entry.rename_ready = cycle + rename_lat
            stop_after = False
            if inst.is_branch:
                stats.branches += 1
                entry.prediction = self.predictor.predict(inst)
                if not entry.prediction.correct_for(inst):
                    if (entry.prediction.taken and inst.taken
                            and entry.prediction.target is None):
                        # Direction right, BTB cold: the decoder computes
                        # the target — a short front-end redirect.
                        entry.btb_redirect = True
                        self.stats.btb_redirects += 1
                        self.fetch_resume_cycle = (
                            cycle + config.decode_redirect_latency
                        )
                        self._fetch_stall_kind = "redirect"
                    else:
                        entry.mispredicted = True
                        self.waiting_branch = entry
                    stop_after = True
                elif inst.taken and config.fetch_breaks_on_taken:
                    # Simple fetch units stop at a taken branch.
                    stop_after = True
            rename_q.append(entry)
            fetch_idx += 1
            fetched += 1
            if stop_after:
                break
        self.fetch_idx = fetch_idx
        stats.fetched += fetched
        return fetched > 0

    # ------------------------------------------------------------------
    # Rename
    # ------------------------------------------------------------------

    def _rename(self) -> int:
        self._stall_reason = None
        rename_q = self.rename_q
        if not rename_q:
            return 0
        cycle = self.cycle
        width = self.config.rename_width
        validator = self._validator
        ready_lists = self._ready_lists
        rob = self.rob
        rob_entries = rob._entries
        renamed = 0
        while rename_q and renamed < width:
            entry = rename_q[0]
            if entry.rename_ready > cycle:
                break
            eliminable = self._is_eliminable(entry.inst)
            if not self._rename_resources_ready(entry, eliminable):
                break
            rename_q.popleft()
            if eliminable:
                # RENO: the move becomes a rename-table update; it still
                # takes a ROB slot and commits, but never executes.
                entry.renamed = self.renamer.rename_move(entry.inst)
                entry.rename_cycle = cycle
                entry.complete_cycle = cycle
                if validator is not None:
                    validator.on_rename(self, entry)
                rob_entries.append(entry)
                rob.allocations += 1
                self._completion_counter += 1
                heapq.heappush(
                    self._completions,
                    (cycle, self._completion_counter, entry),
                )
                renamed += 1
                continue
            renamed_ops = self.renamer.rename(entry.inst)
            entry.renamed = renamed_ops
            entry.src_pairs = tuple(
                (ready_lists[cls], cls, preg)
                for cls, preg in renamed_ops.srcs
            )
            entry.rename_cycle = cycle
            if validator is not None:
                validator.on_rename(self, entry)
            rob_entries.append(entry)
            rob.allocations += 1
            inst = entry.inst
            if inst.is_load:
                self.lsq.insert_load(entry)
                # LFST is read in program order at rename: it holds the
                # youngest *older* store of the load's store set.
                entry.mem_dep = self.store_sets.load_dependency(inst.pc)
            elif inst.is_store:
                self.lsq.insert_store(entry)
                self.store_sets.store_dispatched(inst.pc, entry)
            self._after_rename(entry)
            renamed += 1
        return renamed

    def _is_eliminable(self, inst: DynInst) -> bool:
        """Is this a move the RENO extension can eliminate at rename?

        The op-class identity test leads: it rejects almost every
        instruction before any config attribute is touched.
        """
        return (
            inst.op is OpClass.MOV
            and self.config.move_elimination
            and inst.dest is not None
            and len(inst.srcs) == 1
            and inst.dest.cls is inst.srcs[0].cls
        )

    def _rename_resources_ready(self, entry: InFlight,
                                 eliminable: bool) -> bool:
        """Check every resource rename must secure for ``entry``.

        A failed check records which structure blocked rename this
        cycle (``_stall_reason``); the stall attributor charges the
        cycle to it when nothing commits.
        """
        inst = entry.inst
        rob = self.rob
        rob_full = len(rob._entries) >= rob.capacity
        if eliminable:
            if rob_full:  # needs no register, IQ or LSQ slot
                self._stall_reason = "rob_full"
                return False
            return True
        dest = inst.dest
        if (dest is not None
                and not self.renamer.free[dest.cls]._free):
            self._stall_reason = "prf_full"
            return False
        if rob_full:
            self._stall_reason = "rob_full"
            return False
        if inst.is_mem:
            lsq = self.lsq
            if inst.is_load:
                if not lsq.loads_free:
                    self._stall_reason = "lsq_full"
                    return False
            elif not lsq.stores_free:
                self._stall_reason = "lsq_full"
                return False
        if not self._iq_slot_available(entry):
            self._stall_reason = "iq_full"
            return False
        return True

    def _iq_slot_available(self, entry: InFlight) -> bool:
        """The plain OoO core reserves an IQ slot at rename."""
        return self.iq.free - self._iq_reserved > 0

    def _after_rename(self, entry: InFlight) -> None:
        """Hook: route the renamed instruction toward dispatch."""
        entry.dispatch_cycle = self.cycle + self.config.rename_to_dispatch
        self.dispatch_q.append(entry)
        self._iq_reserved += 1

    # ------------------------------------------------------------------
    # Dispatch (into the issue queue)
    # ------------------------------------------------------------------

    def _dispatch(self) -> int:
        dispatch_q = self.dispatch_q
        if not dispatch_q or dispatch_q[0].dispatch_cycle > self.cycle:
            return 0
        config = self.config
        cycle = self.cycle
        width = config.rename_width
        issue_lat = config.dispatch_to_issue
        iq_dispatch = self.iq.dispatch
        schedule = self._schedule_entry
        moved = 0
        dispatched = 0
        while dispatch_q and dispatched < width:
            entry = dispatch_q[0]
            if entry.dispatch_cycle > cycle:
                break
            dispatch_q.popleft()
            moved += 1
            if entry.squashed:
                continue
            self._iq_reserved -= 1
            entry.iq_cycle = cycle
            # issue_ready is final before dispatch: the wakeup engine
            # folds it into the entry's wake cycle on registration.
            entry.issue_ready = cycle + issue_lat
            iq_dispatch(entry)
            schedule(entry)
            dispatched += 1
        return moved

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _entry_wake(self, entry: InFlight) -> int:
        """Earliest cycle ``entry`` can issue, given every source
        arrival is known (all below ``NEVER``)."""
        wake = entry.issue_ready
        for ready_cycles, _cls, preg in entry.src_pairs:
            arrival = ready_cycles[preg]
            if arrival > wake:
                wake = arrival
        return wake

    def _schedule_entry(self, entry: InFlight) -> None:
        """Register a freshly-dispatched entry with the wakeup engine.

        If every source's arrival cycle is already known the entry goes
        straight onto the wake heap; otherwise it parks in the waiter
        list of each unscheduled source and is re-examined when that
        producer's completion announces the arrival cycle.
        """
        waiting = 0
        waiters = self._iq_waiters
        for ready_cycles, cls, preg in entry.src_pairs:
            if ready_cycles[preg] >= NEVER:
                bucket = waiters.get((cls, preg))
                if bucket is None:
                    waiters[(cls, preg)] = [entry]
                else:
                    bucket.append(entry)
                waiting += 1
        entry.wait_count = waiting
        if not waiting:
            heapq.heappush(
                self._wake_heap,
                (self._entry_wake(entry), entry.seq, entry),
            )

    def _wake_dependents(self, cls, preg: int) -> None:
        """A producer's arrival cycle is now known: re-examine waiters."""
        bucket = self._iq_waiters.pop((cls, preg), None)
        if bucket is None:
            return
        heappush = heapq.heappush
        wake_heap = self._wake_heap
        for entry in bucket:
            if entry.squashed or entry.issued:
                continue
            entry.wait_count -= 1
            if not entry.wait_count:
                heappush(
                    wake_heap,
                    (self._entry_wake(entry), entry.seq, entry),
                )

    def _scheduler_squash(self, boundary_seq: int) -> None:
        """Drop squashed entries from the wakeup structures.

        Waiter lists are cleaned lazily (squashed entries are skipped
        at wake time); the heap is filtered eagerly so the horizon peek
        stays cheap."""
        self._ready_entries = [
            item for item in self._ready_entries if not item[1].squashed
        ]
        heap = self._wake_heap
        for item in heap:
            if item[2].squashed:
                self._wake_heap = [
                    it for it in heap if not it[2].squashed
                ]
                heapq.heapify(self._wake_heap)
                break

    def _load_dependence_clear(self, entry: InFlight) -> bool:
        """Store-set check: may this load issue ahead of older stores?

        The dependency was captured at rename (LFST read in program
        order); the load waits until that store has executed.
        """
        dep = entry.mem_dep
        if dep is None:
            return True
        return dep.squashed or dep.mem_executed or dep.seq >= entry.seq

    def _issue(self) -> int:
        cycle = self.cycle
        heap = self._wake_heap
        ready = self._ready_entries
        if heap and heap[0][0] <= cycle:
            heappop = heapq.heappop
            while heap and heap[0][0] <= cycle:
                _, seq, entry = heappop(heap)
                if entry.squashed or entry.issued:
                    continue
                insort(ready, (seq, entry))
        if not ready:
            return 0
        # Age-ordered select over entries that are operand-ready *now*
        # (the wake heap guarantees it); only structural conditions —
        # FU ports, issue width, memory dependences — are re-checked.
        # ``ready`` is iterated live: a mid-loop squash is followed by
        # an immediate break, and the post-loop sweep rebuilds from the
        # (possibly rebound) attribute.
        issued = 0
        width = self.config.issue_width
        fu = self.fu
        iq = self.iq
        for _, entry in ready:
            if entry.squashed or entry.issued:
                continue
            inst = entry.inst
            if inst.is_load and not self._load_dependence_clear(entry):
                continue
            if not fu[inst.fu_type].try_issue(inst.op, cycle):
                continue
            iq.note_issue()
            entry.issued = True
            issued += 1
            self._execute(entry, cycle, in_ixu=False)
            if entry.squashed:
                # An ordering violation squashed younger state; restart
                # next cycle.
                break
            if issued >= width:
                break
        if issued:
            iq.remove_issued()
            self._ready_entries = [
                item for item in self._ready_entries
                if not item[1].issued and not item[1].squashed
            ]
        return issued

    def _execute(self, entry: InFlight, cycle: int, in_ixu: bool) -> None:
        """Begin execution at ``cycle``; schedules the completion."""
        inst = entry.inst
        entry.issue_cycle = cycle
        if not in_ixu and entry.renamed is not None:
            # Register-read stage after issue (counts PRF read ports).
            srcs = entry.renamed.srcs
            if srcs:
                prf = self.renamer.prf
                if self._track_prf_ports:
                    port_use = self._prf_port_use
                    claimed = port_use.get(cycle, 0)
                    for cls, preg in srcs:
                        prf[cls].read(preg)
                        claimed += 1
                    port_use[cycle] = claimed
                    if len(port_use) > 64:
                        self._prf_port_use = {
                            c: n for c, n in port_use.items()
                            if c >= cycle
                        }
                else:
                    for cls, preg in srcs:
                        prf[cls].reads += 1
        if inst.is_load:
            forwarded = self.lsq.execute_load(entry, in_ixu)
            if forwarded:
                self.stats.forwarded_loads += 1
                latency = 2  # AGU + store-queue forward
            else:
                result = self.hierarchy.load(inst.mem_addr)
                latency = 1 + result.latency
            complete = cycle + latency
        elif inst.is_store:
            violator = self.lsq.execute_store(entry, in_ixu)
            self.store_sets.store_executed(inst.pc, entry)
            complete = cycle + 1
            if violator is not None:
                self._handle_violation(violator, entry)
            if self._validator is not None:
                # After recovery: surviving younger executed loads to
                # this address are missed ordering violations.
                self._validator.on_store_executed(self, entry, in_ixu)
        else:
            complete = cycle + inst.latency
        entry.complete_cycle = complete
        renamed = entry.renamed
        if renamed is not None and renamed.dest is not None:
            self._bypass_network(in_ixu).broadcast()
        counter = self._completion_counter + 1
        self._completion_counter = counter
        heapq.heappush(self._completions, (complete, counter, entry))

    def _bypass_network(self, in_ixu: bool) -> BypassNetwork:
        return self.oxu_bypass

    def _claim_prf_port(self, cycle: int) -> None:
        """The OXU takes a shared PRF read port unconditionally."""
        self._prf_port_use[cycle] = self._prf_port_use.get(cycle, 0) + 1
        if len(self._prf_port_use) > 64:
            self._prf_port_use = {
                c: n for c, n in self._prf_port_use.items() if c >= cycle
            }

    def _prf_port_free(self, cycle: int) -> bool:
        """Is a shared PRF read port left for the front end this cycle?"""
        used = self._prf_port_use.get(cycle, 0)
        return used < self.config.prf_read_ports

    # ------------------------------------------------------------------
    # Completion / writeback
    # ------------------------------------------------------------------

    def _process_completions(self) -> None:
        completions = self._completions
        if not completions or completions[0][0] > self.cycle:
            return
        cycle = self.cycle
        heappop = heapq.heappop
        prf_map = self.renamer.prf
        while completions and completions[0][0] <= cycle:
            _, _, entry = heappop(completions)
            if entry.squashed:
                continue
            entry.done = True
            renamed = entry.renamed
            if (renamed is not None and renamed.dest is not None
                    and not renamed.eliminated):
                dest = renamed.dest
                dest_cls = renamed.dest_cls
                # Inlined PRF mark_ready/mark_written (hot path).
                prf = prf_map[dest_cls]
                prf.ready_cycles[dest] = entry.complete_cycle
                prf.writes += 1
                prf._written[dest] = self._prf_write_cycle(entry)
                self._wake_dependents(dest_cls, dest)
                if not entry.executed_in_ixu:
                    # Completing producers broadcast their tag into the IQ.
                    self.iq.broadcast_wakeup()
            if entry.inst.is_branch:
                self._resolve_branch(entry)

    def _prf_write_cycle(self, entry: InFlight) -> int:
        """Cycle the result is readable from the PRF (writeback + 1)."""
        return entry.complete_cycle + 1

    def _resolve_branch(self, entry: InFlight) -> None:
        self.predictor.resolve(entry.inst, entry.prediction)
        if entry.mispredicted:
            self.stats.mispredictions += 1
            if entry.executed_in_ixu:
                self.stats.mispredictions_resolved_in_ixu += 1
            self._charge_wrongpath(entry)
        if self.waiting_branch is entry:
            self.waiting_branch = None
            self.fetch_resume_cycle = self.cycle + 1

    def _charge_wrongpath(self, entry: InFlight) -> None:
        """Estimate wrong-path FU work for one misprediction.

        The model fetches no wrong path, but real cores execute down it
        until resolution; the deeper/wider the window, the more flushed
        work (the reason LITTLE's FU energy is lowest in Figure 8b).  We
        charge half the issue bandwidth over the resolution window.
        """
        window = max(
            0, self.cycle - entry.fetch_cycle - self.config.fetch_to_rename
        )
        self.stats.events.wrongpath_ops += (
            0.5 * self.config.issue_width * window
        )

    # ------------------------------------------------------------------
    # Memory-ordering violation: squash and replay
    # ------------------------------------------------------------------

    def _handle_violation(self, load_entry: InFlight,
                          store_entry: InFlight) -> None:
        self.stats.violations += 1
        self.store_sets.train_violation(load_entry.inst.pc,
                                        store_entry.inst.pc)
        self._squash_after(load_entry.seq - 1)
        if self._validator is not None:
            self._validator.on_violation(self, load_entry, store_entry)

    def _squash_after(self, boundary_seq: int) -> None:
        """Squash every instruction younger than ``boundary_seq`` and
        rewind the trace cursor to refetch them."""
        removed = self.rob.squash_younger_than(boundary_seq)
        pipeview = self._pipeview
        for entry in removed:  # youngest first
            entry.squashed = True
            self.stats.squashed += 1
            if entry.inst.is_store:
                self.store_sets.store_squashed(entry.inst.pc, entry)
            self.renamer.squash(entry.renamed)
            if pipeview is not None:
                pipeview.record(entry, self.cycle, flushed=True)
        self.iq.squash_younger_than(boundary_seq)
        self._scheduler_squash(boundary_seq)
        self.lsq.squash_younger_than(boundary_seq)
        for queue in (self.rename_q, self.dispatch_q):
            for entry in queue:
                if entry.seq > boundary_seq:
                    # Renamed entries were already flush-recorded by the
                    # ROB sweep above; only pre-rename ones are new here.
                    if pipeview is not None and not entry.squashed:
                        pipeview.record(entry, self.cycle, flushed=True)
                    entry.squashed = True
        self.rename_q = deque(
            e for e in self.rename_q if not e.squashed
        )
        kept_dispatch = deque()
        for entry in self.dispatch_q:
            if entry.squashed:
                self._iq_reserved -= 1
            else:
                kept_dispatch.append(entry)
        self.dispatch_q = kept_dispatch
        if (self.waiting_branch is not None
                and self.waiting_branch.seq > boundary_seq):
            self.waiting_branch = None
        self._squash_hook(boundary_seq)
        if self._validator is not None:
            self._validator.on_squash(self, boundary_seq)
        self.fetch_idx = boundary_seq + 1
        self.fetch_resume_cycle = self.cycle + 1
        self._last_fetched_line = -1

    def _squash_hook(self, boundary_seq: int) -> None:
        """Hook for subclasses (FXA clears the IXU pipe)."""

    # ------------------------------------------------------------------
    # Stall attribution (read by repro.obs on zero-commit cycles)
    # ------------------------------------------------------------------

    def _stall_cause(self) -> str:
        """Why did this cycle commit nothing?  One taxonomy cause.

        Priority order: a rename stall on a full backend structure wins
        (window pressure is the actionable signal), then the ROB head's
        execution state, then front-end conditions.
        """
        reason = self._stall_reason
        if reason is not None:
            return reason
        head = self.rob.head()
        if head is not None:
            if not head.done:
                if head.mispredicted:
                    return "branch_recovery"
                if head.issued:
                    if head.inst.is_load:
                        return "dcache_miss"
                    return "operand_wait"
                if head.issue_ready < 0:
                    return "frontend_fill"  # still in dispatch transit
                return "operand_wait"
            return "other"  # done, but writeback/commit-timing limited
        if self.waiting_branch is not None:
            return "branch_recovery"
        if self.cycle < self.fetch_resume_cycle:
            if self._fetch_stall_kind == "icache":
                return "icache_miss"
            return "branch_recovery"
        return "frontend_fill"

    # ------------------------------------------------------------------
    # Top-down slot refinement (read by repro.obs.topdown; never feeds
    # back into simulation, so the flat _stall_cause taxonomy above —
    # pinned by the stall-report tests — is left untouched)
    # ------------------------------------------------------------------

    def _topdown_width(self) -> int:
        """Slots per cycle the top-down tree accounts (commit
        bandwidth on the backend cores)."""
        return self.config.commit_width

    def _memory_bound_leaf(self, entry: Optional[InFlight]) -> str:
        """Classify a stalled load by its *frozen* total latency
        (complete - issue cycle), never the remaining wait: the frozen
        value is constant while the load is in flight, so serial ticks
        and bulk fast-forward replay attribute identically."""
        if entry is None or entry.complete_cycle < 0 \
                or entry.issue_cycle < 0:
            return "backend_bound.memory.l1d_bound"
        return memory_bound_leaf(
            self.config.hierarchy,
            entry.complete_cycle - entry.issue_cycle)

    def _topdown_leaf(self, cause: str) -> str:
        """Map a flat stall cause to its slot-tree leaf, refining the
        two causes that fold distinct bottlenecks together:
        ``dcache_miss`` splits by the ROB-head load's miss level, and
        ``branch_recovery`` splits decode-redirect bubbles (frontend)
        from misprediction recovery (bad speculation)."""
        if cause == "dcache_miss":
            return self._memory_bound_leaf(self.rob.head())
        if cause == "branch_recovery":
            if (self.waiting_branch is None and self.rob.head() is None
                    and self._fetch_stall_kind == "redirect"):
                return "frontend_bound.redirect"
            return "bad_speculation.branch_recovery"
        return _TOPDOWN_LEAVES.get(cause, "backend_bound.core.other")

    def _on_commit(self, entry: InFlight) -> None:
        """Hook for subclasses (FXA records IXU-execution statistics)."""

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self) -> int:
        rob_entries = self.rob._entries
        cycle = self.cycle
        stats = self.stats
        pipeview = self._pipeview
        renamer = self.renamer
        refcounts = renamer._refcount
        free_lists = renamer.free
        validator = self._validator
        committed = 0
        width = self.config.commit_width
        while committed < width and rob_entries:
            head = rob_entries[0]
            if not head.done or head.complete_cycle > cycle:
                break
            rob_entries.popleft()
            inst = head.inst
            if inst.is_mem:
                if inst.is_store:
                    self.hierarchy.store(inst.mem_addr)
                    stats.committed_stores += 1
                else:
                    stats.committed_loads += 1
                self.lsq.commit(head)
            elif inst.is_branch:
                stats.committed_branches += 1
            elif inst.op in _FP_ARITH:
                stats.committed_fp += 1
            renamed = head.renamed
            old_dest = renamed.old_dest
            if renamed.dest_cls is not None and old_dest is not None:
                # Inlined Renamer.commit/_release (hot path): drop the
                # previous mapping's reference, reclaim at zero.
                refcount = refcounts[renamed.dest_cls]
                remaining = refcount[old_dest] - 1
                refcount[old_dest] = remaining
                if remaining == 0:
                    free_lists[renamed.dest_cls].release(old_dest)
                elif remaining < 0:
                    raise RuntimeError(
                        f"refcount underflow on {renamed.dest_cls} "
                        f"p{old_dest}"
                    )
            self._on_commit(head)
            if validator is not None:
                validator.on_commit(self, head)
            if pipeview is not None:
                pipeview.record(head, cycle, flushed=False)
            stats.committed += 1
            committed += 1
            self._last_commit_cycle = cycle
        return committed

    # ------------------------------------------------------------------
    # Event collection for the energy model
    # ------------------------------------------------------------------

    def snapshot_events(self) -> EventCounts:
        """Fresh :class:`EventCounts` read from the live counters.

        Callable mid-run (the timeline collector deltas successive
        snapshots at interval boundaries) as well as at the end of the
        run; each call builds a new object, so calling it twice never
        double-counts.  ``wrongpath_ops`` is the one count accumulated
        on ``stats.events`` during the run rather than on a live
        structure, so it is copied across.
        """
        events = EventCounts()
        events.cycles = self.cycle
        events.wrongpath_ops = self.stats.events.wrongpath_ops
        events.fetched = self.stats.fetched
        events.decoded = self.stats.fetched
        events.iq_dispatches = self.iq.dispatches
        events.iq_issues = self.iq.issues
        events.iq_wakeup_broadcasts = self.iq.wakeup_broadcasts
        events.iq_cam_compares = self.iq.wakeup_cam_compares
        events.lsq_writes = self.lsq.stats.writes
        events.lsq_searches = self.lsq.stats.searches
        events.lsq_omitted_writes = self.lsq.stats.omitted_load_writes
        events.lsq_omitted_searches = (
            self.lsq.stats.omitted_violation_searches
        )
        prf = self.renamer.prf
        events.prf_reads = sum(p.reads for p in prf.values())
        events.prf_writes = sum(p.writes for p in prf.values())
        events.scoreboard_reads = sum(
            s.reads for s in self.renamer.scoreboard.values()
        )
        events.rat_reads = sum(
            r.reads for r in self.renamer.rat.values()
        )
        events.rat_writes = sum(
            r.writes for r in self.renamer.rat.values()
        )
        events.rob_allocations = self.rob.allocations
        events.moves_eliminated = self.renamer.moves_eliminated
        events.fu_int_ops = self.fu[FUType.INT].executions
        events.fu_mem_ops = self.fu[FUType.MEM].executions
        events.fu_fp_ops = self.fu[FUType.FP].executions
        events.oxu_bypass_broadcasts = self.oxu_bypass.broadcasts
        events.predictor_lookups = self.predictor.lookups
        events.btb_lookups = self.predictor.lookups
        l1i, l1d, l2 = (self.hierarchy.l1i, self.hierarchy.l1d,
                        self.hierarchy.l2)
        events.l1i_accesses = l1i.stats.accesses
        events.l1i_misses = l1i.stats.misses
        events.l1d_accesses = l1d.stats.accesses
        events.l1d_misses = l1d.stats.misses
        events.l2_accesses = l2.stats.accesses
        events.l2_misses = l2.stats.misses
        events.mem_accesses = self.hierarchy.mem_accesses
        events.prefetches = self.hierarchy.prefetches
        return events

    def _collect_events(self) -> None:
        self.stats.events = self.snapshot_events()
        self.stats.iq_mean_occupancy = self.iq.mean_occupancy
        self.stats.forwarded_loads = self.lsq.stats.forwarded_loads

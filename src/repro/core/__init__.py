"""Core models: configurations and the three pipeline implementations.

* :class:`OutOfOrderCore` — the conventional physical-register-file
  superscalar of Figure 1 (models BIG and HALF).
* :class:`InOrderCore` — the little in-order superscalar (LITTLE).
* :class:`FXACore` — the paper's contribution: an out-of-order core with
  an in-order execution unit in the front end (BIG+FX / HALF+FX).

Presets mirror Table I; ``build_core("HALF+FX")`` returns a ready model.
"""

from repro.core.config import ClusterConfig, CoreConfig, IXUConfig
from repro.core.inflight import InFlight
from repro.core.stats import CoreStats, EventCounts
from repro.core.ooo import OutOfOrderCore, SimulationError
from repro.core.inorder import InOrderCore
from repro.core.clustered import ClusteredCore
from repro.core.fxa import FXACore
from repro.core.presets import (
    MODEL_NAMES,
    big_config,
    ca_config,
    big_fx_config,
    build_core,
    half_config,
    half_fx_config,
    little_config,
    model_config,
)

__all__ = [
    "ClusterConfig",
    "ClusteredCore",
    "CoreConfig",
    "IXUConfig",
    "ca_config",
    "InFlight",
    "CoreStats",
    "EventCounts",
    "OutOfOrderCore",
    "InOrderCore",
    "FXACore",
    "SimulationError",
    "MODEL_NAMES",
    "big_config",
    "half_config",
    "little_config",
    "big_fx_config",
    "half_fx_config",
    "build_core",
    "model_config",
]

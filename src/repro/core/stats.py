"""Simulation result records: timing statistics and energy event counts.

Both records round-trip through plain dicts (``to_dict``/``from_dict``)
so the disk cache and the CLI ``--json`` output share one codepath.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict


@dataclass
class EventCounts:
    """Raw access/event counts the energy model prices.

    Every count is an *occurrence* total over the simulated interval; the
    energy model multiplies each by a per-event energy that scales with
    the priced structure's geometry (capacity × ports).
    """

    cycles: int = 0
    fetched: int = 0
    decoded: int = 0
    # Issue queue.
    iq_dispatches: int = 0
    iq_issues: int = 0
    iq_wakeup_broadcasts: int = 0
    iq_cam_compares: int = 0
    # Load/store queue.
    lsq_writes: int = 0
    lsq_searches: int = 0
    lsq_omitted_writes: int = 0
    lsq_omitted_searches: int = 0
    # Register files and rename.
    prf_reads: int = 0
    prf_writes: int = 0
    scoreboard_reads: int = 0
    rat_reads: int = 0
    rat_writes: int = 0
    rob_allocations: int = 0
    # Execution.
    fu_int_ops: int = 0
    fu_mem_ops: int = 0
    fu_fp_ops: int = 0
    ixu_ops: int = 0
    ixu_mem_ops: int = 0
    oxu_bypass_broadcasts: int = 0
    intercluster_forwards: int = 0
    moves_eliminated: int = 0
    ixu_bypass_broadcasts: int = 0
    wrongpath_ops: float = 0.0
    # Front end.
    predictor_lookups: int = 0
    btb_lookups: int = 0
    # Memory hierarchy.
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    mem_accesses: int = 0
    prefetches: int = 0

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "EventCounts":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def delta(self, since: "EventCounts") -> "EventCounts":
        """Field-wise ``self - since``: the events of the interval
        between two snapshots (used by the timeline collector)."""
        return EventCounts(**{
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in fields(self)
        })


@dataclass
class CoreStats:
    """Timing results of one simulation run."""

    model: str = ""
    benchmark: str = ""
    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    # Branches.
    branches: int = 0
    mispredictions: int = 0
    mispredictions_resolved_in_ixu: int = 0
    btb_redirects: int = 0
    # Memory ordering.
    violations: int = 0
    squashed: int = 0
    forwarded_loads: int = 0
    # IXU execution profile (paper Section IV-A / Figure 12).
    ixu_executed: int = 0
    ixu_category_a: int = 0      # ready when entering the IXU
    ixu_category_b: int = 0      # became ready through IXU bypassing
    ixu_by_stage: Dict[int, int] = field(default_factory=dict)
    ixu_mem_ops: int = 0
    ixu_branches: int = 0
    # Committed mix.
    committed_loads: int = 0
    committed_stores: int = 0
    committed_fp: int = 0
    committed_branches: int = 0
    # Backend occupancy.
    iq_mean_occupancy: float = 0.0
    # Observability extras (populated only when the run was observed by
    # a repro.obs.Observability bundle; empty dicts otherwise so the
    # record's shape — and its JSON round trip — never varies).
    stalls: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, Dict] = field(default_factory=dict)
    events: EventCounts = field(default_factory=EventCounts)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.committed / self.cycles

    @property
    def ixu_executed_rate(self) -> float:
        """Fraction of committed instructions executed in the IXU
        (the paper's Figure 12 metric)."""
        if not self.committed:
            return 0.0
        return self.ixu_executed / self.committed

    @property
    def misprediction_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def stall_cycles(self) -> int:
        """Total attributed stall cycles (0 unless the run was observed).

        By construction every zero-commit cycle is charged to exactly
        one cause, so this always equals the number of cycles in which
        nothing committed.
        """
        return sum(self.stalls.values())

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable).

        ``ixu_by_stage`` keys become strings so the dict survives a JSON
        round trip unchanged; :meth:`from_dict` converts them back.
        """
        data = asdict(self)
        data["events"] = self.events.to_dict()
        data["ixu_by_stage"] = {
            str(k): v for k, v in self.ixu_by_stage.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CoreStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["events"] = EventCounts.from_dict(data.get("events", {}))
        kwargs["ixu_by_stage"] = {
            int(k): v for k, v in data.get("ixu_by_stage", {}).items()
        }
        return cls(**kwargs)

    def summary(self) -> str:
        """One-line human summary."""
        parts = [
            f"{self.model or 'core'} on {self.benchmark or '?'}:",
            f"IPC {self.ipc:.3f}",
            f"({self.committed} insts / {self.cycles} cycles)",
        ]
        if self.ixu_executed:
            parts.append(f"IXU rate {self.ixu_executed_rate:.1%}")
        return " ".join(parts)

"""Core configuration dataclasses (Table I parameters).

Pipeline-depth parameters are expressed as stage-to-stage latencies; they
are chosen so that the effective branch-misprediction penalties match
Table I (11 cycles for the out-of-order models, 8 for LITTLE) and so that
an OXU-resolved misprediction in FXA pays the extra IXU depth while an
IXU-resolved one pays roughly half the penalty (paper Section IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.mem.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class IXUConfig:
    """In-order execution unit parameters.

    Attributes:
        stage_fus: FUs per IXU stage; the paper's default is ``(3, 1, 1)``
            (three FUs in the first stage, one in each later stage —
            Section VI-B).
        bypass_stage_limit: Maximum stage distance operand bypassing
            reaches ("opt" = 2, Section III-A2); None means the full
            network.
        execute_mem_ops: Whether the IXU may execute loads/stores subject
            to memory-port arbitration (Section II-D3).
        execute_branches: Whether the IXU resolves branches early
            (Section II-D1).
    """

    stage_fus: Tuple[int, ...] = (3, 1, 1)
    bypass_stage_limit: Optional[int] = 2
    execute_mem_ops: bool = True
    execute_branches: bool = True

    def __post_init__(self) -> None:
        if not self.stage_fus:
            raise ValueError("IXU needs at least one stage")
        if any(n < 0 for n in self.stage_fus):
            raise ValueError("stage FU counts cannot be negative")
        if self.bypass_stage_limit is not None and self.bypass_stage_limit < 1:
            raise ValueError("bypass limit must be >= 1 stage")

    @property
    def depth(self) -> int:
        """Number of IXU stages."""
        return len(self.stage_fus)

    @property
    def total_fus(self) -> int:
        """Total FUs in the IXU (5 for the paper's [3,1,1])."""
        return sum(self.stage_fus)


@dataclass(frozen=True)
class ClusterConfig:
    """Clustered-architecture parameters (paper Section VII-A).

    The comparison point for FXA: an Alpha 21264-style machine whose
    execution core is split into clusters, each with its own integer FUs
    and issue bandwidth.  Bypassing *within* a cluster is free; a value
    crossing clusters costs ``inter_cluster_delay`` extra cycles, which
    is why CA needs careful instruction steering while FXA does not.

    Attributes:
        count: Number of clusters.
        issue_width_per_cluster: Issue slots per cluster per cycle.
        int_fus_per_cluster: Integer FUs private to each cluster
            (memory and FP units stay shared).
        inter_cluster_delay: Extra cycles for cross-cluster operands.
        steering: "dependence" steers an instruction to its producer's
            cluster (falling back to the least-loaded); "roundrobin"
            ignores dependences.
    """

    count: int = 2
    issue_width_per_cluster: int = 2
    int_fus_per_cluster: int = 1
    inter_cluster_delay: int = 1
    steering: str = "dependence"

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ValueError("a clustered core needs >= 2 clusters")
        if self.steering not in ("dependence", "roundrobin"):
            raise ValueError(f"unknown steering {self.steering!r}")
        if self.inter_cluster_delay < 0:
            raise ValueError("inter_cluster_delay cannot be negative")


@dataclass(frozen=True)
class CoreConfig:
    """One core model's microarchitectural parameters."""

    name: str
    core_type: str                      # "ooo" | "inorder"
    fetch_width: int = 3
    rename_width: int = 3
    issue_width: int = 4
    commit_width: int = 4
    iq_entries: int = 64
    rob_entries: int = 128
    int_prf_entries: int = 128
    fp_prf_entries: int = 96
    lq_entries: int = 32
    sq_entries: int = 32
    fu_int: int = 2
    fu_mem: int = 2
    fu_fp: int = 2
    pht_entries: int = 4096
    btb_entries: int = 512
    ras_depth: int = 16
    #: Direction predictor: "gshare" (Table I), "bimodal", "tournament".
    predictor_kind: str = "gshare"
    #: PRF read ports shared between the OXU and (in FXA) the front-end
    #: register-read stage; the OXU has priority (paper Section II-A),
    #: so the IXU captures an operand only when a port is left free.
    #: Eight matches the paper's observation that the shared ports do
    #: not throttle the front end in practice (Section III-B).
    prf_read_ports: int = 8
    #: RENO-style move elimination at rename (paper Section VII-C, an
    #: extension the paper says composes with FXA).
    move_elimination: bool = False
    # Pipeline-depth latencies (cycles between stages).
    fetch_to_rename: int = 5
    rename_to_dispatch: int = 1
    dispatch_to_issue: int = 2
    decode_redirect_latency: int = 3
    frontend_queue_depth: int = 16
    #: Whether a correctly-predicted taken branch ends the fetch group.
    #: The wide OoO front ends (BTB-redirected, two blocks per cycle)
    #: fetch through; the little core's simpler fetch unit breaks.
    fetch_breaks_on_taken: bool = False
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    ixu: Optional[IXUConfig] = None
    clusters: Optional[ClusterConfig] = None

    def __post_init__(self) -> None:
        if self.core_type not in ("ooo", "inorder"):
            raise ValueError(f"unknown core type {self.core_type!r}")
        if self.core_type == "inorder" and self.ixu is not None:
            raise ValueError("the IXU attaches to out-of-order cores only")
        if self.clusters is not None and self.ixu is not None:
            raise ValueError("a core is clustered or FXA, not both")
        if self.clusters is not None and self.core_type != "ooo":
            raise ValueError("clusters attach to out-of-order cores only")
        for attr in ("fetch_width", "issue_width", "commit_width"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    @property
    def has_ixu(self) -> bool:
        """True for FXA models."""
        return self.ixu is not None

    @property
    def total_oxu_fus(self) -> int:
        """FUs on the OXU bypass network (int + mem + fp)."""
        return self.fu_int + self.fu_mem + self.fu_fp

    @property
    def mispredict_depth(self) -> int:
        """Approximate effective misprediction penalty in cycles.

        Front-end refill plus issue/execute/redirect overhead; lands on
        Table I's 11 cycles (out-of-order) and 8 cycles (in-order), and
        grows by the IXU depth + 1 for OXU-resolved branches in FXA
        (paper Section IV-B2).
        """
        if self.core_type == "inorder":
            return self.fetch_to_rename + 3
        depth = (self.fetch_to_rename + self.rename_to_dispatch
                 + self.dispatch_to_issue + 3)
        if self.ixu is not None:
            # +1 front-end register-read stage, + IXU stages.
            depth += 1 + self.ixu.depth
        return depth

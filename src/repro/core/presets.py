"""Model presets after Table I (ARM big.LITTLE-inspired configurations).

* **BIG** — Cortex-A57-like 3-fetch/4-issue out-of-order core: the
  baseline every figure normalises against.
* **HALF** — BIG with the IQ's width and capacity halved.
* **LITTLE** — Cortex-A53-like 2-wide in-order core.
* **HALF+FX** — the paper's FXA proposal: HALF plus a 3-stage [3,1,1]
  IXU with the "opt" bypass network.
* **BIG+FX** — BIG plus the same IXU.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple, Union

from repro.core.config import ClusterConfig, CoreConfig, IXUConfig
from repro.core.clustered import ClusteredCore
from repro.core.fxa import FXACore
from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore

MODEL_NAMES: Tuple[str, ...] = (
    "LITTLE", "BIG", "BIG+FX", "HALF", "HALF+FX"
)

#: The paper's IXU: three stages, [3,1,1] FUs, bypass limited to two
#: stages (Section VI-B).
PAPER_IXU = IXUConfig(stage_fus=(3, 1, 1), bypass_stage_limit=2)


def big_config() -> CoreConfig:
    """BIG: the out-of-order baseline (Table I left column)."""
    return CoreConfig(
        name="BIG",
        core_type="ooo",
        fetch_width=3,
        rename_width=3,
        issue_width=4,
        commit_width=4,
        iq_entries=64,
        rob_entries=128,
        int_prf_entries=128,
        fp_prf_entries=96,
        lq_entries=32,
        sq_entries=32,
        fu_int=2,
        fu_mem=2,
        fu_fp=2,
    )


def half_config() -> CoreConfig:
    """HALF: BIG with the IQ width and capacity halved."""
    return replace(big_config(), name="HALF", issue_width=2,
                   iq_entries=32)


def little_config() -> CoreConfig:
    """LITTLE: the in-order core (Table I right column)."""
    return CoreConfig(
        name="LITTLE",
        core_type="inorder",
        fetch_width=2,
        rename_width=2,
        issue_width=2,
        commit_width=2,
        iq_entries=1,       # unused by the in-order pipeline
        rob_entries=1,      # unused
        fu_int=2,
        fu_mem=1,
        fu_fp=1,
        fetch_to_rename=5,  # fetch-to-issue: ~8-cycle mispredict penalty
        fetch_breaks_on_taken=True,
    )


def half_fx_config(ixu: IXUConfig = PAPER_IXU) -> CoreConfig:
    """HALF+FX: the paper's FXA proposal."""
    return replace(half_config(), name="HALF+FX", ixu=ixu)


def big_fx_config(ixu: IXUConfig = PAPER_IXU) -> CoreConfig:
    """BIG+FX: FXA with the full-size IQ."""
    return replace(big_config(), name="BIG+FX", ixu=ixu)


def ca_config(steering: str = "dependence") -> CoreConfig:
    """CA: a clustered comparator with BIG-equivalent resources.

    Two Alpha 21264-style clusters, each 2-issue with one private
    integer FU, sharing the memory/FP units — the related-work design
    Section VII-A argues FXA improves upon.
    """
    return replace(
        big_config(),
        name="CA",
        clusters=ClusterConfig(
            count=2,
            issue_width_per_cluster=2,
            int_fus_per_cluster=1,
            inter_cluster_delay=1,
            steering=steering,
        ),
    )


def model_config(name: str) -> CoreConfig:
    """Look up a model configuration by name (Table I models + "CA")."""
    factories = {
        "BIG": big_config,
        "HALF": half_config,
        "LITTLE": little_config,
        "HALF+FX": half_fx_config,
        "BIG+FX": big_fx_config,
        "CA": ca_config,
    }
    try:
        return factories[name]()
    except KeyError:
        known = ", ".join(MODEL_NAMES)
        raise KeyError(f"unknown model {name!r}; known: {known}") from None


def build_core(spec: Union[str, CoreConfig], obs=None, validator=None):
    """Instantiate the right core class for a model name or config.

    ``obs`` is an optional :class:`repro.obs.Observability` bundle; the
    returned core collects metrics/stalls/pipeline traces into it.
    ``validator`` is an optional :class:`repro.validate.Validator`; the
    returned core runs under differential + invariant checking.
    """
    config = model_config(spec) if isinstance(spec, str) else spec
    if config.core_type == "inorder":
        return InOrderCore(config, obs, validator)
    if config.has_ixu:
        return FXACore(config, obs, validator)
    if config.clusters is not None:
        return ClusteredCore(config, obs, validator)
    return OutOfOrderCore(config, obs, validator)

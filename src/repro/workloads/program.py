"""Block-structured synthetic static program synthesis.

A :class:`SyntheticProgram` is a loop nest of basic blocks plus a small set
of callable function blocks.  Each static instruction carries fixed logical
registers (so dependence structure is stable across loop iterations, as in
real code), an optional memory-stream binding, and — for branches — a
behaviour descriptor that the trace generator samples outcomes from.

Control-flow shape:

* Every basic block ends in a *loop branch*: taken re-enters the block
  (conditional backward branch), not-taken falls through to the next block;
  the last block wraps to the first (the outer loop).
* Mid-block conditional branches are *hammocks*: when taken they skip a few
  following instructions of the same block.  A profile-controlled fraction
  of them have data-dependent (random) outcomes.
* Some blocks end by calling a function block, which returns — this
  exercises the return-address stack.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.isa.opclass import OpClass
from repro.isa.registers import Reg, RegClass, fp_reg, int_reg
from repro.workloads.profiles import BenchmarkProfile

#: Base address for code; instruction PCs are 4-byte spaced from here.
CODE_BASE = 0x0040_0000
#: Base address for data; streams are laid out upward from here.
DATA_BASE = 0x1000_0000

#: Rotating destination registers (r0/f0 .. _NUM_ROT-1); higher-numbered
#: registers up to 29 are long-lived "far" values, 30 is the stack-ish
#: base register, 31 is the zero register (never used).
_NUM_ROT = 28
_FAR_REGS = tuple(range(_NUM_ROT, 30))
_BASE_REG = 30


class StreamKind(enum.Enum):
    """Memory access pattern of a stream."""

    SEQ = "seq"        # sequential walk, fixed stride
    RAND = "rand"      # uniform random within the working set
    STACK = "stack"    # small hot region with store->load reuse


class BranchKind(enum.Enum):
    """Behaviour class of a static branch."""

    LOOP = "loop"          # block back-edge, geometric trip count
    HAMMOCK = "hammock"    # forward skip, biased outcome
    RANDOM = "random"      # forward skip, data-dependent outcome
    UNCOND = "uncond"      # always-taken direct jump (to next block)
    CALL = "call"          # direct call to a function block
    RET = "ret"            # return from a function block


@dataclass(frozen=True)
class BranchBehavior:
    """Outcome model for a static branch.

    ``taken_prob`` is used by HAMMOCK/RANDOM branches; LOOP branches use
    the owning block's trip count; UNCOND/CALL/RET are always taken.
    """

    kind: BranchKind
    taken_prob: float = 0.5
    skip: int = 0          # instructions skipped when a hammock is taken
    callee: int = -1       # function-block index for CALL


@dataclass(frozen=True)
class MemStream:
    """A memory reference stream with its own region and pattern."""

    kind: StreamKind
    base: int
    size: int              # bytes
    stride: int = 8


@dataclass(frozen=True)
class StaticInst:
    """One static instruction of the synthetic program."""

    pc: int
    op: OpClass
    dest: Optional[Reg] = None
    srcs: Tuple[Reg, ...] = ()
    stream_id: int = -1                  # memory stream binding
    mem_size: int = 8
    branch: Optional[BranchBehavior] = None


@dataclass(frozen=True)
class BasicBlock:
    """A straight-line block ending in a control transfer."""

    index: int
    insts: Tuple[StaticInst, ...]
    loop_trip_mean: float

    @property
    def pc(self) -> int:
        """Address of the first instruction."""
        return self.insts[0].pc


@dataclass(frozen=True)
class SyntheticProgram:
    """Static program: loop blocks, function blocks, memory streams."""

    profile: BenchmarkProfile
    blocks: Tuple[BasicBlock, ...]
    functions: Tuple[BasicBlock, ...]
    streams: Tuple[MemStream, ...]

    @property
    def static_size(self) -> int:
        """Total static instruction count."""
        return sum(len(b.insts) for b in self.blocks) + sum(
            len(f.insts) for f in self.functions
        )


class _RegisterAllocator:
    """Assigns destinations round-robin and sources by static distance.

    Keeps the history of (class, register) producers in static program
    order; a source at distance *d* reads the register written by the
    d-th most recent producer of the right class, which — once blocks
    loop — yields stable inter- and intra-iteration dependence chains.
    """

    def __init__(self, rng: random.Random, profile: BenchmarkProfile):
        self._rng = rng
        self._profile = profile
        self._next_rot = {RegClass.INT: 0, RegClass.FP: 0}
        self._history = {RegClass.INT: [], RegClass.FP: []}

    def alloc_dest(self, cls: RegClass) -> Reg:
        """Allocate the next rotating destination register of ``cls``."""
        idx = self._next_rot[cls]
        self._next_rot[cls] = (idx + 1) % _NUM_ROT
        reg = int_reg(idx) if cls is RegClass.INT else fp_reg(idx)
        self._history[cls].append(reg)
        if len(self._history[cls]) > 4 * _NUM_ROT:
            del self._history[cls][0]
        return reg

    def pick_src(self, cls: RegClass) -> Reg:
        """Pick a source register of ``cls`` per the profile's dep model."""
        prof = self._profile
        history = self._history[cls]
        if not history or self._rng.random() < prof.far_src_frac:
            index = self._rng.choice(_FAR_REGS)
            return (
                int_reg(index) if cls is RegClass.INT else fp_reg(index)
            )
        # distance ~ 1 + Geometric(dep_geo_p): 1 is the latest producer.
        distance = 1
        while (
            self._rng.random() > prof.dep_geo_p
            and distance < len(history)
        ):
            distance += 1
        return history[-distance]


def _build_streams(
    profile: BenchmarkProfile, rng: random.Random
) -> List[MemStream]:
    """Lay out the benchmark's memory streams in the data region."""
    streams: List[MemStream] = []
    ws_bytes = profile.working_set_kb * 1024
    cursor = DATA_BASE
    n_seq = max(1, round(6 * profile.seq_stream_frac))
    n_rand = max(1, 6 - n_seq)
    # The bulk of the working set streams sequentially (prefetchable);
    # random references scatter over per-stream hot regions whose size
    # is the profile's rand_hot_kb knob.
    seq_size = max(4096, ws_bytes // max(1, n_seq))
    rand_size = max(4096, profile.rand_hot_kb * 1024)
    for _ in range(n_seq):
        stride = rng.choice((4, 8, 8, 16))
        streams.append(
            MemStream(StreamKind.SEQ, base=cursor, size=seq_size,
                      stride=stride)
        )
        cursor += seq_size
    for _ in range(n_rand):
        streams.append(
            MemStream(StreamKind.RAND, base=cursor, size=rand_size)
        )
        cursor += rand_size
    # A small hot "stack" region shared by every benchmark: spills/refills
    # give store-to-load forwarding and order-violation opportunities.
    streams.append(MemStream(StreamKind.STACK, base=cursor, size=1024))
    return streams


def _sample_opclass(
    profile: BenchmarkProfile, rng: random.Random
) -> OpClass:
    """Sample a non-branch op class from the normalised mix."""
    mix = profile.mix.normalised()
    weights = (
        (OpClass.INT_ALU, mix.int_alu),
        (OpClass.INT_MUL, mix.int_mul),
        (OpClass.INT_DIV, mix.int_div),
        (OpClass.FP_ADD, mix.fp_add),
        (OpClass.FP_MUL, mix.fp_mul),
        (OpClass.FP_DIV, mix.fp_div),
        (OpClass.LOAD, mix.load),
        (OpClass.STORE, mix.store),
    )
    total = sum(w for _, w in weights)
    point = rng.random() * total
    acc = 0.0
    for op, weight in weights:
        acc += weight
        if point < acc:
            return op
    return OpClass.INT_ALU


def _make_body_inst(
    pc: int,
    op: OpClass,
    alloc: _RegisterAllocator,
    profile: BenchmarkProfile,
    rng: random.Random,
    streams: Sequence[MemStream],
) -> StaticInst:
    """Build one non-branch static instruction at ``pc``."""
    if op in (OpClass.LOAD, OpClass.STORE):
        is_fp_data = rng.random() < profile.fp_mem_frac
        data_cls = RegClass.FP if is_fp_data else RegClass.INT
        if op is OpClass.LOAD:
            op = OpClass.FP_LOAD if is_fp_data else OpClass.LOAD
        else:
            op = OpClass.FP_STORE if is_fp_data else OpClass.STORE
        stream_id = _pick_stream(profile, rng, streams)
        # Most addresses are computed (pointers, induction variables);
        # the rest are frame/global accesses off the base register.
        if rng.random() < 0.75:
            addr_src = alloc.pick_src(RegClass.INT)
        else:
            addr_src = int_reg(_BASE_REG)
        if op in (OpClass.LOAD, OpClass.FP_LOAD):
            dest = alloc.alloc_dest(data_cls)
            return StaticInst(pc=pc, op=op, dest=dest, srcs=(addr_src,),
                              stream_id=stream_id)
        data_src = alloc.pick_src(data_cls)
        return StaticInst(pc=pc, op=op, srcs=(addr_src, data_src),
                          stream_id=stream_id)
    if op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV):
        dest = alloc.alloc_dest(RegClass.FP)
        srcs = (alloc.pick_src(RegClass.FP), alloc.pick_src(RegClass.FP))
        return StaticInst(pc=pc, op=op, dest=dest, srcs=srcs)
    # Rarely, an ALU op refreshes a long-lived ("far") register so those
    # values are genuinely long-lived rather than permanently ready.
    if rng.random() < 0.03:
        dest = int_reg(rng.choice(_FAR_REGS))
    else:
        dest = alloc.alloc_dest(RegClass.INT)
    # A share of integer ops are plain register moves — the instructions
    # a RENO-style rename optimizer can eliminate (paper Section VII-C).
    if op is OpClass.INT_ALU and rng.random() < 0.08:
        return StaticInst(pc=pc, op=OpClass.MOV, dest=dest,
                          srcs=(alloc.pick_src(RegClass.INT),))
    n_srcs = 2 if rng.random() < 0.65 else 1
    srcs = tuple(alloc.pick_src(RegClass.INT) for _ in range(n_srcs))
    return StaticInst(pc=pc, op=op, dest=dest, srcs=srcs)


def _pick_stream(
    profile: BenchmarkProfile,
    rng: random.Random,
    streams: Sequence[MemStream],
) -> int:
    """Choose a stream index: seq vs rand by profile, ~10% stack."""
    if rng.random() < 0.10:
        return len(streams) - 1  # stack stream is last
    seq_ids = [i for i, s in enumerate(streams)
               if s.kind is StreamKind.SEQ]
    rand_ids = [i for i, s in enumerate(streams)
                if s.kind is StreamKind.RAND]
    if rng.random() < profile.seq_stream_frac and seq_ids:
        return rng.choice(seq_ids)
    if rand_ids:
        return rng.choice(rand_ids)
    return rng.choice(seq_ids)


def _block_length(profile: BenchmarkProfile, rng: random.Random) -> int:
    """Sample a block body length (excluding the terminating branch)."""
    mean = profile.block_len_mean
    length = round(rng.gauss(mean, mean / 4.0))
    return max(3, min(int(length), 40))


def build_program(
    profile: BenchmarkProfile, seed: int = 0
) -> SyntheticProgram:
    """Synthesise the static program for ``profile``.

    The same (profile, seed) pair always yields an identical program, so a
    benchmark's trace is reproducible across models and processes.
    """
    rng = random.Random(f"{profile.name}:{seed}")
    alloc = _RegisterAllocator(rng, profile)
    streams = _build_streams(profile, rng)

    mix = profile.mix.normalised()

    n_functions = max(1, profile.num_blocks // 16)
    pc = CODE_BASE
    blocks: List[BasicBlock] = []
    functions: List[BasicBlock] = []

    def build_block(
        index: int, terminator: BranchKind, callee: int = -1
    ) -> BasicBlock:
        nonlocal pc
        insts: List[StaticInst] = []
        length = _block_length(profile, rng)
        # Branch budget: the block executes length body slots plus one
        # terminating branch per iteration; hammocks make up whatever the
        # mix asks for beyond that one terminator.
        want_branches = mix.branch * (length + 1)
        hammock_prob = max(0.0, want_branches - 1.0) / length
        for pos in range(length):
            if rng.random() < hammock_prob and pos < length - 1:
                is_random = rng.random() < (
                    profile.branch_random_frac / max(mix.branch, 1e-9)
                )
                skip = rng.randint(1, min(3, length - 1 - pos))
                behavior = BranchBehavior(
                    kind=(BranchKind.RANDOM if is_random
                          else BranchKind.HAMMOCK),
                    taken_prob=(0.5 if is_random
                                else rng.choice((0.02, 0.05, 0.95, 0.98))),
                    skip=skip,
                )
                srcs = (alloc.pick_src(RegClass.INT),)
                insts.append(
                    StaticInst(pc=pc, op=OpClass.BR_COND, srcs=srcs,
                               branch=behavior)
                )
            else:
                op = _sample_opclass(profile, rng)
                insts.append(
                    _make_body_inst(pc, op, alloc, profile, rng, streams)
                )
            pc += 4
        # Terminator.
        if terminator is BranchKind.LOOP:
            behavior = BranchBehavior(kind=BranchKind.LOOP)
            srcs = (alloc.pick_src(RegClass.INT),)
            insts.append(
                StaticInst(pc=pc, op=OpClass.BR_COND, srcs=srcs,
                           branch=behavior)
            )
        elif terminator is BranchKind.CALL:
            behavior = BranchBehavior(kind=BranchKind.CALL, callee=callee)
            insts.append(
                StaticInst(pc=pc, op=OpClass.CALL, branch=behavior)
            )
        elif terminator is BranchKind.RET:
            behavior = BranchBehavior(kind=BranchKind.RET)
            insts.append(
                StaticInst(pc=pc, op=OpClass.RET, branch=behavior)
            )
        else:
            behavior = BranchBehavior(kind=BranchKind.UNCOND)
            insts.append(
                StaticInst(pc=pc, op=OpClass.BR_UNCOND, branch=behavior)
            )
        pc += 4
        trip = max(1.5, rng.gauss(profile.loop_trip_mean,
                                  profile.loop_trip_mean / 3.0))
        return BasicBlock(index=index, insts=tuple(insts),
                          loop_trip_mean=trip)

    for i in range(profile.num_blocks):
        # Roughly one block in eight ends with a call instead of a loop.
        if n_functions and i % 8 == 5:
            callee = rng.randrange(n_functions)
            blocks.append(build_block(i, BranchKind.CALL, callee=callee))
        else:
            blocks.append(build_block(i, BranchKind.LOOP))
    for i in range(n_functions):
        functions.append(build_block(i, BranchKind.RET))

    return SyntheticProgram(
        profile=profile,
        blocks=tuple(blocks),
        functions=tuple(functions),
        streams=tuple(streams),
    )

"""Synthetic SPEC CPU2006-like workloads.

The paper evaluates all 29 SPEC CPU2006 programs (ref inputs, 100 M
instructions after a 4 G skip) on Alpha binaries.  SPEC binaries and traces
cannot be redistributed, so this package substitutes seeded synthetic
workloads: each benchmark is described by a :class:`BenchmarkProfile`
(instruction mix, dependence-distance distribution, branch predictability,
memory working set and access patterns), from which a block-structured
static program is synthesised and a dynamic trace generated.  The profiles
are calibrated so the *relative* behaviours the paper leans on are present
(libquantum/gromacs are >80 % INT-operation streams, mcf is memory-bound,
FP programs average ≈31 % FP arithmetic, ...).
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    Mix,
    get_profile,
    list_benchmarks,
    INT_BENCHMARKS,
    FP_BENCHMARKS,
    ALL_BENCHMARKS,
)
from repro.workloads.program import (
    BasicBlock,
    BranchBehavior,
    BranchKind,
    MemStream,
    StaticInst,
    StreamKind,
    SyntheticProgram,
    build_program,
)
from repro.workloads.generator import (
    TraceGenerator,
    generate_trace,
    renumber_trace,
    trace_mix,
)
from repro.workloads.io import (
    TraceFormatError,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
)

__all__ = [
    "BenchmarkProfile",
    "Mix",
    "get_profile",
    "list_benchmarks",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "ALL_BENCHMARKS",
    "BasicBlock",
    "BranchBehavior",
    "BranchKind",
    "MemStream",
    "StaticInst",
    "StreamKind",
    "SyntheticProgram",
    "build_program",
    "TraceGenerator",
    "generate_trace",
    "renumber_trace",
    "trace_mix",
    "TraceFormatError",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "save_trace",
]

"""Dynamic trace generation from a synthetic static program.

The generator walks the program's control flow, sampling loop trip counts,
hammock outcomes and memory stream addresses from a seeded RNG, and emits
:class:`~repro.isa.DynInst` records.  The same (benchmark, seed, length)
triple always yields an identical trace, so every core model sees the same
dynamic instruction stream — the property the paper's relative-IPC
methodology depends on.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.isa.instruction import DynInst
from repro.isa.opclass import OpClass, is_branch, is_fp, is_mem
from repro.workloads.profiles import get_profile
from repro.workloads.program import (
    BasicBlock,
    BranchKind,
    MemStream,
    StaticInst,
    StreamKind,
    SyntheticProgram,
    build_program,
)


class _StreamState:
    """Mutable cursor over one memory stream."""

    def __init__(self, stream: MemStream, rng: random.Random):
        self._stream = stream
        self._rng = rng
        self._cursor = 0
        # Tight reuse window: loads re-read *recent* stores so that
        # store-to-load forwarding and ordering hazards occur while the
        # store is still in flight (a 32-entry store queue).
        self._recent_stores: Deque[int] = deque(maxlen=3)

    def next_addr(self, is_store: bool) -> int:
        """Produce the next effective address on this stream."""
        stream = self._stream
        if stream.kind is StreamKind.SEQ:
            addr = stream.base + (self._cursor * stream.stride) % stream.size
            self._cursor += 1
            return addr
        if stream.kind is StreamKind.RAND:
            slots = stream.size // 8
            return stream.base + 8 * self._rng.randrange(slots)
        # STACK: stores populate a small hot set; loads mostly re-read it,
        # creating store-to-load forwarding and ordering hazards.
        slots = stream.size // 8
        if is_store:
            addr = stream.base + 8 * self._rng.randrange(slots)
            self._recent_stores.append(addr)
            return addr
        if self._recent_stores and self._rng.random() < 0.6:
            return self._recent_stores[-1 - self._rng.randrange(
                len(self._recent_stores))]
        return stream.base + 8 * self._rng.randrange(slots)


class TraceGenerator:
    """Walks a :class:`SyntheticProgram` and emits dynamic instructions."""

    def __init__(self, program: SyntheticProgram, seed: int = 0):
        self._program = program
        self._rng = random.Random(f"{program.profile.name}:dyn:{seed}")
        self._streams = [
            _StreamState(s, self._rng) for s in program.streams
        ]
        self._seq = 0
        # Data-dependent ("random") branches are Markov-correlated: real
        # hard branches repeat their last outcome more often than not.
        self._last_outcome: Dict[int, bool] = {}
        # Control-flow cursor.
        self._block_idx = 0
        self._inst_idx = 0
        self._in_function: Optional[BasicBlock] = None
        self._return_block = 0
        self._trips_left = self._sample_trips(program.blocks[0])

    def _sample_trips(self, block: BasicBlock) -> int:
        """Trip count for one visit of ``block``'s loop.

        Trip counts are fixed per block (sampled once at program build):
        loop exits are then periodic, which is what lets a history-based
        predictor learn them — the property real loop branches have.
        """
        return max(1, round(block.loop_trip_mean))

    def _current_block(self) -> BasicBlock:
        if self._in_function is not None:
            return self._in_function
        return self._program.blocks[self._block_idx]

    def _enter_block(self, index: int) -> None:
        self._block_idx = index % len(self._program.blocks)
        self._inst_idx = 0
        self._in_function = None
        self._trips_left = self._sample_trips(
            self._program.blocks[self._block_idx]
        )

    def _emit(self, static: StaticInst, **overrides) -> DynInst:
        inst = DynInst(
            seq=self._seq,
            pc=static.pc,
            op=static.op,
            dest=static.dest,
            srcs=static.srcs,
            **overrides,
        )
        self._seq += 1
        return inst

    def _step(self) -> DynInst:
        """Advance one dynamic instruction."""
        block = self._current_block()
        static = block.insts[self._inst_idx]

        if is_mem(static.op):
            stream = self._streams[static.stream_id]
            addr = stream.next_addr(
                static.op in (OpClass.STORE, OpClass.FP_STORE)
            )
            self._inst_idx += 1
            return self._emit(static, mem_addr=addr,
                              mem_size=static.mem_size)

        if not is_branch(static.op):
            self._inst_idx += 1
            return self._emit(static)

        behavior = static.branch
        assert behavior is not None
        if behavior.kind in (BranchKind.HAMMOCK, BranchKind.RANDOM):
            if behavior.kind is BranchKind.RANDOM:
                last = self._last_outcome.get(static.pc)
                if last is None or self._rng.random() >= 0.75:
                    taken = self._rng.random() < behavior.taken_prob
                else:
                    taken = last
                self._last_outcome[static.pc] = taken
            else:
                taken = self._rng.random() < behavior.taken_prob
            if taken:
                target = static.pc + 4 * (behavior.skip + 1)
                self._inst_idx += behavior.skip + 1
                return self._emit(static, taken=True, target=target)
            self._inst_idx += 1
            return self._emit(static, taken=False)

        if behavior.kind is BranchKind.LOOP:
            if self._trips_left > 1:
                self._trips_left -= 1
                self._inst_idx = 0
                return self._emit(static, taken=True, target=block.pc)
            inst = self._emit(static, taken=False)
            self._enter_block(self._block_idx + 1)
            return inst

        if behavior.kind is BranchKind.CALL:
            callee = self._program.functions[behavior.callee]
            inst = self._emit(static, taken=True, target=callee.pc)
            self._return_block = self._block_idx + 1
            self._in_function = callee
            self._inst_idx = 0
            return inst

        if behavior.kind is BranchKind.RET:
            target_block = self._program.blocks[
                self._return_block % len(self._program.blocks)
            ]
            inst = self._emit(static, taken=True, target=target_block.pc)
            self._enter_block(self._return_block)
            return inst

        # UNCOND: jump to the next block.
        next_block = self._program.blocks[
            (self._block_idx + 1) % len(self._program.blocks)
        ]
        inst = self._emit(static, taken=True, target=next_block.pc)
        self._enter_block(self._block_idx + 1)
        return inst

    def generate(self, n: int) -> List[DynInst]:
        """Generate the next ``n`` dynamic instructions."""
        return [self._step() for _ in range(n)]


def generate_trace(
    benchmark: str, n: int, seed: int = 0
) -> List[DynInst]:
    """Build the program for ``benchmark`` and generate ``n`` instructions.

    Convenience entry point used by experiments and examples.
    """
    profile = get_profile(benchmark)
    program = build_program(profile, seed=seed)
    return TraceGenerator(program, seed=seed).generate(n)


def renumber_trace(trace: List[DynInst]) -> List[DynInst]:
    """Re-sequence a trace slice so it starts at seq 0.

    Core models require ``trace[i].seq == i`` (ordering-violation replay
    rewinds by sequence number); use this on the measurement portion when
    a warm-up prefix was drawn from the same generator.
    """
    return [
        DynInst(seq=i, pc=inst.pc, op=inst.op, dest=inst.dest,
                srcs=inst.srcs, mem_addr=inst.mem_addr,
                mem_size=inst.mem_size, taken=inst.taken,
                target=inst.target)
        for i, inst in enumerate(trace)
    ]


def trace_mix(trace: List[DynInst]) -> Dict[str, float]:
    """Measure the category mix of a generated trace.

    Returns fractions for: int_ops (paper's "INT operations"), fp_ops,
    loads, stores, branches — useful for validating profiles.
    """
    if not trace:
        return {"int_ops": 0.0, "fp_ops": 0.0, "loads": 0.0,
                "stores": 0.0, "branches": 0.0}
    n = len(trace)
    fp_ops = sum(1 for i in trace if is_fp(i.op))
    loads = sum(1 for i in trace if i.is_load)
    stores = sum(1 for i in trace if i.is_store)
    branches = sum(1 for i in trace if i.is_branch)
    int_ops = n - fp_ops - loads - stores
    return {
        "int_ops": int_ops / n,
        "fp_ops": fp_ops / n,
        "loads": loads / n,
        "stores": stores / n,
        "branches": branches / n,
    }

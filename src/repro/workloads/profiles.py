"""Per-benchmark workload profiles for the 29 SPEC CPU2006 programs.

Each profile parameterises the synthetic program builder.  The numbers are
*synthetic approximations*: they are chosen so that the population of
workloads reproduces the aggregate properties the paper reports (average FP
ratio of FP programs ~31 %, libquantum/gromacs >80 % INT operations, mcf
memory-bound, ...), not to match any particular instruction-level profile
of the real binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Mix:
    """Instruction-class mix as fractions; normalised on access.

    ``branch`` covers conditional branches; a fixed share of control
    transfers is additionally emitted as unconditional branches and
    call/return pairs by the program builder.
    """

    int_alu: float
    int_mul: float = 0.0
    int_div: float = 0.0
    fp_add: float = 0.0
    fp_mul: float = 0.0
    fp_div: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0

    def normalised(self) -> "Mix":
        """Return a copy whose fields sum to exactly 1.0."""
        total = (
            self.int_alu + self.int_mul + self.int_div
            + self.fp_add + self.fp_mul + self.fp_div
            + self.load + self.store + self.branch
        )
        if total <= 0:
            raise ValueError("mix must have positive total weight")
        return Mix(
            int_alu=self.int_alu / total,
            int_mul=self.int_mul / total,
            int_div=self.int_div / total,
            fp_add=self.fp_add / total,
            fp_mul=self.fp_mul / total,
            fp_div=self.fp_div / total,
            load=self.load / total,
            store=self.store / total,
            branch=self.branch / total,
        )

    @property
    def fp_fraction(self) -> float:
        """Fraction of FP arithmetic in the (normalised) mix."""
        norm = self.normalised()
        return norm.fp_add + norm.fp_mul + norm.fp_div

    @property
    def int_operation_fraction(self) -> float:
        """Paper Section VI-C "INT operations": ALU + mul/div + branches."""
        norm = self.normalised()
        return norm.int_alu + norm.int_mul + norm.int_div + norm.branch


@dataclass(frozen=True)
class BenchmarkProfile:
    """Everything the synthetic program builder needs for one benchmark.

    Attributes:
        name: SPEC-style short name (e.g. ``"libquantum"``).
        suite: ``"int"`` or ``"fp"``.
        mix: Instruction-class mix.
        fp_mem_frac: Fraction of loads/stores that move FP data.
        dep_geo_p: Geometric parameter of the producer-consumer static
            distance distribution.  Larger values mean tighter dependence
            chains (less ILP).
        far_src_frac: Probability a source reads a long-lived value that
            is already architecturally available (the paper's category (a)
            operands).
        branch_random_frac: Fraction of conditional branches whose outcome
            is data-dependent (hard to predict).
        loop_trip_mean: Mean trip count of block loops.
        working_set_kb: Data working-set size; drives cache miss rates.
        seq_stream_frac: Fraction of memory references on sequential
            streams (the rest walk the working set randomly).
        rand_hot_kb: Size of each *random* stream's region.  Most
            programs scatter over a hot subset that caches well; the
            memory-bound ones (mcf, omnetpp, ...) override it with
            multi-megabyte regions that defeat the L2.
        num_blocks: Static basic blocks; drives code footprint / L1I.
        block_len_mean: Mean instructions per basic block.
        description: One-line human note about the calibration intent.
    """

    name: str
    suite: str
    mix: Mix
    fp_mem_frac: float = 0.0
    dep_geo_p: float = 0.20
    far_src_frac: float = 0.10
    branch_random_frac: float = 0.02
    loop_trip_mean: float = 24.0
    working_set_kb: int = 1024
    seq_stream_frac: float = 0.5
    rand_hot_kb: int = 24
    num_blocks: int = 48
    block_len_mean: float = 9.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"unknown suite {self.suite!r}")
        if not 0.0 <= self.fp_mem_frac <= 1.0:
            raise ValueError("fp_mem_frac must be in [0, 1]")
        if not 0.0 < self.dep_geo_p < 1.0:
            raise ValueError("dep_geo_p must be in (0, 1)")


def _int(name: str, mix: Mix, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, suite="int", mix=mix, **kw)


def _fp(name: str, mix: Mix, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, suite="fp", mix=mix, **kw)


_PROFILES: Tuple[BenchmarkProfile, ...] = (
    # ---------------- SPEC CPU2006 INT ----------------
    _int("astar", Mix(int_alu=0.42, int_mul=0.01, load=0.28, store=0.08,
                      branch=0.21),
         dep_geo_p=0.250, branch_random_frac=0.05, rand_hot_kb=256, working_set_kb=2048,
         seq_stream_frac=0.30, num_blocks=40,
         description="path-finding; mispredict-heavy, pointer-ish memory"),
    _int("bzip2", Mix(int_alu=0.45, int_mul=0.01, load=0.26, store=0.11,
                      branch=0.17),
         dep_geo_p=0.225, branch_random_frac=0.03, rand_hot_kb=128, working_set_kb=4096,
         seq_stream_frac=0.50, num_blocks=36,
         description="compression; medium ILP, medium working set"),
    _int("gcc", Mix(int_alu=0.40, int_mul=0.01, load=0.26, store=0.13,
                    branch=0.20),
         dep_geo_p=0.225, branch_random_frac=0.022, rand_hot_kb=96, working_set_kb=2048,
         seq_stream_frac=0.40, num_blocks=160, block_len_mean=7.0,
         description="compiler; big code footprint, many branches"),
    _int("gobmk", Mix(int_alu=0.42, int_mul=0.01, load=0.25, store=0.10,
                      branch=0.22),
         dep_geo_p=0.240, branch_random_frac=0.04, working_set_kb=192,
         seq_stream_frac=0.40, num_blocks=96, block_len_mean=7.0,
         description="go engine; branchy, hard-to-predict"),
    _int("h264ref", Mix(int_alu=0.50, int_mul=0.03, load=0.28, store=0.10,
                        branch=0.09),
         dep_geo_p=0.150, far_src_frac=0.14, branch_random_frac=0.015,
         working_set_kb=384, seq_stream_frac=0.70, num_blocks=44,
         block_len_mean=12.0,
         description="video encode; high ILP, predictable"),
    _int("hmmer", Mix(int_alu=0.48, load=0.31, store=0.12, branch=0.09),
         dep_geo_p=0.140, far_src_frac=0.15, branch_random_frac=0.008,
         working_set_kb=96, seq_stream_frac=0.80, num_blocks=24,
         block_len_mean=14.0, loop_trip_mean=40.0,
         description="profile HMM search; loop-dominated, very high ILP"),
    _int("libquantum",
         Mix(int_alu=0.60, int_mul=0.005, load=0.12, store=0.05,
             branch=0.225),
         dep_geo_p=0.110, far_src_frac=0.16, branch_random_frac=0.004,
         working_set_kb=16384, seq_stream_frac=0.95, num_blocks=12,
         block_len_mean=10.0, loop_trip_mean=64.0,
         description=">80% INT operations, streaming; paper's +67% case"),
    _int("mcf", Mix(int_alu=0.30, int_mul=0.01, load=0.36, store=0.09,
                    branch=0.24),
         dep_geo_p=0.275, branch_random_frac=0.035, rand_hot_kb=8192, working_set_kb=32768,
         seq_stream_frac=0.15, num_blocks=28,
         description="network simplex; memory-bound pointer chasing"),
    _int("omnetpp", Mix(int_alu=0.35, int_mul=0.01, load=0.30, store=0.15,
                        branch=0.19),
         dep_geo_p=0.250, branch_random_frac=0.028, rand_hot_kb=1536, working_set_kb=8192,
         seq_stream_frac=0.25, num_blocks=88, block_len_mean=7.0,
         description="discrete event sim; heap-heavy"),
    _int("perlbench", Mix(int_alu=0.40, int_mul=0.005, load=0.27,
                          store=0.14, branch=0.185),
         dep_geo_p=0.230, branch_random_frac=0.02, working_set_kb=1024,
         seq_stream_frac=0.45, num_blocks=120, block_len_mean=7.0,
         description="perl interpreter; big code, indirect-ish control"),
    _int("sjeng", Mix(int_alu=0.45, int_mul=0.01, load=0.22, store=0.08,
                      branch=0.24),
         dep_geo_p=0.240, branch_random_frac=0.045, working_set_kb=192,
         seq_stream_frac=0.40, num_blocks=64,
         description="chess engine; branchy"),
    _int("xalancbmk", Mix(int_alu=0.38, int_mul=0.005, load=0.305,
                          store=0.10, branch=0.215),
         dep_geo_p=0.240, branch_random_frac=0.02, rand_hot_kb=384, working_set_kb=4096,
         seq_stream_frac=0.35, num_blocks=140, block_len_mean=6.0,
         description="XSLT; big code footprint, pointer chasing"),
    # ---------------- SPEC CPU2006 FP ----------------
    _fp("GemsFDTD", Mix(int_alu=0.13, fp_add=0.20, fp_mul=0.20,
                        fp_div=0.01, load=0.28, store=0.13, branch=0.05),
        fp_mem_frac=0.80, dep_geo_p=0.175, rand_hot_kb=1024, working_set_kb=32768,
        seq_stream_frac=0.80, num_blocks=20, block_len_mean=14.0,
        loop_trip_mean=48.0,
        description="FDTD solver; streaming, memory-bound"),
    _fp("bwaves", Mix(int_alu=0.12, fp_add=0.22, fp_mul=0.22, fp_div=0.01,
                      load=0.28, store=0.10, branch=0.05),
        fp_mem_frac=0.85, dep_geo_p=0.160, working_set_kb=16384,
        seq_stream_frac=0.90, num_blocks=16, block_len_mean=16.0,
        loop_trip_mean=64.0,
        description="blast waves; dense loops, streaming"),
    _fp("cactusADM", Mix(int_alu=0.09, fp_add=0.26, fp_mul=0.24,
                         fp_div=0.02, load=0.25, store=0.10, branch=0.04),
        fp_mem_frac=0.85, dep_geo_p=0.175, working_set_kb=8192,
        seq_stream_frac=0.85, num_blocks=14, block_len_mean=18.0,
        loop_trip_mean=48.0,
        description="numerical relativity; max FP ratio (~52%)"),
    _fp("calculix", Mix(int_alu=0.28, fp_add=0.16, fp_mul=0.15,
                        fp_div=0.01, load=0.24, store=0.08, branch=0.08),
        fp_mem_frac=0.60, dep_geo_p=0.200, working_set_kb=1024,
        seq_stream_frac=0.70, num_blocks=40,
        description="structural FEM; mixed INT/FP"),
    _fp("dealII", Mix(int_alu=0.30, fp_add=0.14, fp_mul=0.13, fp_div=0.01,
                      load=0.26, store=0.08, branch=0.08),
        fp_mem_frac=0.55, dep_geo_p=0.210, rand_hot_kb=96, working_set_kb=2048,
        seq_stream_frac=0.60, num_blocks=72, block_len_mean=8.0,
        description="adaptive FEM; C++, mixed"),
    _fp("gamess", Mix(int_alu=0.25, fp_add=0.19, fp_mul=0.18, fp_div=0.01,
                      load=0.24, store=0.07, branch=0.06),
        fp_mem_frac=0.70, dep_geo_p=0.190, working_set_kb=256,
        seq_stream_frac=0.70, num_blocks=48,
        description="quantum chemistry; cache-resident"),
    _fp("gromacs", Mix(int_alu=0.61, int_mul=0.01, fp_add=0.03,
                       fp_mul=0.02, load=0.09, store=0.04, branch=0.20),
        fp_mem_frac=0.30, dep_geo_p=0.120, far_src_frac=0.15,
        branch_random_frac=0.008, working_set_kb=1024,
        seq_stream_frac=0.75, num_blocks=24, loop_trip_mean=40.0,
        description=">80% INT operations despite FP suite; paper callout"),
    _fp("lbm", Mix(int_alu=0.07, fp_add=0.23, fp_mul=0.22, fp_div=0.01,
                   load=0.26, store=0.18, branch=0.03),
        fp_mem_frac=0.90, dep_geo_p=0.165, working_set_kb=32768,
        seq_stream_frac=0.95, num_blocks=10, block_len_mean=20.0,
        loop_trip_mean=96.0,
        description="lattice Boltzmann; pure streaming"),
    _fp("leslie3d", Mix(int_alu=0.15, fp_add=0.20, fp_mul=0.19,
                        fp_div=0.01, load=0.28, store=0.12, branch=0.05),
        fp_mem_frac=0.80, dep_geo_p=0.175, rand_hot_kb=256, working_set_kb=16384,
        seq_stream_frac=0.85, num_blocks=18, block_len_mean=14.0,
        loop_trip_mean=48.0,
        description="turbulence CFD; streaming"),
    _fp("milc", Mix(int_alu=0.13, fp_add=0.20, fp_mul=0.19, fp_div=0.005,
                    load=0.30, store=0.13, branch=0.045),
        fp_mem_frac=0.85, dep_geo_p=0.190, rand_hot_kb=1024, working_set_kb=16384,
        seq_stream_frac=0.70, num_blocks=22, block_len_mean=12.0,
        description="lattice QCD; memory-bound"),
    _fp("namd", Mix(int_alu=0.24, fp_add=0.22, fp_mul=0.21, fp_div=0.01,
                    load=0.22, store=0.05, branch=0.05),
        fp_mem_frac=0.70, dep_geo_p=0.165, far_src_frac=0.13,
        working_set_kb=128, seq_stream_frac=0.65, num_blocks=28,
        block_len_mean=14.0,
        description="molecular dynamics; compute-bound, high ILP"),
    _fp("povray", Mix(int_alu=0.35, fp_add=0.13, fp_mul=0.11, fp_div=0.01,
                      load=0.22, store=0.08, branch=0.10),
        fp_mem_frac=0.45, dep_geo_p=0.210, branch_random_frac=0.022,
        working_set_kb=96, seq_stream_frac=0.50, num_blocks=72,
        block_len_mean=8.0,
        description="ray tracing; branchy FP"),
    _fp("soplex", Mix(int_alu=0.30, fp_add=0.12, fp_mul=0.10, fp_div=0.005,
                      load=0.295, store=0.08, branch=0.10),
        fp_mem_frac=0.55, dep_geo_p=0.225, rand_hot_kb=384, working_set_kb=4096,
        seq_stream_frac=0.50, num_blocks=56, block_len_mean=8.0,
        description="LP simplex; sparse memory"),
    _fp("sphinx3", Mix(int_alu=0.30, fp_add=0.16, fp_mul=0.14,
                       fp_div=0.005, load=0.275, store=0.04, branch=0.08),
        fp_mem_frac=0.60, dep_geo_p=0.190, working_set_kb=2048,
        seq_stream_frac=0.60, num_blocks=40,
        description="speech recognition; gaussian scoring loops"),
    _fp("tonto", Mix(int_alu=0.30, fp_add=0.16, fp_mul=0.14, fp_div=0.01,
                     load=0.24, store=0.08, branch=0.07),
        fp_mem_frac=0.60, dep_geo_p=0.200, working_set_kb=1024,
        seq_stream_frac=0.60, num_blocks=56,
        description="quantum crystallography; Fortran 95"),
    _fp("wrf", Mix(int_alu=0.24, fp_add=0.18, fp_mul=0.17, fp_div=0.01,
                   load=0.25, store=0.10, branch=0.05),
        fp_mem_frac=0.75, dep_geo_p=0.185, working_set_kb=8192,
        seq_stream_frac=0.80, num_blocks=32, block_len_mean=12.0,
        description="weather model; stencil loops"),
    _fp("zeusmp", Mix(int_alu=0.19, fp_add=0.21, fp_mul=0.20, fp_div=0.01,
                      load=0.25, store=0.12, branch=0.03),
        fp_mem_frac=0.80, dep_geo_p=0.175, working_set_kb=16384,
        seq_stream_frac=0.85, num_blocks=20, block_len_mean=16.0,
        loop_trip_mean=64.0,
        description="astrophysical CFD; streaming stencils"),
)

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in _PROFILES}

#: Benchmark names by suite, in the paper's Figure 7 order.
INT_BENCHMARKS: Tuple[str, ...] = tuple(
    p.name for p in _PROFILES if p.suite == "int"
)
FP_BENCHMARKS: Tuple[str, ...] = tuple(
    p.name for p in _PROFILES if p.suite == "fp"
)
ALL_BENCHMARKS: Tuple[str, ...] = INT_BENCHMARKS + FP_BENCHMARKS


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name.

    Raises:
        KeyError: if the benchmark is unknown.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def list_benchmarks(suite: str = "all") -> Tuple[str, ...]:
    """Return benchmark names for ``suite`` in {"int", "fp", "all"}."""
    if suite == "int":
        return INT_BENCHMARKS
    if suite == "fp":
        return FP_BENCHMARKS
    if suite == "all":
        return ALL_BENCHMARKS
    raise ValueError(f"unknown suite {suite!r}")

"""Trace serialization: save and load dynamic instruction streams.

Traces are stored one instruction per line in a compact text format so
that a workload can be generated once and replayed elsewhere (or edited
by hand for directed tests)::

    # repro-trace v1
    <pc> <op> [d=<reg>] [s=<reg>,<reg>] [m=<addr>:<size>] [T:<target>|N]

Registers serialize as ``r<N>`` / ``f<N>``.  Sequence numbers are
implicit (line order); loading renumbers from zero.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.isa.instruction import DynInst
from repro.isa.opclass import OpClass
from repro.isa.registers import Reg, RegClass, fp_reg, int_reg

HEADER = "# repro-trace v1"


class TraceFormatError(ValueError):
    """The file is not a valid repro trace."""


def _reg_to_text(reg: Reg) -> str:
    prefix = "r" if reg.cls is RegClass.INT else "f"
    return f"{prefix}{reg.index}"


def _reg_from_text(text: str) -> Reg:
    if not text or text[0] not in "rf":
        raise TraceFormatError(f"bad register {text!r}")
    index = int(text[1:])
    return int_reg(index) if text[0] == "r" else fp_reg(index)


def _inst_to_line(inst: DynInst) -> str:
    parts = [f"{inst.pc:#x}", inst.op.value]
    if inst.dest is not None:
        parts.append(f"d={_reg_to_text(inst.dest)}")
    if inst.srcs:
        parts.append(
            "s=" + ",".join(_reg_to_text(s) for s in inst.srcs)
        )
    if inst.is_mem:
        parts.append(f"m={inst.mem_addr:#x}:{inst.mem_size}")
    if inst.is_branch:
        parts.append(f"T:{inst.target:#x}" if inst.taken else "N")
    return " ".join(parts)


def _inst_from_line(seq: int, line: str) -> DynInst:
    fields = line.split()
    if len(fields) < 2:
        raise TraceFormatError(f"line {seq + 2}: too few fields")
    try:
        pc = int(fields[0], 16)
        op = OpClass(fields[1])
    except ValueError as error:
        raise TraceFormatError(f"line {seq + 2}: {error}") from None
    dest = None
    srcs = ()
    mem_addr = None
    mem_size = 0
    taken = False
    target = None
    for field in fields[2:]:
        if field.startswith("d="):
            dest = _reg_from_text(field[2:])
        elif field.startswith("s="):
            srcs = tuple(
                _reg_from_text(r) for r in field[2:].split(",")
            )
        elif field.startswith("m="):
            addr_text, size_text = field[2:].split(":")
            mem_addr = int(addr_text, 16)
            mem_size = int(size_text)
        elif field.startswith("T:"):
            taken = True
            target = int(field[2:], 16)
        elif field == "N":
            taken = False
        else:
            raise TraceFormatError(
                f"line {seq + 2}: unknown field {field!r}"
            )
    return DynInst(seq=seq, pc=pc, op=op, dest=dest, srcs=srcs,
                   mem_addr=mem_addr, mem_size=mem_size, taken=taken,
                   target=target)


def save_trace(trace: Iterable[DynInst],
               destination: Union[str, Path, TextIO]) -> int:
    """Write a trace; returns the instruction count."""
    own = isinstance(destination, (str, Path))
    stream = open(destination, "w") if own else destination
    try:
        stream.write(HEADER + "\n")
        count = 0
        for inst in trace:
            stream.write(_inst_to_line(inst) + "\n")
            count += 1
        return count
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, Path, TextIO]) -> List[DynInst]:
    """Read a trace saved by :func:`save_trace` (renumbered from 0)."""
    own = isinstance(source, (str, Path))
    stream = open(source) if own else source
    try:
        header = stream.readline().rstrip("\n")
        if header != HEADER:
            raise TraceFormatError(
                f"bad header {header!r}; expected {HEADER!r}"
            )
        trace: List[DynInst] = []
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            trace.append(_inst_from_line(len(trace), line))
        return trace
    finally:
        if own:
            stream.close()


def dumps_trace(trace: Iterable[DynInst]) -> str:
    """Serialize to a string (round-trips with :func:`loads_trace`)."""
    buffer = io.StringIO()
    save_trace(trace, buffer)
    return buffer.getvalue()


def loads_trace(text: str) -> List[DynInst]:
    """Parse a trace from a string."""
    return load_trace(io.StringIO(text))

"""Functional-unit pools with per-cycle issue-port modelling.

Each pool owns N identical units.  Pipelined ops occupy a unit's issue
port for one cycle; divides are unpipelined and hold their unit busy for
the full latency.  Execution counts feed the energy model (the paper's
point: total FU op counts barely change between models — Section V-A1).
"""

from __future__ import annotations

from typing import List

from repro.isa.opclass import FUType, LATENCY, OpClass

#: Unpipelined ops hold their unit for the whole latency.
_UNPIPELINED = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})


class FUPool:
    """A pool of identical functional units of one type."""

    def __init__(self, fu_type: FUType, count: int):
        if count < 0:
            raise ValueError("FU count cannot be negative")
        self.fu_type = fu_type
        self.count = count
        self._busy_until: List[int] = [0] * count
        # Unpipelined holds are rare, so a single high-water mark lets
        # the common all-free case skip the per-unit scan entirely.
        self._busy_max = 0
        # Issue-port claims only ever target the core's current cycle,
        # which is monotonic, so one (cycle, count) pair replaces the
        # per-cycle dict.
        self._issue_cycle = -1
        self._issued = 0
        self.executions = 0

    def available(self, cycle: int) -> int:
        """Units able to accept a new op this cycle."""
        if self._busy_max <= cycle:
            free_units = self.count
        else:
            free_units = sum(1 for b in self._busy_until if b <= cycle)
        issued = self._issued if self._issue_cycle == cycle else 0
        return max(0, free_units - issued)

    def try_issue(self, op: OpClass, cycle: int) -> bool:
        """Claim a unit for ``op`` at ``cycle``; False when none free."""
        if self._issue_cycle != cycle:
            self._issue_cycle = cycle
            self._issued = 0
        if self._busy_max <= cycle:
            free_units = self.count
        else:
            free_units = sum(1 for b in self._busy_until if b <= cycle)
        if free_units - self._issued <= 0:
            return False
        self._issued += 1
        if op in _UNPIPELINED:
            # Occupy the soonest-free unit for the whole operation.
            busy = self._busy_until
            unit = min(range(self.count), key=busy.__getitem__)
            busy[unit] = cycle + LATENCY[op]
            if busy[unit] > self._busy_max:
                self._busy_max = busy[unit]
        self.executions += 1
        return True

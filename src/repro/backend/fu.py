"""Functional-unit pools with per-cycle issue-port modelling.

Each pool owns N identical units.  Pipelined ops occupy a unit's issue
port for one cycle; divides are unpipelined and hold their unit busy for
the full latency.  Execution counts feed the energy model (the paper's
point: total FU op counts barely change between models — Section V-A1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.opclass import FUType, LATENCY, OpClass

#: Unpipelined ops hold their unit for the whole latency.
_UNPIPELINED = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})


class FUPool:
    """A pool of identical functional units of one type."""

    def __init__(self, fu_type: FUType, count: int):
        if count < 0:
            raise ValueError("FU count cannot be negative")
        self.fu_type = fu_type
        self.count = count
        self._busy_until: List[int] = [0] * count
        self._issued_at: Dict[int, int] = {}
        self.executions = 0

    def available(self, cycle: int) -> int:
        """Units able to accept a new op this cycle."""
        free_units = sum(1 for b in self._busy_until if b <= cycle)
        return max(0, free_units - self._issued_at.get(cycle, 0))

    def try_issue(self, op: OpClass, cycle: int) -> bool:
        """Claim a unit for ``op`` at ``cycle``; False when none free."""
        if self.available(cycle) <= 0:
            return False
        self._issued_at[cycle] = self._issued_at.get(cycle, 0) + 1
        if op in _UNPIPELINED:
            # Occupy the soonest-free unit for the whole operation.
            unit = min(
                range(self.count), key=lambda i: self._busy_until[i]
            )
            self._busy_until[unit] = cycle + LATENCY[op]
        self.executions += 1
        self._prune(cycle)
        return True

    def _prune(self, cycle: int) -> None:
        """Drop per-cycle issue counters older than ``cycle``."""
        if len(self._issued_at) > 64:
            self._issued_at = {
                c: n for c, n in self._issued_at.items() if c >= cycle
            }

"""Store-set memory dependence predictor (Chrysos & Emer, ISCA '98).

FXA assumes loads/stores issue speculatively from the IQ under a
dependence predictor rather than from the LSQ (paper Section II-D3).
The classic two-table design:

* SSIT (store-set id table): PC-indexed; loads and stores that violated
  together share a store-set id.
* LFST (last fetched store table): per set, the most recent in-flight
  store; a load in the set must wait for it.
"""

from __future__ import annotations

from typing import Dict, Optional


class StoreSetPredictor:
    """SSIT + LFST with cyclic set-id merging on violations."""

    def __init__(self, ssit_entries: int = 2048):
        if ssit_entries & (ssit_entries - 1):
            raise ValueError("SSIT size must be a power of two")
        self._mask = ssit_entries - 1
        self._ssit: Dict[int, int] = {}
        self._lfst: Dict[int, object] = {}
        self._next_set_id = 0
        self.violations_trained = 0
        self.dependencies_enforced = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _set_of(self, pc: int) -> Optional[int]:
        return self._ssit.get(self._index(pc))

    # ---------------- front-end hooks ----------------

    def store_dispatched(self, pc: int, entry) -> None:
        """A store entered the window: it becomes its set's last store."""
        set_id = self._set_of(pc)
        if set_id is not None:
            self._lfst[set_id] = entry

    def load_dependency(self, pc: int):
        """Return the in-flight store this load must wait for, or None."""
        set_id = self._set_of(pc)
        if set_id is None:
            return None
        store = self._lfst.get(set_id)
        if store is not None:
            self.dependencies_enforced += 1
        return store

    # ---------------- execution hooks ----------------

    def store_executed(self, pc: int, entry) -> None:
        """Clear the LFST slot once its store has executed."""
        set_id = self._set_of(pc)
        if set_id is not None and self._lfst.get(set_id) is entry:
            del self._lfst[set_id]

    def store_squashed(self, pc: int, entry) -> None:
        """Remove a squashed store from the LFST."""
        self.store_executed(pc, entry)

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the violating load and store into one store set."""
        self.violations_trained += 1
        load_set = self._set_of(load_pc)
        store_set = self._set_of(store_pc)
        if load_set is None and store_set is None:
            set_id = self._next_set_id
            self._next_set_id += 1
            self._ssit[self._index(load_pc)] = set_id
            self._ssit[self._index(store_pc)] = set_id
        elif load_set is None:
            self._ssit[self._index(load_pc)] = store_set
        elif store_set is None:
            self._ssit[self._index(store_pc)] = load_set
        else:
            # Both assigned: converge on the smaller id (cyclic merge).
            winner = min(load_set, store_set)
            self._ssit[self._index(load_pc)] = winner
            self._ssit[self._index(store_pc)] = winner

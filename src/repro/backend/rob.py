"""Reorder buffer.

Every instruction — including those executed early in the IXU — allocates
a ROB entry so precise exceptions are preserved (paper footnote 2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, TypeVar

T = TypeVar("T")


class ReorderBuffer:
    """Bounded FIFO of in-flight instructions in program order."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque = deque()
        self.allocations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def free(self) -> int:
        return self.capacity - len(self._entries)

    def insert(self, entry) -> None:
        """Allocate the tail entry for a newly-renamed instruction."""
        if self.full:
            raise RuntimeError("ROB overflow")
        self._entries.append(entry)
        self.allocations += 1

    def head(self):
        """Oldest in-flight instruction, or None when empty."""
        return self._entries[0] if self._entries else None

    def pop_head(self):
        """Retire the oldest instruction."""
        return self._entries.popleft()

    def squash_younger_than(self, seq: int) -> List:
        """Remove every entry with ``entry.seq > seq``, youngest first.

        Returns the removed entries youngest-first so the caller can
        unwind rename state in the correct order.
        """
        removed: List = []
        while self._entries and self._entries[-1].seq > seq:
            removed.append(self._entries.pop())
        return removed

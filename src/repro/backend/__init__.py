"""Out-of-order backend structures.

These are the structures the paper's energy argument targets: the issue
queue and load/store queue are built from heavily multi-ported CAMs/RAMs
whose per-access energy scales with capacity × ports, and FXA shrinks both
the structures and their access counts.  Each structure therefore counts
its access events precisely; the energy model prices them later.
"""

from repro.backend.rob import ReorderBuffer
from repro.backend.issue_queue import IssueQueue
from repro.backend.lsq import LoadStoreQueue, LSQStats
from repro.backend.store_sets import StoreSetPredictor
from repro.backend.fu import FUPool
from repro.backend.bypass import BypassNetwork

__all__ = [
    "ReorderBuffer",
    "IssueQueue",
    "LoadStoreQueue",
    "LSQStats",
    "StoreSetPredictor",
    "FUPool",
    "BypassNetwork",
]

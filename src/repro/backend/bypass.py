"""Bypass-network event accounting.

The paper models bypass energy as result-wire drives whose cost is
proportional to the number of FUs on the network (Section V-A2): the IXU
and OXU networks are *separate* (no operand bypassing between them,
Section III-A1), so each network counts its own broadcasts and knows its
own FU count; the energy model prices a broadcast ∝ fu_count.
"""

from __future__ import annotations


class BypassNetwork:
    """Result-wire broadcast counter for one execution unit's network."""

    def __init__(self, name: str, fu_count: int):
        if fu_count < 0:
            raise ValueError("fu_count cannot be negative")
        self.name = name
        self.fu_count = fu_count
        self.broadcasts = 0

    def broadcast(self) -> None:
        """One executed instruction drove its result wire."""
        self.broadcasts += 1

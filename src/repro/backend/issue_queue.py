"""Issue queue: bounded, age-ordered window with event accounting.

The core owns the select loop (operand readiness and FU arbitration are
cross-cutting); the queue provides ordered storage, occupancy limits and
the access counters the energy model prices:

* ``dispatches`` — CAM/RAM writes when an instruction enters;
* ``issues`` — payload-RAM reads when one leaves;
* ``wakeup_broadcasts`` — tag broadcasts, one per completing producer;
* ``wakeup_cam_compares`` — broadcast × live entries, the dominant
  CAM-search energy term.
"""

from __future__ import annotations

from typing import Iterator, List


class IssueQueue:
    """Age-ordered issue queue (Table I: 64 entries BIG, 32 HALF)."""

    def __init__(self, capacity: int, issue_width: int):
        if capacity <= 0 or issue_width <= 0:
            raise ValueError("capacity and issue width must be positive")
        self.capacity = capacity
        self.issue_width = issue_width
        self._entries: List = []
        self.dispatches = 0
        self.issues = 0
        self.wakeup_broadcasts = 0
        self.wakeup_cam_compares = 0
        self._occupancy_accum = 0
        self._occupancy_samples = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        """Iterate entries oldest-first (age-ordered select)."""
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def free(self) -> int:
        return self.capacity - len(self._entries)

    def dispatch(self, entry) -> None:
        """Insert a renamed instruction (IQ write)."""
        if self.full:
            raise RuntimeError("issue queue overflow")
        self._entries.append(entry)
        self.dispatches += 1

    def issue(self, entry) -> None:
        """Remove ``entry`` on issue (payload read)."""
        self._entries.remove(entry)
        self.issues += 1

    def note_issue(self) -> None:
        """Count a payload read whose removal is deferred.

        The select loop marks the entry ``issued`` and calls
        :meth:`remove_issued` once per cycle, replacing an O(n)
        ``list.remove`` per issued instruction with one sweep.
        """
        self.issues += 1

    def remove_issued(self) -> None:
        """Sweep entries the core marked ``issued`` out of the window."""
        self._entries = [e for e in self._entries if not e.issued]

    def broadcast_wakeup(self) -> None:
        """A producer completed: tag broadcast against all live entries."""
        self.wakeup_broadcasts += 1
        self.wakeup_cam_compares += len(self._entries)

    def squash_younger_than(self, seq: int) -> None:
        """Drop squashed entries."""
        self._entries = [e for e in self._entries if e.seq <= seq]

    def sample_occupancy(self) -> None:
        """Record occupancy once per cycle (for reporting)."""
        self._occupancy_accum += len(self._entries)
        self._occupancy_samples += 1

    @property
    def mean_occupancy(self) -> float:
        if not self._occupancy_samples:
            return 0.0
        return self._occupancy_accum / self._occupancy_samples

"""Issue queue: bounded, age-ordered window with event accounting.

The cores own wakeup and select (see ``OutOfOrderCore._schedule_entry``:
operand readiness is event-driven off producer completions); the queue
provides ordered storage, occupancy limits and the access counters the
energy model prices:

* ``dispatches`` — CAM/RAM writes when an instruction enters;
* ``issues`` — payload-RAM reads when one leaves;
* ``wakeup_broadcasts`` — tag broadcasts, one per completing producer;
* ``wakeup_cam_compares`` — broadcast × live entries, the dominant
  CAM-search energy term.

Removal is lazy: the select loop marks entries ``issued`` and counts
them out via :meth:`note_issue`; the backing list is compacted only
when enough dead entries accumulate (or on a squash).  Every occupancy
consumer — ``len()``, ``full``/``free``, CAM-compare pricing, the
occupancy histogram — reads the live count, so laziness is invisible.
"""

from __future__ import annotations

from typing import Iterator, List


class IssueQueue:
    """Age-ordered issue queue (Table I: 64 entries BIG, 32 HALF)."""

    #: Compact the backing list once this many dead entries accumulate.
    _GC_SLACK = 32

    def __init__(self, capacity: int, issue_width: int):
        if capacity <= 0 or issue_width <= 0:
            raise ValueError("capacity and issue width must be positive")
        self.capacity = capacity
        self.issue_width = issue_width
        self._entries: List = []
        self._live = 0
        self.dispatches = 0
        self.issues = 0
        self.wakeup_broadcasts = 0
        self.wakeup_cam_compares = 0
        self._occupancy_accum = 0
        self._occupancy_samples = 0

    def __len__(self) -> int:
        return self._live

    def __iter__(self) -> Iterator:
        """Iterate live entries oldest-first."""
        return iter(e for e in self._entries if not e.issued)

    @property
    def full(self) -> bool:
        return self._live >= self.capacity

    @property
    def free(self) -> int:
        return self.capacity - self._live

    def dispatch(self, entry) -> None:
        """Insert a renamed instruction (IQ write)."""
        if self._live >= self.capacity:
            raise RuntimeError("issue queue overflow")
        self._entries.append(entry)
        self._live += 1
        self.dispatches += 1

    def issue(self, entry) -> None:
        """Remove ``entry`` on issue (payload read; direct API)."""
        self._entries.remove(entry)
        self._live -= 1
        self.issues += 1

    def note_issue(self) -> None:
        """Count an entry the select loop marked ``issued``.

        The entry leaves the live count immediately; the backing list
        drops it at the next :meth:`remove_issued` compaction.
        """
        self.issues += 1
        self._live -= 1

    def remove_issued(self) -> None:
        """Compact the backing list if enough dead entries accumulated."""
        entries = self._entries
        if len(entries) - self._live >= self._GC_SLACK:
            self._entries = [
                e for e in entries if not (e.issued or e.squashed)
            ]

    def broadcast_wakeup(self) -> None:
        """A producer completed: tag broadcast against all live entries."""
        self.wakeup_broadcasts += 1
        self.wakeup_cam_compares += self._live

    def squash_younger_than(self, seq: int) -> None:
        """Drop squashed entries (and compact any dead ones)."""
        self._entries = [
            e for e in self._entries
            if e.seq <= seq and not e.issued
        ]
        self._live = len(self._entries)

    def sample_occupancy(self) -> None:
        """Record occupancy once per cycle (for reporting)."""
        self._occupancy_accum += self._live
        self._occupancy_samples += 1

    def sample_occupancy_many(self, cycles: int) -> None:
        """Record ``cycles`` identical occupancy samples (fast-forward:
        the window is frozen across a jumped gap)."""
        self._occupancy_accum += self._live * cycles
        self._occupancy_samples += cycles

    @property
    def mean_occupancy(self) -> float:
        if not self._occupancy_samples:
            return 0.0
        return self._occupancy_accum / self._occupancy_samples

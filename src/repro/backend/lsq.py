"""Load/store queue with FXA's access-omission rules.

The LSQ itself is the conventional one (paper Section II-D3): loads search
older stores for forwarding, stores search younger executed loads for
order violations, and both record their addresses.  FXA changes only *who*
accesses it and *which* accesses can be skipped:

1. A store executed in the IXU has no younger executed load, so the
   violation search is omitted.
2. A load executed in the IXU whose older stores have all executed can
   never be the victim of a violation, so writing it into the LSQ is
   omitted.

Both omissions are counted; the energy model turns them into the LSQ
energy reduction of Figure 8a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class LSQStats:
    """LSQ access counters for the energy model."""

    load_writes: int = 0
    store_writes: int = 0
    forward_searches: int = 0       # load searching older stores
    violation_searches: int = 0     # store searching younger loads
    omitted_load_writes: int = 0
    omitted_violation_searches: int = 0
    forwarded_loads: int = 0
    violations: int = 0

    @property
    def searches(self) -> int:
        return self.forward_searches + self.violation_searches

    @property
    def writes(self) -> int:
        return self.load_writes + self.store_writes


class LoadStoreQueue:
    """Split load/store queues (Table I: 32 loads / 32 stores).

    Entries are the core's in-flight records and must expose ``seq``,
    ``inst`` (a :class:`~repro.isa.DynInst`), ``mem_executed`` and
    ``lsq_written`` attributes.
    """

    def __init__(self, load_capacity: int = 32, store_capacity: int = 32):
        self.load_capacity = load_capacity
        self.store_capacity = store_capacity
        self._loads: List = []
        self._stores: List = []
        self.stats = LSQStats()
        # Youngest sequence number among executed loads; lets an FXA
        # store verify omission 1's premise ("no younger executed
        # load") with one comparison instead of a queue search.
        self._youngest_executed_load_seq = -1

    # ---------------- occupancy ----------------

    @property
    def loads(self) -> Tuple:
        """Live load entries, oldest-first (read-only; validation)."""
        return tuple(self._loads)

    @property
    def stores(self) -> Tuple:
        """Live store entries, oldest-first (read-only; validation)."""
        return tuple(self._stores)

    @property
    def loads_free(self) -> int:
        return self.load_capacity - len(self._loads)

    @property
    def stores_free(self) -> int:
        return self.store_capacity - len(self._stores)

    def insert_load(self, entry) -> None:
        """Allocate a load-queue slot at rename (no data written yet)."""
        if not self.loads_free:
            raise RuntimeError("load queue overflow")
        self._loads.append(entry)

    def insert_store(self, entry) -> None:
        """Allocate a store-queue slot at rename."""
        if not self.stores_free:
            raise RuntimeError("store queue overflow")
        self._stores.append(entry)

    # ---------------- execution-time accesses ----------------

    def older_stores_all_executed(self, load_entry) -> bool:
        """True when every store older than the load has executed."""
        return all(
            s.mem_executed for s in self._stores
            if s.seq < load_entry.seq
        )

    def execute_load(self, entry, in_ixu: bool) -> bool:
        """Perform the LSQ side of a load's execution.

        Searches older executed stores for a same-address forward, then
        records the load (unless the FXA omission applies).

        Returns:
            True when the load's data is forwarded from the store queue.
        """
        self.stats.forward_searches += 1
        seq = entry.seq
        addr = entry.inst.mem_addr
        forwarded = False
        for s in self._stores:
            if s.seq < seq and s.mem_executed \
                    and s.inst.mem_addr == addr:
                forwarded = True
                break
        if forwarded:
            self.stats.forwarded_loads += 1
        if in_ixu and self.older_stores_all_executed(entry):
            # Paper omission 2: the load can never be a violation victim.
            self.stats.omitted_load_writes += 1
            entry.lsq_written = False
        else:
            self.stats.load_writes += 1
            entry.lsq_written = True
        entry.mem_executed = True
        if entry.seq > self._youngest_executed_load_seq:
            self._youngest_executed_load_seq = entry.seq
        return forwarded

    def has_younger_executed_load(self, seq: int) -> bool:
        """Has any load younger than ``seq`` already executed?

        When True for a store, the FXA violation-search omission's
        premise does not hold and the store must search (execute in
        the OXU).
        """
        return self._youngest_executed_load_seq > seq

    def execute_store(self, entry, in_ixu: bool):
        """Perform the LSQ side of a store's execution.

        Writes address+data, and — unless executed in the IXU (paper
        omission 1) — searches younger executed loads for an ordering
        violation.

        Returns:
            The oldest violating load entry, or None.
        """
        self.stats.store_writes += 1
        entry.mem_executed = True
        if in_ixu:
            self.stats.omitted_violation_searches += 1
            return None
        self.stats.violation_searches += 1
        violators = [
            load for load in self._loads
            if load.lsq_written
            and load.mem_executed
            and load.seq > entry.seq
            and load.inst.mem_addr == entry.inst.mem_addr
        ]
        if not violators:
            return None
        self.stats.violations += 1
        return min(violators, key=lambda load: load.seq)

    # ---------------- retire / squash ----------------

    def commit(self, entry) -> None:
        """Free the entry's slot at commit."""
        if entry.inst.is_load:
            self._loads.remove(entry)
        else:
            self._stores.remove(entry)

    def squash_younger_than(self, seq: int) -> None:
        """Drop all squashed entries."""
        self._loads = [e for e in self._loads if e.seq <= seq]
        self._stores = [e for e in self._stores if e.seq <= seq]
        if self._youngest_executed_load_seq > seq:
            # Squashed loads re-execute on replay; recompute over the
            # survivors so stale youth doesn't block IXU stores.
            self._youngest_executed_load_seq = max(
                (e.seq for e in self._loads if e.mem_executed),
                default=-1,
            )

"""IXU structural models: stage-FU occupancy and bypass reachability.

Bypass semantics (paper Section II-C and Figure 6): an instruction that
executes at stage *s* in cycle *t* carries its result down the pipe on the
pass-through path, re-driving it at each later stage, so at a later cycle
*t'* the value is sourced from stage ``s + (t' - t)``.  A consumer at
stage ``s_c`` can receive it iff

* the value is ready (``t' >= value_ready``, 1 cycle after an ALU op,
  the cache-fill cycle for a load),
* the producer is still inside (or just exiting) the pipe
  (``s + (t' - t) <= depth``), and
* the wire exists: ``(s + (t' - t)) - s_c <= bypass_stage_limit``
  (the "opt" network omits wires between FUs more than two stages
  apart, Section III-A2; the full network has no limit).

There is deliberately no OXU→IXU path (Section III-A1): values produced
in the OXU reach later instructions only through the PRF at their
front-end register read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.registers import RegClass


@dataclass
class _Produced:
    """One IXU-produced value's bypass coordinates."""

    producer: object           # InFlight, used to drop squashed entries
    exec_cycle: int
    exec_pos: int
    value_ready: int


class BypassRegistry:
    """Tracks IXU-produced values for bypass-reachability queries."""

    def __init__(self, depth: int, stage_limit: Optional[int]):
        self.depth = depth
        self.stage_limit = stage_limit
        self._values: Dict[Tuple[RegClass, int], _Produced] = {}

    def __len__(self) -> int:
        return len(self._values)

    def record(self, cls: RegClass, preg: int, producer,
               exec_cycle: int, exec_pos: int, value_ready: int) -> None:
        """An IXU FU produced (cls, preg)."""
        self._values[(cls, preg)] = _Produced(
            producer=producer,
            exec_cycle=exec_cycle,
            exec_pos=exec_pos,
            value_ready=value_ready,
        )

    def available(self, cls: RegClass, preg: int, cycle: int,
                  consumer_pos: int) -> bool:
        """Can a consumer FU at ``consumer_pos`` receive (cls, preg) now?"""
        produced = self._values.get((cls, preg))
        if produced is None or produced.producer.squashed:
            return False
        if cycle < produced.value_ready:
            return False
        current_pos = produced.exec_pos + (cycle - produced.exec_cycle)
        if current_pos > self.depth:
            return False  # value now lives only in the PRF
        if self.stage_limit is not None:
            if current_pos - consumer_pos > self.stage_limit:
                return False
        return True

    def prune(self, cycle: int) -> None:
        """Drop values that can never be bypassed again."""
        if not self._values:
            return
        dead = [
            key for key, produced in self._values.items()
            if produced.producer.squashed
            or produced.exec_pos + (cycle - produced.exec_cycle)
            > self.depth
        ]
        for key in dead:
            del self._values[key]

    def drop_squashed(self) -> None:
        """Remove records whose producers were squashed."""
        dead = [
            key for key, produced in self._values.items()
            if produced.producer.squashed
        ]
        for key in dead:
            del self._values[key]


class StageFUUsage:
    """Per-cycle, per-stage FU occupancy of the IXU.

    Claims arrive with non-decreasing cycle numbers (the IXU executes
    in simulation order), so one per-stage counter array rolled over at
    each new cycle replaces a keyed ledger.
    """

    def __init__(self, stage_fus: Tuple[int, ...]):
        self.stage_fus = stage_fus
        self._cycle = -1
        self._used_now: List[int] = [0] * len(stage_fus)

    def try_use(self, cycle: int, stage: int) -> bool:
        """Claim one FU at ``stage`` this cycle; False when all busy."""
        used = self._used_now
        if cycle != self._cycle:
            self._cycle = cycle
            for index in range(len(used)):
                used[index] = 0
        if used[stage] >= self.stage_fus[stage]:
            return False
        used[stage] += 1
        return True

"""The in-order execution unit (IXU) — the paper's contribution.

The IXU is a stall-free in-order execution pipeline of FUs plus a bypass
network, placed between rename and dispatch.  This package provides the
structural pieces (per-stage FU accounting and the bypass-reachability
registry); :class:`repro.core.FXACore` drives them inside the pipeline.
"""

from repro.ixu.pipeline import BypassRegistry, StageFUUsage

__all__ = ["BypassRegistry", "StageFUUsage"]

"""Atomic file publication and advisory locking for shared directories.

Several persistence paths in this repo are read and written by more
than one process at once: the content-addressed disk cache under a
sweep with ``--jobs N``, run manifests polled by progress streamers and
``repro-exp diff`` while the producing sweep is still running, the
``--trajectory`` / simspeed JSON histories appended by concurrent
sweeps, and the job-server spool directory shared between worker
*hosts*.  They all need the same two primitives:

* :func:`replace_json` — publish a JSON document with tmp-file +
  ``os.replace`` so a reader sees either the complete old document or
  the complete new one, never a torn intermediate.  The temp name
  (:func:`tmp_path_for`) embeds hostname, pid **and** a
  process-monotonic counter: pids collide across hosts on a shared
  filesystem, and one process can publish the same path twice from two
  threads, so any shorter name lets two writers clobber each other's
  temp file mid-write.
* :func:`locked` — an exclusive ``fcntl`` lock for read-modify-write
  cycles (histories that append).  The lock lives on a ``<path>.lock``
  sidecar because the data file itself is republished by
  ``os.replace``: locking the data inode would let a second writer
  lock the *new* inode while the first still holds the old one.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import socket
import threading
from contextlib import contextmanager

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

_COUNTER = itertools.count()
#: Hostname sanitised to filename-safe characters (a shared NFS spool
#: sees temp files from many machines side by side).
_HOST = re.sub(r"[^A-Za-z0-9_.-]", "-", socket.gethostname()) or "host"


def tmp_path_for(path) -> str:
    """A collision-proof temp sibling for atomically publishing ``path``.

    All three components are load-bearing: the hostname distinguishes
    workers on different machines sharing one directory (their pids
    collide), the pid distinguishes processes on one host, and the
    monotonic counter distinguishes threads (and repeat publishes)
    within one process.
    """
    return f"{path}.tmp.{_HOST}.{os.getpid()}.{next(_COUNTER)}"


def replace_json(path, payload, *, indent=None, sort_keys: bool = False,
                 trailing_newline: bool = False) -> None:
    """Serialise ``payload`` as JSON and atomically publish it at ``path``.

    Readers never observe a torn file; a failure while serialising (or
    writing) leaves any existing file untouched and removes the temp.
    """
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "w") as stream:
            json.dump(payload, stream, indent=indent, sort_keys=sort_keys)
            if trailing_newline:
                stream.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: In-process locks per path.  POSIX record locks are held per
#: *process*: a second thread of the same process acquires the fcntl
#: lock instantly even while the first still holds it, so cross-thread
#: mutual exclusion needs a real threading.Lock alongside it.
_THREAD_LOCKS: dict = {}
_THREAD_LOCKS_GUARD = threading.Lock()


def _thread_lock_for(path) -> threading.Lock:
    key = os.path.abspath(str(path))
    with _THREAD_LOCKS_GUARD:
        lock = _THREAD_LOCKS.get(key)
        if lock is None:
            lock = _THREAD_LOCKS[key] = threading.Lock()
        return lock


@contextmanager
def locked(path):
    """Exclusive lock guarding a read-modify-write of ``path``.

    Blocks until the lock is held.  Two layers, both required: a
    per-path ``threading.Lock`` serialises threads within this process
    (fcntl record locks are per-process and would not), and an
    exclusive ``fcntl`` lock on the ``<path>.lock`` sidecar serialises
    against other processes.  Platforms without ``fcntl`` keep the
    thread layer and degrade to no cross-process locking (the atomic
    publish still prevents torn reads, only lost updates are possible
    there).
    """
    with _thread_lock_for(path):
        with open(f"{path}.lock", "a") as handle:
            if fcntl is not None:
                fcntl.lockf(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.lockf(handle, fcntl.LOCK_UN)

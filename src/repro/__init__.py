"""repro — reproduction of "A Front-end Execution Architecture for High
Energy Efficiency" (Shioya, Goshima, Ando; MICRO-47, 2014).

A cycle-level processor-simulation library: conventional out-of-order and
in-order superscalar cores, the paper's FXA core with its in-order
execution unit (IXU), synthetic SPEC CPU2006-like workloads, a McPAT-like
energy/area model, and a harness regenerating every table and figure of
the paper's evaluation.

Quick start::

    from repro import build_core, generate_trace

    core = build_core("HALF+FX")        # the paper's proposal
    stats = core.run(generate_trace("libquantum", 10_000))
    print(stats.summary(), stats.ixu_executed_rate)

See ``examples/`` for full scenarios and ``repro.experiments`` for the
per-figure regenerators.
"""

from repro.core import (
    CoreConfig,
    CoreStats,
    FXACore,
    IXUConfig,
    InOrderCore,
    MODEL_NAMES,
    OutOfOrderCore,
    SimulationError,
    build_core,
    model_config,
)
from repro.energy import (
    AreaModel,
    Component,
    EnergyBreakdown,
    EnergyModel,
)
from repro.workloads import (
    ALL_BENCHMARKS,
    BenchmarkProfile,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    Mix,
    generate_trace,
    get_profile,
    list_benchmarks,
)

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "CoreStats",
    "FXACore",
    "IXUConfig",
    "InOrderCore",
    "MODEL_NAMES",
    "OutOfOrderCore",
    "SimulationError",
    "build_core",
    "model_config",
    "AreaModel",
    "Component",
    "EnergyBreakdown",
    "EnergyModel",
    "ALL_BENCHMARKS",
    "BenchmarkProfile",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "Mix",
    "generate_trace",
    "get_profile",
    "list_benchmarks",
    "__version__",
]

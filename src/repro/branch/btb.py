"""Branch target buffer: set-associative PC-to-target cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional


class BTB:
    """Set-associative branch target buffer with LRU replacement.

    The paper's models use 512 entries; we default to 4-way.
    """

    def __init__(self, entries: int = 512, ways: int = 4):
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self._ways = ways
        self._num_sets = entries // ways
        if self._num_sets & (self._num_sets - 1):
            raise ValueError("entries/ways must be a power of two")
        # Each set maps tag -> target, ordered oldest-first for LRU.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    @property
    def entries(self) -> int:
        """Total capacity (for energy accounting)."""
        return self._num_sets * self._ways

    def _locate(self, pc: int):
        index = (pc >> 2) & (self._num_sets - 1)
        tag = pc >> 2
        return self._sets[index], tag

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for ``pc``, or None on a BTB miss."""
        entry_set, tag = self._locate(pc)
        target = entry_set.get(tag)
        if target is not None:
            entry_set.move_to_end(tag)
        return target

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for a taken branch at ``pc``."""
        entry_set, tag = self._locate(pc)
        if tag in entry_set:
            entry_set[tag] = target
            entry_set.move_to_end(tag)
            return
        if len(entry_set) >= self._ways:
            entry_set.popitem(last=False)
        entry_set[tag] = target

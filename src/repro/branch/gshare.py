"""G-share direction predictor (McFarling) with 2-bit saturating counters."""

from __future__ import annotations


class TwoBitCounter:
    """Classic 2-bit saturating counter: 0,1 predict not-taken; 2,3 taken."""

    __slots__ = ("value",)

    def __init__(self, value: int = 1):
        if not 0 <= value <= 3:
            raise ValueError("counter value must be in [0, 3]")
        self.value = value

    @property
    def taken(self) -> bool:
        """Current direction prediction."""
        return self.value >= 2

    def update(self, taken: bool) -> None:
        """Train toward the observed outcome."""
        if taken:
            self.value = min(3, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class GShare:
    """G-share: PC xor global-history indexes a PHT of 2-bit counters.

    Args:
        pht_entries: Pattern-history-table size; the paper uses 4096.
        history_bits: Global-history length; defaults to log2(pht_entries).
    """

    def __init__(self, pht_entries: int = 4096, history_bits: int = 0):
        if pht_entries <= 0 or pht_entries & (pht_entries - 1):
            raise ValueError("pht_entries must be a power of two")
        self._mask = pht_entries - 1
        self._bits = history_bits or pht_entries.bit_length() - 1
        self._history = 0
        # Weakly-not-taken initial state, stored compactly.
        self._pht = bytearray([1]) * pht_entries

    @property
    def pht_entries(self) -> int:
        """Number of PHT entries (for energy accounting)."""
        return self._mask + 1

    @property
    def history(self) -> int:
        """Current global history register value."""
        return self._history

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def index_for(self, pc: int) -> int:
        """PHT index a prediction for ``pc`` would use right now.

        Callers that train at resolution must capture this at predict
        time: the global history will have shifted by then.
        """
        return self._index(pc)

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        return self._pht[self._index(pc)] >= 2

    def shift_history(self, taken: bool) -> None:
        """Shift the global history by one outcome.

        Called at predict time with the resolved outcome — equivalent to
        the usual speculative-history-with-checkpoint-repair scheme in a
        model that never fetches down the wrong path.
        """
        history_mask = (1 << self._bits) - 1
        self._history = ((self._history << 1) | int(taken)) & history_mask

    def train(self, index: int, taken: bool) -> None:
        """Train the counter at ``index`` toward the outcome."""
        value = self._pht[index]
        if taken:
            self._pht[index] = min(3, value + 1)
        else:
            self._pht[index] = max(0, value - 1)

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter for ``pc``, then shift the history.

        Convenience for in-order (predict-then-immediately-resolve) use;
        pipelined cores use index_for/train/shift_history instead.
        """
        self.train(self._index(pc), taken)
        self.shift_history(taken)

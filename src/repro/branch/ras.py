"""Return-address stack for call/return target prediction."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth circular return-address stack.

    Overflow wraps (oldest entry is overwritten) and underflow returns
    None, matching hardware RAS behaviour.
    """

    def __init__(self, depth: int = 16):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self._depth = depth
        self._stack: List[int] = []

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, return_pc: int) -> None:
        """Push the address the matching return should land on."""
        if len(self._stack) >= self._depth:
            del self._stack[0]
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        """Pop the predicted return target; None when empty."""
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        """Look at the top entry without popping."""
        if not self._stack:
            return None
        return self._stack[-1]

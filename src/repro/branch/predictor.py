"""Composite branch predictor used by every core model.

Combines the g-share direction predictor, the BTB and the return-address
stack.  Because the simulator is trace-driven, the core asks for a
prediction for each fetched control instruction, compares it against the
trace's recorded outcome, and charges the misprediction penalty when they
disagree; the predictor itself is oblivious to speculation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instruction import DynInst
from repro.isa.opclass import OpClass
from repro.branch.btb import BTB
from repro.branch.gshare import GShare
from repro.branch.ras import ReturnAddressStack


@dataclass(frozen=True)
class Prediction:
    """Outcome of a front-end prediction for one control instruction.

    ``pht_index`` captures the g-share index used at predict time so the
    counter can be trained at resolution, after the global history has
    moved on.
    """

    taken: bool
    target: Optional[int]
    pht_index: Optional[int] = None

    def correct_for(self, inst: DynInst) -> bool:
        """True when this prediction matches the trace outcome."""
        if self.taken != inst.taken:
            return False
        if inst.taken:
            return self.target == inst.target
        return True


class BranchPredictor:
    """G-share + BTB + RAS front-end predictor (Table I parameters)."""

    def __init__(
        self,
        pht_entries: int = 4096,
        btb_entries: int = 512,
        ras_depth: int = 16,
        history_bits: int = 4,
        kind: str = "gshare",
    ):
        from repro.branch.direction import (
            GShareDirection,
            make_direction_predictor,
        )

        if kind == "gshare":
            # 4 history bits (rather than log2(PHT)) trades some pattern
            # capacity for much faster training — the right point for
            # the synthetic workloads' mix of periodic loops and weakly-
            # correlated data-dependent branches.
            self.direction = GShareDirection(pht_entries, history_bits)
        else:
            self.direction = make_direction_predictor(kind, pht_entries)
        # Back-compat attribute for gshare-based setups.
        self.gshare = getattr(self.direction, "gshare", None)
        self.btb = BTB(entries=btb_entries)
        self.ras = ReturnAddressStack(depth=ras_depth)
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, inst: DynInst) -> Prediction:
        """Predict one fetched control instruction and update the RAS."""
        self.lookups += 1
        if inst.op is OpClass.RET:
            target = self.ras.pop()
            return Prediction(taken=True, target=target)
        if inst.op is OpClass.CALL:
            self.ras.push(inst.fall_through)
            target = self.btb.lookup(inst.pc)
            return Prediction(taken=True, target=target)
        if inst.op is OpClass.BR_UNCOND:
            target = self.btb.lookup(inst.pc)
            return Prediction(taken=True, target=target)
        # Speculative history, repaired on mispredicts: in a model with
        # no wrong-path fetch this equals shifting the actual outcome in
        # at predict time (the direction predictor handles it).
        taken, token = self.direction.predict_and_capture(
            inst.pc, inst.taken)
        target = self.btb.lookup(inst.pc) if taken else None
        return Prediction(taken=taken, target=target, pht_index=token)

    def resolve(self, inst: DynInst, prediction: Prediction) -> bool:
        """Train on the actual outcome; returns True on misprediction."""
        if inst.op is OpClass.BR_COND and prediction.pht_index is not None:
            self.direction.train(prediction.pht_index, inst.taken)
        if inst.taken and inst.target is not None:
            self.btb.update(inst.pc, inst.target)
        mispredicted = not prediction.correct_for(inst)
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        """Fraction of predicted control instructions that mispredicted."""
        if not self.lookups:
            return 0.0
        return self.mispredictions / self.lookups

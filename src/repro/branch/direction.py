"""Alternative direction predictors: bimodal and tournament.

The paper's models use g-share (Table I); these are extensions for
sensitivity studies.  All direction predictors share a two-call protocol
suited to pipelined training:

* ``predict_and_capture(pc, actual_taken) -> (taken, token)`` — predict,
  then speculatively update any history with the resolved outcome (the
  checkpoint-repair equivalence; see :class:`~repro.branch.GShare`), and
  return an opaque token identifying the table entries used;
* ``train(token, taken)`` — update the captured entries at resolution.
"""

from __future__ import annotations

from repro.branch.gshare import GShare


class GShareDirection:
    """Protocol adapter over :class:`GShare`."""

    def __init__(self, pht_entries: int = 4096, history_bits: int = 4):
        self.gshare = GShare(pht_entries=pht_entries,
                             history_bits=history_bits)

    def predict_and_capture(self, pc: int, actual_taken: bool):
        index = self.gshare.index_for(pc)
        taken = self.gshare.predict(pc)
        self.gshare.shift_history(actual_taken)
        return taken, index

    def train(self, token, taken: bool) -> None:
        self.gshare.train(token, taken)


class BimodalDirection:
    """Plain PC-indexed 2-bit counters; no history."""

    def __init__(self, pht_entries: int = 4096):
        if pht_entries & (pht_entries - 1):
            raise ValueError("pht_entries must be a power of two")
        self._mask = pht_entries - 1
        self._pht = bytearray([1]) * pht_entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict_and_capture(self, pc: int, actual_taken: bool):
        index = self._index(pc)
        return self._pht[index] >= 2, index

    def train(self, token, taken: bool) -> None:
        value = self._pht[token]
        if taken:
            self._pht[token] = min(3, value + 1)
        else:
            self._pht[token] = max(0, value - 1)


class TournamentDirection:
    """McFarling tournament: bimodal + g-share + PC-indexed chooser.

    The chooser counter moves toward whichever component predicted
    correctly when they disagree.
    """

    def __init__(self, pht_entries: int = 4096, history_bits: int = 4):
        self._gshare = GShareDirection(pht_entries, history_bits)
        self._bimodal = BimodalDirection(pht_entries)
        self._chooser = bytearray([1]) * pht_entries  # <2 favours bimodal
        self._mask = pht_entries - 1

    def predict_and_capture(self, pc: int, actual_taken: bool):
        g_taken, g_token = self._gshare.predict_and_capture(
            pc, actual_taken)
        b_taken, b_token = self._bimodal.predict_and_capture(
            pc, actual_taken)
        c_index = (pc >> 2) & self._mask
        use_gshare = self._chooser[c_index] >= 2
        taken = g_taken if use_gshare else b_taken
        token = (g_token, b_token, c_index, g_taken, b_taken)
        return taken, token

    def train(self, token, taken: bool) -> None:
        g_token, b_token, c_index, g_taken, b_taken = token
        self._gshare.train(g_token, taken)
        self._bimodal.train(b_token, taken)
        if g_taken != b_taken:
            value = self._chooser[c_index]
            if g_taken == taken:
                self._chooser[c_index] = min(3, value + 1)
            else:
                self._chooser[c_index] = max(0, value - 1)


def make_direction_predictor(kind: str, pht_entries: int = 4096):
    """Factory for the direction predictors by config name."""
    if kind == "gshare":
        return GShareDirection(pht_entries)
    if kind == "bimodal":
        return BimodalDirection(pht_entries)
    if kind == "tournament":
        return TournamentDirection(pht_entries)
    raise ValueError(f"unknown predictor kind {kind!r}")

"""Branch prediction.

Table I of the paper specifies a g-share direction predictor with a 4 K
pattern-history table and a 512-entry BTB for every model.  This package
implements those, a return-address stack for calls/returns, and a composite
:class:`BranchPredictor` front the cores use.
"""

from repro.branch.gshare import GShare, TwoBitCounter
from repro.branch.btb import BTB
from repro.branch.ras import ReturnAddressStack
from repro.branch.predictor import BranchPredictor, Prediction

__all__ = [
    "GShare",
    "TwoBitCounter",
    "BTB",
    "ReturnAddressStack",
    "BranchPredictor",
    "Prediction",
]

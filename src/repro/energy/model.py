"""Energy accounting: prices a run's event counts into a Figure 8a
component breakdown (dynamic + static per component).

Scaling rules (paper Sections I and V):

* IQ/LSQ/PRF per-access energy ∝ capacity × ports; the wakeup CAM energy
  additionally ∝ live entries (we count the actual per-broadcast
  comparisons, so the per-compare price scales with width only).
* Bypass broadcast energy ∝ FUs on that result-wire network; the IXU and
  OXU networks are separate (Section III-A1).
* Leakage ∝ component area × device-class leak density (HP core devices
  vs LSTP L2 devices, Table II) × cycles.
* Wrong-path (flushed) work is charged statistically per misprediction —
  the reason LITTLE's FU energy is lowest in Figure 8b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import CoreConfig
from repro.core.stats import CoreStats, EventCounts
from repro.energy.area import AreaModel, Component
from repro.energy.params import (
    DEFAULT_DEVICE,
    DEFAULT_ENERGY,
    DeviceParams,
    EnergyParams,
    REF_IQ_ENTRIES,
    REF_ISSUE_WIDTH,
    REF_LSQ_ENTRIES,
    REF_OXU_FUS,
    REF_PRF_ENTRIES,
    REF_RENAME_WIDTH,
)


@dataclass
class EnergyBreakdown:
    """Per-component dynamic/static energy (pJ) for one run."""

    model: str
    benchmark: str
    cycles: int
    committed: int
    dynamic: Dict[Component, float] = field(default_factory=dict)
    static: Dict[Component, float] = field(default_factory=dict)

    def component_total(self, component: Component) -> float:
        return (self.dynamic.get(component, 0.0)
                + self.static.get(component, 0.0))

    @property
    def total(self) -> float:
        """Whole-processor energy in pJ."""
        return sum(self.dynamic.values()) + sum(self.static.values())

    @property
    def energy_per_instruction(self) -> float:
        if not self.committed:
            return 0.0
        return self.total / self.committed

    def edp(self) -> float:
        """Energy-delay product (pJ · cycles); Figure 10 is its inverse."""
        return self.total * self.cycles

    def relative_to(self, baseline: "EnergyBreakdown") -> float:
        """This run's total energy relative to a baseline run."""
        return self.total / baseline.total

    def shares(self) -> Dict[Component, float]:
        """Component share of the total energy."""
        total = self.total
        if not total:
            return {c: 0.0 for c in Component}
        return {
            c: self.component_total(c) / total for c in Component
        }

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-serializable); components by value."""
        return {
            "model": self.model,
            "benchmark": self.benchmark,
            "cycles": self.cycles,
            "committed": self.committed,
            "dynamic": {c.value: e for c, e in self.dynamic.items()},
            "static": {c.value: e for c, e in self.static.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EnergyBreakdown":
        """Inverse of :meth:`to_dict`."""
        return cls(
            model=data["model"],
            benchmark=data["benchmark"],
            cycles=data["cycles"],
            committed=data["committed"],
            dynamic={Component(k): v
                     for k, v in data.get("dynamic", {}).items()},
            static={Component(k): v
                    for k, v in data.get("static", {}).items()},
        )


class EnergyModel:
    """Prices :class:`EventCounts` for one core configuration."""

    def __init__(self, config: CoreConfig,
                 params: EnergyParams = DEFAULT_ENERGY,
                 device: DeviceParams = DEFAULT_DEVICE):
        self.config = config
        self.params = params
        self.device = device
        self.area = AreaModel(config)

    # -- geometry scale factors (1.0 at BIG) ---------------------------

    def _iq_scale(self) -> float:
        config = self.config
        return ((config.iq_entries / REF_IQ_ENTRIES)
                * (config.issue_width / REF_ISSUE_WIDTH))

    def _iq_cam_scale(self) -> float:
        return self.config.issue_width / REF_ISSUE_WIDTH

    def _lsq_scale(self) -> float:
        config = self.config
        return (config.lq_entries + config.sq_entries) / REF_LSQ_ENTRIES

    def _prf_scale(self) -> float:
        config = self.config
        if config.core_type == "inorder":
            # Architectural RF: 64 entries, far fewer ports.
            return 64 / REF_PRF_ENTRIES * 0.5
        return ((config.int_prf_entries + config.fp_prf_entries)
                / REF_PRF_ENTRIES)

    def _rat_scale(self) -> float:
        return self.config.rename_width / REF_RENAME_WIDTH

    def evaluate(self, stats: CoreStats) -> EnergyBreakdown:
        """Price one run's events into a component breakdown."""
        return self.price_events(stats.events,
                                 benchmark=stats.benchmark,
                                 committed=stats.committed)

    def price_events(self, events: EventCounts,
                     benchmark: str = "",
                     committed: int = 0) -> EnergyBreakdown:
        """Price a bare :class:`EventCounts` (a whole run's totals or
        one timeline interval's delta) into a component breakdown."""
        params = self.params
        config = self.config
        dynamic: Dict[Component, float] = {c: 0.0 for c in Component}

        # Issue queue.
        iq_scale = self._iq_scale()
        dynamic[Component.IQ] = (
            events.iq_dispatches * params.iq_dispatch * iq_scale
            + events.iq_issues * params.iq_issue * iq_scale
            + events.iq_cam_compares * params.iq_cam_compare
            * self._iq_cam_scale()
        )
        # Load/store queue.
        lsq_scale = self._lsq_scale()
        dynamic[Component.LSQ] = (
            events.lsq_searches * params.lsq_search * lsq_scale
            + events.lsq_writes * params.lsq_write * lsq_scale
        )
        # Register file(s) + scoreboard.
        prf_scale = self._prf_scale()
        dynamic[Component.PRF] = (
            events.prf_reads * params.prf_read * prf_scale
            + events.prf_writes * params.prf_write * prf_scale
            + events.scoreboard_reads * params.scoreboard_read
        )
        # Rename.
        rat_scale = self._rat_scale()
        dynamic[Component.RAT] = (
            events.rat_reads * params.rat_read * rat_scale
            + events.rat_writes * params.rat_write * rat_scale
        )
        # Execution units and bypass (the OXU network).  IXU-executed
        # memory ops acquire the shared memory ports, so they appear in
        # the MEM pool's counter; their AGU energy belongs to the IXU.
        oxu_fus = config.total_oxu_fus
        oxu_mem_ops = events.fu_mem_ops - events.ixu_mem_ops
        dynamic[Component.FUS] = (
            events.fu_int_ops * params.fu_int_op
            + oxu_mem_ops * params.fu_agu_op
            + events.oxu_bypass_broadcasts * params.bypass_broadcast
            * (oxu_fus / REF_OXU_FUS)
            + events.intercluster_forwards * params.intercluster_forward
            + events.wrongpath_ops * params.wrongpath_op
        )
        # The IXU: same simple FUs, its own (separate) bypass network.
        if config.has_ixu:
            ixu_fus = config.ixu.total_fus
            ixu_int_ops = events.ixu_ops - events.ixu_mem_ops
            dynamic[Component.IXU] = (
                ixu_int_ops * params.fu_int_op
                + events.ixu_mem_ops * params.fu_agu_op
                + events.ixu_bypass_broadcasts * params.bypass_broadcast
                * (ixu_fus / REF_OXU_FUS)
            )
        else:
            dynamic[Component.IXU] = 0.0
        # FP units.
        dynamic[Component.FPU] = events.fu_fp_ops * params.fu_fp_op
        # Front end.
        dynamic[Component.DECODER] = events.decoded * params.decode
        dynamic[Component.OTHERS] = (
            events.fetched * params.fetch
            + events.predictor_lookups * params.predictor_lookup
            + events.rob_allocations * params.rob_alloc
        )
        # Caches.
        dynamic[Component.L1I] = events.l1i_accesses * params.l1i_access
        dynamic[Component.L1D] = (
            events.l1d_accesses * params.l1d_access
            + events.l1d_misses * params.l1d_fill
            + events.prefetches * params.prefetch
        )
        dynamic[Component.L2] = events.l2_accesses * params.l2_access

        # Static: leakage density x area x cycles.
        static: Dict[Component, float] = {}
        areas = self.area.breakdown()
        for component, area in areas.items():
            if component is Component.L2:
                density = params.lstp_leak_pj_per_cycle_mm2
            else:
                density = params.hp_leak_pj_per_cycle_mm2
            static[component] = density * area * events.cycles

        return EnergyBreakdown(
            model=config.name,
            benchmark=benchmark,
            cycles=events.cycles,
            committed=committed,
            dynamic=dynamic,
            static=static,
        )

"""Device and energy-model parameters.

``DeviceParams`` reproduces Table II verbatim; ``EnergyParams`` holds the
per-event base energies (pJ) and leakage densities the analytical model
uses.  Base energies are quoted at the BIG core's structure geometry
(Table I left column) and are scaled by capacity/port ratios for other
configurations — the scaling rule the paper takes from Weste & Harris.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceParams:
    """Table II: device configuration used by the McPAT evaluation."""

    technology: str = "22 nm, Fin-FET (MASTAR)"
    temperature_k: int = 320
    vdd: float = 0.8
    core_device_type: str = "high performance"
    core_ioff_na_per_um: float = 127.0
    l2_device_type: str = "low standby power"
    l2_ioff_na_per_um: float = 0.0968
    clock_ghz: float = 2.0

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.clock_ghz


#: Reference geometry the base energies are quoted at (BIG, Table I).
REF_IQ_ENTRIES = 64
REF_ISSUE_WIDTH = 4
REF_LSQ_ENTRIES = 64          # 32 loads + 32 stores
REF_PRF_ENTRIES = 224         # 128 INT + 96 FP
REF_RENAME_WIDTH = 3
REF_OXU_FUS = 6               # 2 int + 2 mem + 2 fp


@dataclass(frozen=True)
class EnergyParams:
    """Per-event base energies in pJ and leakage densities.

    Calibrated so the BIG model's component shares approximate the
    Figure 8a stacked bars (IQ a mid-teens share, caches ~30 %, L2
    nearly invisible, ...).  Absolute joules are not meaningful — every
    figure the paper reports is relative to BIG.
    """

    # Issue queue: CAM+RAM write on dispatch, payload read on issue,
    # per-entry tag comparison on each wakeup broadcast.
    iq_dispatch: float = 4.0
    iq_issue: float = 3.2
    iq_cam_compare: float = 0.5
    # Load/store queue: address CAM search and entry write.
    lsq_search: float = 11.0
    lsq_write: float = 9.0
    # Register files / rename.
    prf_read: float = 3.0
    prf_write: float = 3.8
    scoreboard_read: float = 0.05      # 1/64 of the PRF (paper V-B)
    rat_read: float = 1.7
    rat_write: float = 1.7
    rob_alloc: float = 4.0
    # Execution.
    fu_int_op: float = 5.0
    fu_agu_op: float = 3.6
    fu_fp_op: float = 24.0
    bypass_broadcast: float = 1.6      # at 6 FUs on the network
    intercluster_forward: float = 3.2  # CA cross-cluster result wires
    wrongpath_op: float = 1.4          # flushed work, int-op equivalent
    # Front end.
    decode: float = 5.2
    fetch: float = 8.0                 # fetch queue + ITLB + sequencing
    predictor_lookup: float = 6.0      # PHT + BTB
    # Caches (per access at Table I geometry; line-granular for the L1I).
    l1i_access: float = 70.0
    l1d_access: float = 25.0
    l1d_fill: float = 30.0
    l2_access: float = 24.0
    prefetch: float = 10.0
    # Leakage densities, pJ per cycle per mm².
    hp_leak_pj_per_cycle_mm2: float = 2.4
    lstp_leak_pj_per_cycle_mm2: float = 0.08


DEFAULT_DEVICE = DeviceParams()
DEFAULT_ENERGY = EnergyParams()

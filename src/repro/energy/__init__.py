"""McPAT-like energy and area model (paper Section VI, Table II).

The paper evaluates energy and area with McPAT 1.0 at 22 nm FinFET
(Table II).  This package substitutes an analytical model: every
structure's per-access energy scales with its capacity × ports (the
Weste & Harris rule the paper cites), leakage scales with area and the
device class (high-performance transistors in the core, low-standby-power
in the L2), and the per-event base constants are calibrated so the BIG
core's component breakdown matches the shares visible in Figure 8a/9a.
"""

from repro.energy.params import (
    DeviceParams,
    EnergyParams,
    DEFAULT_DEVICE,
    DEFAULT_ENERGY,
)
from repro.energy.area import AreaModel, Component
from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = [
    "DeviceParams",
    "EnergyParams",
    "DEFAULT_DEVICE",
    "DEFAULT_ENERGY",
    "AreaModel",
    "Component",
    "EnergyBreakdown",
    "EnergyModel",
]

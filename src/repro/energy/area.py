"""Circuit-area model (Figure 9).

Component areas in mm² at 22 nm, calibrated so the BIG core matches the
shares the paper reports: in HALF+FX the L2 is ~44 % and the FP units
~24 % of the whole (Section VI-F), the IXU adds ~2.7 % to the whole core,
and the IQ's area scales with capacity × width (which is why HALF's IQ is
a quarter of BIG's in Figure 9b).
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.core.config import CoreConfig


class Component(enum.Enum):
    """Figure 8a / 9a legend components."""

    IQ = "IQ"
    LSQ = "LSQ"
    PRF = "(P)RF"
    RAT = "RAT"
    IXU = "IXU"
    FUS = "FUs"
    OTHERS = "OTHERS"
    FPU = "FPU"
    DECODER = "Decoder"
    L1D = "L1D"
    L1I = "L1I"
    L2 = "L2"


#: BIG-geometry base areas, mm² (see module docstring for calibration).
_BASE = {
    Component.L2: 1.80,          # 512 KB LSTP
    Component.FPU: 0.97,         # 2 FP units
    Component.L1I: 0.22,         # 48 KB
    Component.L1D: 0.16,         # 32 KB
    Component.IQ: 0.10,          # 64 entries x 4-issue
    Component.LSQ: 0.08,         # 32 + 32 entries
    Component.PRF: 0.09,         # 128 + 96 entries, 9 ports
    Component.RAT: 0.04,
    Component.FUS: 0.12,         # 2 int + 2 mem
    Component.DECODER: 0.10,     # 3-wide
    Component.OTHERS: 0.32,      # ROB, fetch, predictors, TLBs, ...
}

#: One simple integer FU (adder+shifter+logic, Figure 6) and the
#: per-FU bypass wiring of the IXU.
IXU_FU_AREA = 0.025
IXU_BYPASS_AREA_PER_FU = 0.010


class AreaModel:
    """Computes the per-component area breakdown for a core config."""

    def __init__(self, config: CoreConfig):
        self.config = config

    def breakdown(self) -> Dict[Component, float]:
        """Component -> area in mm²."""
        config = self.config
        areas: Dict[Component, float] = {}
        hierarchy = config.hierarchy
        areas[Component.L2] = _BASE[Component.L2] * hierarchy.l2_kb / 512
        areas[Component.L1I] = _BASE[Component.L1I] * hierarchy.l1i_kb / 48
        areas[Component.L1D] = _BASE[Component.L1D] * hierarchy.l1d_kb / 32
        areas[Component.FPU] = _BASE[Component.FPU] * config.fu_fp / 2
        areas[Component.DECODER] = (
            _BASE[Component.DECODER] * config.fetch_width / 3
        )
        areas[Component.FUS] = (
            _BASE[Component.FUS] * (config.fu_int + config.fu_mem) / 4
        )
        if config.core_type == "inorder":
            # No rename/scheduling structures; a small architectural RF
            # and scoreboard stand in for the PRF.
            areas[Component.IQ] = 0.0
            areas[Component.LSQ] = 0.0
            areas[Component.RAT] = 0.0
            areas[Component.PRF] = _BASE[Component.PRF] * 64 / 224 * 0.5
            areas[Component.OTHERS] = _BASE[Component.OTHERS] * 0.55
        else:
            areas[Component.IQ] = (
                _BASE[Component.IQ]
                * (config.iq_entries / 64)
                * (config.issue_width / 4)
            )
            areas[Component.LSQ] = _BASE[Component.LSQ] * (
                (config.lq_entries + config.sq_entries) / 64
            )
            areas[Component.PRF] = _BASE[Component.PRF] * (
                (config.int_prf_entries + config.fp_prf_entries) / 224
            )
            areas[Component.RAT] = _BASE[Component.RAT]
            areas[Component.OTHERS] = _BASE[Component.OTHERS] * (
                0.8 + 0.2 * config.rob_entries / 128
            )
        if config.has_ixu:
            fus = config.ixu.total_fus
            areas[Component.IXU] = (
                fus * IXU_FU_AREA + fus * IXU_BYPASS_AREA_PER_FU
            )
        else:
            areas[Component.IXU] = 0.0
        return areas

    def total(self) -> float:
        """Whole-processor area in mm²."""
        return sum(self.breakdown().values())

    def core_area(self) -> float:
        """Area on high-performance devices (everything but the L2)."""
        breakdown = self.breakdown()
        return self.total() - breakdown[Component.L2]

"""Tests for RENO-style move elimination (Section VII-C extension)."""

from dataclasses import replace

import pytest

from repro.core import build_core, model_config
from repro.isa import DynInst, OpClass, int_reg
from repro.isa.registers import RegClass
from repro.rename import Renamer
from repro.workloads import generate_trace


def _mov(seq, dest, src, pc=None):
    return DynInst(seq=seq, pc=pc if pc is not None else 0x1000 + 4 * seq,
                   op=OpClass.MOV, dest=dest, srcs=(src,))


def _alu(seq, dest, srcs):
    return DynInst(seq=seq, pc=0x1000 + 4 * seq, op=OpClass.INT_ALU,
                   dest=dest, srcs=srcs)


def _reno_config(base="BIG"):
    return replace(model_config(base), name=f"{base}+RENO",
                   move_elimination=True)


class TestRenamerMoveElimination:
    def test_alias_maps_to_source_preg(self):
        renamer = Renamer()
        src_preg = renamer.rat[RegClass.INT].lookup(int_reg(2))
        renamed = renamer.rename_move(_mov(0, int_reg(5), int_reg(2)))
        assert renamed.eliminated
        assert renamed.dest == src_preg
        assert renamer.rat[RegClass.INT].lookup(int_reg(5)) == src_preg

    def test_no_register_allocated(self):
        renamer = Renamer()
        before = renamer.free_regs(RegClass.INT)
        renamer.rename_move(_mov(0, int_reg(5), int_reg(2)))
        assert renamer.free_regs(RegClass.INT) == before

    def test_shared_register_survives_one_name_dying(self):
        """Overwriting the alias must not reclaim the shared register
        while the original name is still live."""
        renamer = Renamer()
        shared = renamer.rat[RegClass.INT].lookup(int_reg(2))
        mov = renamer.rename_move(_mov(0, int_reg(5), int_reg(2)))
        # A later instruction overwrites r5: its commit releases the
        # alias reference, not the register.
        writer = renamer.rename(_alu(1, int_reg(5), ()))
        renamer.commit(mov)
        renamer.commit(writer)   # releases old r5 mapping == shared alias
        # The register is still reachable through r2.
        assert renamer.rat[RegClass.INT].lookup(int_reg(2)) == shared
        assert shared not in renamer.free[RegClass.INT]

    def test_register_reclaimed_when_both_names_die(self):
        renamer = Renamer()
        shared = renamer.rat[RegClass.INT].lookup(int_reg(2))
        mov = renamer.rename_move(_mov(0, int_reg(5), int_reg(2)))
        writer_a = renamer.rename(_alu(1, int_reg(5), ()))
        writer_b = renamer.rename(_alu(2, int_reg(2), ()))
        renamer.commit(mov)
        renamer.commit(writer_a)
        assert shared not in renamer.free[RegClass.INT]
        renamer.commit(writer_b)
        assert shared in renamer.free[RegClass.INT]

    def test_squash_restores_alias(self):
        renamer = Renamer()
        before = renamer.rat[RegClass.INT].lookup(int_reg(5))
        free_before = renamer.free_regs(RegClass.INT)
        mov = renamer.rename_move(_mov(0, int_reg(5), int_reg(2)))
        renamer.squash(mov)
        assert renamer.rat[RegClass.INT].lookup(int_reg(5)) == before
        assert renamer.free_regs(RegClass.INT) == free_before

    def test_rejects_non_move_shapes(self):
        renamer = Renamer()
        with pytest.raises(ValueError):
            renamer.rename_move(_alu(0, int_reg(1),
                                     (int_reg(2), int_reg(3))))

    def test_counts_eliminations(self):
        renamer = Renamer()
        renamer.rename_move(_mov(0, int_reg(5), int_reg(2)))
        renamer.rename_move(_mov(1, int_reg(6), int_reg(3)))
        assert renamer.moves_eliminated == 2


class TestRenoInCore:
    def test_moves_eliminated_and_not_executed(self):
        trace = []
        for i in range(200):
            base = 2 * i
            trace.append(_alu(base, int_reg(1), (int_reg(25),)))
            trace.append(_mov(base + 1, int_reg(2), int_reg(1)))
        core = build_core(_reno_config())
        stats = core.run(trace)
        assert stats.committed == 400
        assert stats.events.moves_eliminated == 200
        # Eliminated moves never issue: only the ALU ops execute.
        assert stats.events.fu_int_ops == 200
        assert stats.events.iq_dispatches == 200

    def test_consumer_sees_moved_value(self):
        """A consumer of the mov's destination waits for the original
        producer — correctness of the aliasing."""
        trace = [
            DynInst(seq=0, pc=0x1000, op=OpClass.INT_DIV,
                    dest=int_reg(1), srcs=(int_reg(25),)),
            _mov(1, int_reg(2), int_reg(1)),
            _alu(2, int_reg(3), (int_reg(2),)),
        ]
        stats = build_core(_reno_config()).run(trace)
        # The consumer cannot finish before the 12-cycle divide.
        assert stats.cycles >= 12
        assert stats.committed == 3

    def test_disabled_by_default(self):
        trace = [_mov(0, int_reg(2), int_reg(1))]
        stats = build_core("BIG").run(trace)
        assert stats.events.moves_eliminated == 0
        assert stats.events.fu_int_ops == 1

    def test_works_with_fxa(self):
        config = _reno_config("HALF+FX")
        stats = build_core(config).run(generate_trace("gcc", 2500))
        assert stats.committed == 2500
        assert stats.events.moves_eliminated > 0
        assert stats.ixu_executed > 0

    def test_real_workloads_on_all_models(self):
        for base in ("BIG", "HALF+FX"):
            stats = build_core(_reno_config(base)).run(
                generate_trace("perlbench", 2000))
            assert stats.committed == 2000

    def test_violation_replay_with_reno(self):
        trace = [
            DynInst(seq=0, pc=0x1000, op=OpClass.INT_DIV,
                    dest=int_reg(1), srcs=(int_reg(25),)),
            DynInst(seq=1, pc=0x1004, op=OpClass.STORE,
                    srcs=(int_reg(1), int_reg(26)), mem_addr=0x8000,
                    mem_size=8),
            DynInst(seq=2, pc=0x1008, op=OpClass.LOAD,
                    dest=int_reg(4), srcs=(int_reg(27),),
                    mem_addr=0x8000, mem_size=8),
            _mov(3, int_reg(5), int_reg(4)),
            _alu(4, int_reg(6), (int_reg(5),)),
        ]
        stats = build_core(_reno_config()).run(trace)
        assert stats.violations >= 1
        assert stats.committed == 5


class TestWorkloadMoves:
    def test_generator_emits_moves(self):
        trace = generate_trace("gcc", 5000)
        movs = sum(1 for inst in trace if inst.op is OpClass.MOV)
        assert 0.01 < movs / len(trace) < 0.12
        for inst in trace:
            if inst.op is OpClass.MOV:
                assert len(inst.srcs) == 1
                assert inst.dest is not None

"""Preset configurations must match Table I exactly."""

import pytest

from repro.core import (
    CoreConfig,
    IXUConfig,
    MODEL_NAMES,
    build_core,
    model_config,
)
from repro.core.presets import PAPER_IXU


class TestTable1Conformance:
    def test_big(self):
        config = model_config("BIG")
        assert config.core_type == "ooo"
        assert config.fetch_width == 3
        assert config.issue_width == 4
        assert config.iq_entries == 64
        assert (config.fu_int, config.fu_mem, config.fu_fp) == (2, 2, 2)
        assert config.rob_entries == 128
        assert config.int_prf_entries == 128
        assert config.fp_prf_entries == 96
        assert config.lq_entries == 32 and config.sq_entries == 32
        assert config.pht_entries == 4096
        assert config.btb_entries == 512
        assert not config.has_ixu

    def test_half_is_big_with_half_iq(self):
        big, half = model_config("BIG"), model_config("HALF")
        assert half.issue_width == big.issue_width // 2
        assert half.iq_entries == big.iq_entries // 2
        assert half.rob_entries == big.rob_entries
        assert half.fu_int == big.fu_int

    def test_little(self):
        config = model_config("LITTLE")
        assert config.core_type == "inorder"
        assert config.fetch_width == 2
        assert config.issue_width == 2
        assert (config.fu_int, config.fu_mem, config.fu_fp) == (2, 1, 1)
        assert config.fetch_breaks_on_taken

    def test_fx_models(self):
        for name in ("HALF+FX", "BIG+FX"):
            config = model_config(name)
            assert config.has_ixu
            assert config.ixu == PAPER_IXU
            assert config.ixu.stage_fus == (3, 1, 1)
            assert config.ixu.bypass_stage_limit == 2
        assert model_config("HALF+FX").iq_entries == 32
        assert model_config("BIG+FX").iq_entries == 64

    def test_mispredict_penalties(self):
        assert model_config("BIG").mispredict_depth == 11
        assert model_config("LITTLE").mispredict_depth == 8
        # FXA pays the IXU depth + register-read stage on top.
        assert model_config("HALF+FX").mispredict_depth == 15

    def test_shared_memory_hierarchy(self):
        for name in MODEL_NAMES:
            hierarchy = model_config(name).hierarchy
            assert hierarchy.l1i_kb == 48
            assert hierarchy.l1d_kb == 32
            assert hierarchy.l2_kb == 512
            assert hierarchy.mem_latency == 200

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            model_config("MEDIUM")

    def test_build_core_types(self):
        from repro.core import FXACore, InOrderCore, OutOfOrderCore

        assert isinstance(build_core("BIG"), OutOfOrderCore)
        assert isinstance(build_core("LITTLE"), InOrderCore)
        assert isinstance(build_core("HALF+FX"), FXACore)
        assert not isinstance(build_core("BIG"), FXACore)

    def test_build_core_from_config(self):
        config = model_config("HALF")
        core = build_core(config)
        assert core.config is config


class TestConfigValidation:
    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            CoreConfig(name="x", core_type="vliw")

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CoreConfig(name="x", core_type="ooo", fetch_width=0)

    def test_ixu_total_fus(self):
        assert IXUConfig(stage_fus=(3, 1, 1)).total_fus == 5
        assert IXUConfig(stage_fus=(3, 3, 3)).total_fus == 9
        assert IXUConfig(stage_fus=(2,)).depth == 1

    def test_oxu_fu_total(self):
        assert model_config("BIG").total_oxu_fus == 6
        assert model_config("LITTLE").total_oxu_fus == 4

"""Unit/behavioural tests for the out-of-order core."""

import pytest

from repro.core import (
    CoreConfig,
    OutOfOrderCore,
    build_core,
    big_config,
    half_config,
)
from repro.isa import DynInst, OpClass, fp_reg, int_reg
from repro.workloads import generate_trace


def _alu_stream(n, dest_mod=20, src_base=25):
    """Independent 1-source ALU ops (sources never written: always ready)."""
    return [
        DynInst(seq=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
                dest=int_reg(i % dest_mod), srcs=(int_reg(src_base + i % 4),))
        for i in range(n)
    ]


def _serial_chain(n):
    return [
        DynInst(seq=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
                dest=int_reg(1), srcs=(int_reg(1),))
        for i in range(n)
    ]


class TestBasicExecution:
    def test_commits_whole_trace(self):
        core = build_core("BIG")
        trace = _alu_stream(500)
        stats = core.run(trace)
        assert stats.committed == 500
        assert stats.cycles > 0

    def test_empty_trace(self):
        stats = build_core("BIG").run([])
        assert stats.committed == 0

    def test_rejects_nonzero_base(self):
        trace = _alu_stream(10)[5:]
        with pytest.raises(ValueError):
            build_core("BIG").run(trace)

    def test_deterministic(self):
        trace = generate_trace("gcc", 1500)
        a = build_core("BIG").run(trace)
        b = build_core("BIG").run(trace)
        assert a.cycles == b.cycles
        assert a.mispredictions == b.mispredictions

    def test_max_cycles_cuts_run(self):
        trace = _alu_stream(5000)
        stats = build_core("BIG").run(trace, max_cycles=50)
        assert stats.cycles <= 50
        assert stats.committed < 5000

    def test_requires_ooo_config(self):
        from repro.core.presets import little_config

        with pytest.raises(ValueError):
            OutOfOrderCore(little_config())


class TestThroughputLimits:
    def test_independent_alus_bounded_by_int_fus(self):
        """BIG has 2 INT FUs: independent ALU IPC ~2, never above."""
        stats = build_core("BIG").run(_alu_stream(6000))
        assert 1.5 < stats.ipc <= 2.05

    def test_serial_chain_runs_back_to_back(self):
        stats = build_core("BIG").run(_serial_chain(3000))
        assert 0.75 < stats.ipc <= 1.01

    def test_divide_is_slow(self):
        trace = [
            DynInst(seq=i, pc=0x1000 + 4 * i, op=OpClass.INT_DIV,
                    dest=int_reg(1), srcs=(int_reg(1),))
            for i in range(100)
        ]
        stats = build_core("BIG").run(trace)
        # Serial unpipelined divides: >= latency cycles each.
        assert stats.cycles >= 100 * 12

    def test_fp_uses_fp_pool(self):
        trace = [
            DynInst(seq=i, pc=0x1000 + 4 * (i % 16), op=OpClass.FP_MUL,
                    dest=fp_reg(i % 20), srcs=(fp_reg(25), fp_reg(26)))
            for i in range(2000)
        ]
        stats = build_core("BIG").run(trace)
        assert stats.events.fu_fp_ops == 2000
        assert stats.ipc <= 2.05  # two FP units


class TestBranchHandling:
    def test_mispredict_costs_cycles(self):
        """Same instruction count; alternating-random branches cost more
        than no branches at all."""
        alu = build_core("BIG").run(_alu_stream(2000))
        import random

        rng = random.Random(7)
        branchy = []
        for i in range(2000):
            if i % 5 == 4:
                taken = rng.random() < 0.5
                branchy.append(DynInst(
                    seq=i, pc=0x1000 + 4 * (i % 40), op=OpClass.BR_COND,
                    srcs=(int_reg(25),), taken=taken,
                    target=0x1000 + 4 * ((i + 1) % 40) if taken else None))
            else:
                branchy.append(DynInst(
                    seq=i, pc=0x1000 + 4 * (i % 40), op=OpClass.INT_ALU,
                    dest=int_reg(i % 20), srcs=(int_reg(25),)))
        # Keep control-flow self-consistent is not required by the core
        # (trace-driven), only pcs repeat for training.
        stats = build_core("BIG").run(branchy)
        assert stats.mispredictions > 0
        assert stats.cycles > alu.cycles

    def test_predictable_loop_branch_cheap(self):
        branchy = []
        for i in range(3000):
            if i % 10 == 9:
                branchy.append(DynInst(
                    seq=i, pc=0x1024, op=OpClass.BR_COND,
                    srcs=(int_reg(25),), taken=True, target=0x1000))
            else:
                branchy.append(DynInst(
                    seq=i, pc=0x1000 + 4 * (i % 9), op=OpClass.INT_ALU,
                    dest=int_reg(i % 20), srcs=(int_reg(25),)))
        stats = build_core("BIG").run(branchy)
        assert stats.misprediction_rate < 0.05


class TestMemorySystemInteraction:
    def test_load_latency_on_chain(self):
        """A load-use chain pays at least the L1 latency per link."""
        trace = []
        for i in range(200):
            trace.append(DynInst(
                seq=2 * i, pc=0x1000 + 8 * (i % 32), op=OpClass.LOAD,
                dest=int_reg(1), srcs=(int_reg(1),),
                mem_addr=0x10000 + 8 * (i % 64), mem_size=8))
            trace.append(DynInst(
                seq=2 * i + 1, pc=0x1004 + 8 * (i % 32),
                op=OpClass.INT_ALU, dest=int_reg(1), srcs=(int_reg(1),)))
        stats = build_core("BIG").run(trace)
        # Each pair costs >= 1 (AGU) + 2 (L1) + 1 (ALU) on the chain.
        assert stats.cycles >= 200 * 4 * 0.9

    def test_store_to_load_forwarding(self):
        trace = []
        for i in range(100):
            base = 4 * i
            trace.append(DynInst(
                seq=base, pc=0x1000, op=OpClass.INT_ALU,
                dest=int_reg(2), srcs=(int_reg(25),)))
            trace.append(DynInst(
                seq=base + 1, pc=0x1004, op=OpClass.STORE,
                srcs=(int_reg(25), int_reg(2)),
                mem_addr=0x20000 + 8 * i, mem_size=8))
            trace.append(DynInst(
                seq=base + 2, pc=0x1008, op=OpClass.LOAD,
                dest=int_reg(3), srcs=(int_reg(26),),
                mem_addr=0x20000 + 8 * i, mem_size=8))
            trace.append(DynInst(
                seq=base + 3, pc=0x100c, op=OpClass.INT_ALU,
                dest=int_reg(4), srcs=(int_reg(3),)))
        stats = build_core("BIG").run(trace)
        assert stats.forwarded_loads > 0

    def test_ordering_violation_squashes_and_replays(self):
        trace = [
            DynInst(seq=0, pc=0x1000, op=OpClass.INT_DIV,
                    dest=int_reg(1), srcs=(int_reg(25),)),
            DynInst(seq=1, pc=0x1004, op=OpClass.STORE,
                    srcs=(int_reg(1), int_reg(26)), mem_addr=0x8000,
                    mem_size=8),
            DynInst(seq=2, pc=0x1008, op=OpClass.LOAD,
                    dest=int_reg(4), srcs=(int_reg(27),),
                    mem_addr=0x8000, mem_size=8),
            DynInst(seq=3, pc=0x100c, op=OpClass.INT_ALU,
                    dest=int_reg(5), srcs=(int_reg(4),)),
        ]
        stats = build_core("BIG").run(trace)
        assert stats.violations == 1
        assert stats.squashed >= 2      # the load and its consumer
        assert stats.committed == 4     # replay completes correctly

    def test_store_set_prevents_repeat_violation(self):
        """The same (load, store) pair violating once must not violate
        on later dynamic instances (paper Section II-D3)."""
        trace = []
        for i in range(20):
            base = 4 * i
            trace.extend([
                DynInst(seq=base, pc=0x1000, op=OpClass.INT_DIV,
                        dest=int_reg(1), srcs=(int_reg(25),)),
                DynInst(seq=base + 1, pc=0x1004, op=OpClass.STORE,
                        srcs=(int_reg(1), int_reg(26)),
                        mem_addr=0x8000 + 64 * i, mem_size=8),
                DynInst(seq=base + 2, pc=0x1008, op=OpClass.LOAD,
                        dest=int_reg(4), srcs=(int_reg(27),),
                        mem_addr=0x8000 + 64 * i, mem_size=8),
                DynInst(seq=base + 3, pc=0x100c, op=OpClass.INT_ALU,
                        dest=int_reg(5), srcs=(int_reg(4),)),
            ])
        stats = build_core("BIG").run(trace)
        assert stats.violations <= 2
        assert stats.committed == len(trace)


class TestResourceLimits:
    def test_tiny_rob_still_correct(self):
        config = big_config()
        from dataclasses import replace

        tiny = replace(config, rob_entries=8, iq_entries=4)
        stats = build_core(tiny).run(_alu_stream(500))
        assert stats.committed == 500

    def test_tiny_lsq_still_correct(self):
        from dataclasses import replace

        tiny = replace(big_config(), lq_entries=2, sq_entries=2)
        trace = generate_trace("bzip2", 1200)
        stats = build_core(tiny).run(trace)
        assert stats.committed == 1200

    def test_half_never_issues_more_than_two(self):
        stats = build_core("HALF").run(_alu_stream(3000))
        assert stats.ipc <= 2.05

    def test_event_counts_populated(self):
        stats = build_core("BIG").run(generate_trace("gcc", 1200))
        events = stats.events
        assert events.iq_dispatches == events.iq_issues
        assert events.rob_allocations >= stats.committed
        assert events.prf_reads > 0
        assert events.rat_reads > 0
        assert events.l1i_accesses > 0

    def test_synthetic_benchmarks_run_on_all_ooo_models(self):
        for model in ("BIG", "HALF"):
            stats = build_core(model).run(generate_trace("astar", 1500))
            assert stats.committed == 1500

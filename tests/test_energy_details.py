"""Detailed energy/area model tests: scaling rules and edge cases."""

from dataclasses import replace

import pytest

from repro.core import IXUConfig, model_config
from repro.core.presets import half_fx_config
from repro.core.stats import CoreStats
from repro.energy import AreaModel, Component, EnergyModel
from repro.energy.params import EnergyParams


def _stats(model="BIG", **events):
    stats = CoreStats(model=model, committed=events.pop("committed", 100))
    for key, value in events.items():
        setattr(stats.events, key, value)
    return stats


class TestScalingRules:
    def test_prf_scale_inorder_is_small(self):
        little = EnergyModel(model_config("LITTLE"))
        big = EnergyModel(model_config("BIG"))
        events = dict(prf_reads=1000, cycles=0)
        little_energy = little.evaluate(
            _stats("LITTLE", **events)).dynamic[Component.PRF]
        big_energy = big.evaluate(
            _stats("BIG", **events)).dynamic[Component.PRF]
        assert little_energy < 0.3 * big_energy

    def test_cam_compare_scales_with_width_only(self):
        events = dict(iq_cam_compares=1000, cycles=0)
        big = EnergyModel(model_config("BIG")).evaluate(
            _stats(**events)).dynamic[Component.IQ]
        half = EnergyModel(model_config("HALF")).evaluate(
            _stats("HALF", **events)).dynamic[Component.IQ]
        assert half == pytest.approx(big / 2)  # width 2 vs 4

    def test_ixu_bypass_scales_with_its_fus(self):
        small = EnergyModel(half_fx_config(IXUConfig(stage_fus=(1,))))
        large = EnergyModel(half_fx_config(IXUConfig(stage_fus=(3, 3))))
        events = dict(ixu_bypass_broadcasts=1000, cycles=0)
        e_small = small.evaluate(
            _stats("FX", **events)).dynamic[Component.IXU]
        e_large = large.evaluate(
            _stats("FX", **events)).dynamic[Component.IXU]
        assert e_large == pytest.approx(6 * e_small)

    def test_scoreboard_read_is_cheap(self):
        """Paper Section V-B: scoreboard is 1/64 of the PRF."""
        params = EnergyParams()
        assert params.scoreboard_read < params.prf_read / 32

    def test_wrongpath_energy_charged_to_fus(self):
        model = EnergyModel(model_config("BIG"))
        quiet = model.evaluate(_stats(cycles=0))
        noisy = model.evaluate(_stats(cycles=0, wrongpath_ops=1000.0))
        assert (noisy.dynamic[Component.FUS]
                > quiet.dynamic[Component.FUS])

    def test_intercluster_forwards_priced_into_fus(self):
        model = EnergyModel(model_config("CA"))
        base = model.evaluate(_stats("CA", cycles=0))
        crossy = model.evaluate(
            _stats("CA", cycles=0, intercluster_forwards=1000))
        assert (crossy.dynamic[Component.FUS]
                > base.dynamic[Component.FUS])


class TestBreakdownHelpers:
    def test_energy_per_instruction(self):
        model = EnergyModel(model_config("BIG"))
        breakdown = model.evaluate(_stats(decoded=100, cycles=100,
                                          committed=100))
        assert breakdown.energy_per_instruction == pytest.approx(
            breakdown.total / 100)

    def test_zero_committed(self):
        model = EnergyModel(model_config("BIG"))
        breakdown = model.evaluate(_stats(cycles=0, committed=0))
        assert breakdown.energy_per_instruction == 0.0

    def test_component_total(self):
        model = EnergyModel(model_config("BIG"))
        breakdown = model.evaluate(_stats(decoded=10, cycles=10))
        total = breakdown.component_total(Component.DECODER)
        assert total == pytest.approx(
            breakdown.dynamic[Component.DECODER]
            + breakdown.static[Component.DECODER])


class TestAreaDetails:
    def test_ca_area_close_to_big(self):
        """The clustered comparator has BIG-equivalent structures."""
        big = AreaModel(model_config("BIG")).total()
        ca = AreaModel(model_config("CA")).total()
        assert abs(ca / big - 1.0) < 0.05

    def test_cache_area_scales_with_capacity(self):
        from repro.mem import HierarchyConfig

        big_l2 = AreaModel(model_config("BIG")).breakdown()[Component.L2]
        small = replace(model_config("BIG"),
                        hierarchy=HierarchyConfig(l2_kb=256))
        small_l2 = AreaModel(small).breakdown()[Component.L2]
        assert small_l2 == pytest.approx(big_l2 / 2)

    def test_fpu_area_scales_with_units(self):
        little = AreaModel(model_config("LITTLE")).breakdown()
        big = AreaModel(model_config("BIG")).breakdown()
        assert little[Component.FPU] == pytest.approx(
            big[Component.FPU] / 2)

"""Tests for the alternative direction predictors (extensions)."""

import random

import pytest

from repro.branch import BranchPredictor
from repro.branch.direction import (
    BimodalDirection,
    GShareDirection,
    TournamentDirection,
    make_direction_predictor,
)
from repro.core import build_core, model_config
from repro.workloads import generate_trace
from dataclasses import replace


def _feed(direction, outcomes, pc=0x4000):
    """Run the predict/train protocol over an outcome sequence; returns
    the miss count over the second half (post warm-up)."""
    misses = 0
    half = len(outcomes) // 2
    for i, taken in enumerate(outcomes):
        pred, token = direction.predict_and_capture(pc, taken)
        direction.train(token, taken)
        if i >= half and pred != taken:
            misses += 1
    return misses


class TestBimodal:
    def test_learns_bias(self):
        outcomes = [True] * 200
        assert _feed(BimodalDirection(256), outcomes) == 0

    def test_cannot_learn_alternation(self):
        outcomes = [bool(i % 2) for i in range(400)]
        misses = _feed(BimodalDirection(256), outcomes)
        assert misses > 50  # bimodal has no history

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BimodalDirection(1000)


class TestGShareDirection:
    def test_learns_alternation(self):
        outcomes = [bool(i % 2) for i in range(400)]
        misses = _feed(GShareDirection(1024, history_bits=4), outcomes)
        assert misses < 10


class TestTournament:
    def test_learns_bias(self):
        outcomes = [True] * 200
        assert _feed(TournamentDirection(1024), outcomes) <= 1

    def test_learns_alternation_via_gshare_side(self):
        outcomes = [bool(i % 2) for i in range(600)]
        misses = _feed(TournamentDirection(1024), outcomes)
        assert misses < 20

    def test_beats_or_matches_components_on_mixed_load(self):
        rng = random.Random(11)
        # Two branches: one biased, one patterned.
        sequences = {
            0x4000: [rng.random() < 0.95 for _ in range(600)],
            0x8000: [bool(i % 2) for i in range(600)],
        }
        scores = {}
        for name in ("bimodal", "gshare", "tournament"):
            direction = make_direction_predictor(name, 1024)
            misses = 0
            for i in range(600):
                for pc, outcomes in sequences.items():
                    taken = outcomes[i]
                    pred, token = direction.predict_and_capture(pc, taken)
                    direction.train(token, taken)
                    if i >= 300 and pred != taken:
                        misses += 1
            scores[name] = misses
        assert scores["tournament"] <= min(scores["bimodal"],
                                           scores["gshare"]) * 1.3

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_direction_predictor("perceptron")


class TestPredictorKindInCore:
    def test_all_kinds_run_end_to_end(self):
        trace = generate_trace("sjeng", 1500)
        for kind in ("gshare", "bimodal", "tournament"):
            config = replace(model_config("BIG"), predictor_kind=kind)
            stats = build_core(config).run(trace)
            assert stats.committed == 1500
            assert stats.branches > 0

    def test_branch_predictor_kind_param(self):
        predictor = BranchPredictor(kind="tournament")
        assert predictor.gshare is None
        predictor = BranchPredictor()  # default keeps the attribute
        assert predictor.gshare is not None

"""Tests for the persistent on-disk result cache and its fingerprints."""

import json
from dataclasses import replace

import pytest

from repro.core import model_config
from repro.experiments.diskcache import DiskCache, fingerprint
from repro.experiments.runner import (
    BenchmarkRun,
    clear_cache,
    run_benchmark,
    set_disk_cache,
)

SMALL = dict(measure=600, warmup=1500)


@pytest.fixture
def cache(tmp_path):
    disk = DiskCache(tmp_path / "cache")
    set_disk_cache(disk)
    clear_cache()
    yield disk
    set_disk_cache(None)
    clear_cache()


def _params(config):
    return (config, "hmmer", SMALL["measure"], SMALL["warmup"], 0)


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert fingerprint(*_params(model_config("BIG"))) == fingerprint(
            *_params(model_config("BIG"))
        )

    def test_differs_across_run_parameters(self):
        base = fingerprint(model_config("BIG"), "hmmer", 600, 1500, 0)
        assert base != fingerprint(model_config("BIG"), "lbm", 600, 1500, 0)
        assert base != fingerprint(model_config("BIG"), "hmmer", 601, 1500, 0)
        assert base != fingerprint(model_config("BIG"), "hmmer", 600, 1501, 0)
        assert base != fingerprint(model_config("BIG"), "hmmer", 600, 1500, 1)

    @pytest.mark.parametrize("change", [
        # Regression: these fields were once missing from the memo key,
        # so configs differing only here could alias to one cached run.
        dict(lq_entries=16),
        dict(sq_entries=16),
        dict(int_prf_entries=64),
        dict(fp_prf_entries=48),
        dict(pht_entries=1024),
        dict(btb_entries=128),
    ])
    def test_every_config_field_participates(self, change):
        big = model_config("BIG")
        altered = replace(big, **change)
        assert fingerprint(*_params(big)) != fingerprint(*_params(altered))

    def test_hierarchy_participates(self):
        big = model_config("BIG")
        altered = replace(
            big, hierarchy=replace(big.hierarchy,
                                   l1d_kb=big.hierarchy.l1d_kb * 2)
        )
        assert fingerprint(*_params(big)) != fingerprint(*_params(altered))


class TestDiskCache:
    def test_miss_then_hit(self, cache):
        big = model_config("BIG")
        assert cache.load(*_params(big)) is None
        assert cache.misses == 1
        run = run_benchmark(big, "hmmer", **SMALL)
        assert cache.stores == 1
        loaded = cache.load(*_params(big))
        assert cache.hits == 1
        assert loaded.to_dict() == run.to_dict()

    def test_survives_memory_cache_clear(self, cache):
        big = model_config("BIG")
        first = run_benchmark(big, "hmmer", **SMALL)
        clear_cache()
        second = run_benchmark(big, "hmmer", **SMALL)
        assert second is not first
        assert second.to_dict() == first.to_dict()
        assert cache.hits == 1
        assert cache.stores == 1  # the disk hit is not re-stored

    def test_config_change_is_a_miss(self, cache):
        big = model_config("BIG")
        run_benchmark(big, "hmmer", **SMALL)
        altered = replace(big, lq_entries=big.lq_entries // 2)
        assert cache.load(*_params(altered)) is None

    def test_corrupt_entry_is_dropped(self, cache):
        big = model_config("BIG")
        run_benchmark(big, "hmmer", **SMALL)
        entry = next(cache.root.glob("*/*.json"))
        entry.write_text("{ torn json")
        assert cache.load(*_params(big)) is None
        assert not entry.exists()

    def test_clear_and_len(self, cache):
        run_benchmark(model_config("BIG"), "hmmer", **SMALL)
        run_benchmark(model_config("HALF"), "hmmer", **SMALL)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRoundTrip:
    def test_benchmark_run_round_trips_through_json(self, cache):
        run = run_benchmark(model_config("HALF+FX"), "hmmer", **SMALL)
        payload = json.loads(json.dumps(run.to_dict()))
        restored = BenchmarkRun.from_dict(payload)
        assert restored.to_dict() == run.to_dict()
        assert restored.ipc == run.ipc
        assert restored.total_energy == run.total_energy
        assert restored.stats.events.cycles == run.stats.events.cycles
        assert restored.stats.ixu_by_stage == run.stats.ixu_by_stage

"""Tests for the parallel experiment pool (determinism, accounting)."""

import pytest

from repro.core import model_config
from repro.experiments.pool import (
    MAX_RETRY_DELAY,
    JobFailure,
    JobTimeoutError,
    SimJob,
    retry_delay,
    run_jobs,
    total_wall_seconds,
)
from repro.experiments.runner import (
    clear_cache,
    prefetch,
    run_benchmark,
    set_jobs,
)

SMALL = dict(measure=600, warmup=1500)


def _jobs():
    return [
        SimJob(config=model_config(model), benchmark=bench, **SMALL)
        for model in ("BIG", "HALF+FX")
        for bench in ("hmmer", "lbm")
    ]


class TestRunJobs:
    def test_empty_job_list(self):
        assert run_jobs([]) == []

    def test_serial_results_in_submission_order(self):
        jobs = _jobs()
        results = run_jobs(jobs, workers=1)
        assert [r.job for r in results] == jobs
        for result in results:
            assert result.run.model == result.job.config.name
            assert result.run.benchmark == result.job.benchmark

    def test_parallel_matches_serial_bit_for_bit(self):
        jobs = _jobs()
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=4)
        assert [r.job for r in parallel] == jobs
        for s, p in zip(serial, parallel):
            assert s.run.to_dict() == p.run.to_dict()

    def test_wall_clock_accounting(self):
        results = run_jobs(_jobs()[:2], workers=1)
        for result in results:
            assert result.wall_seconds > 0
            assert result.worker_pid > 0
        assert total_wall_seconds(results) == pytest.approx(
            sum(r.wall_seconds for r in results)
        )

    def test_serial_timeout_quarantines(self):
        outcomes = run_jobs(_jobs()[:2], workers=1, timeout=0.0)
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert isinstance(outcome, JobFailure)
            assert outcome.cause == "timeout"
            assert outcome.attempts == 1  # post-hoc: never retried

    def test_serial_timeout_fail_fast_raises(self):
        with pytest.raises(JobTimeoutError):
            run_jobs(_jobs()[:2], workers=1, timeout=0.0,
                     fail_fast=True)

    def test_parallel_timeout_fail_fast_raises(self):
        jobs = [
            SimJob(config=model_config("BIG"), benchmark="hmmer",
                   measure=4000, warmup=12000),
            SimJob(config=model_config("HALF+FX"), benchmark="lbm",
                   measure=4000, warmup=12000),
        ]
        with pytest.raises(JobTimeoutError):
            run_jobs(jobs, workers=2, timeout=1e-4, fail_fast=True)


class TestRetryDelay:
    def _job(self):
        return SimJob(config=model_config("BIG"), benchmark="hmmer",
                      **SMALL)

    def test_zero_backoff_means_no_delay(self):
        assert retry_delay(0.0, 5) == 0.0
        assert retry_delay(0.0, 5, self._job()) == 0.0

    def test_exponential_growth_without_jitter(self):
        assert retry_delay(0.25, 1) == 0.25
        assert retry_delay(0.25, 2) == 0.5
        assert retry_delay(0.25, 3) == 1.0

    def test_delay_is_capped(self):
        # Regression: the old unbounded 2**n backoff reached minutes
        # within a dozen attempts and hours soon after.
        assert retry_delay(0.25, 60) == MAX_RETRY_DELAY
        assert retry_delay(0.25, 60, self._job()) <= MAX_RETRY_DELAY
        assert retry_delay(1.0, 6, cap=4.0) == 4.0

    def test_jitter_is_deterministic_per_job_and_attempt(self):
        job = self._job()
        assert (retry_delay(0.25, 2, job)
                == retry_delay(0.25, 2, job))
        # Different attempts (and different jobs) spread differently.
        other = SimJob(config=model_config("LITTLE"),
                       benchmark="hmmer", **SMALL)
        delays = {retry_delay(0.25, attempt, job)
                  for attempt in (1, 2, 3)}
        assert len(delays) == 3
        assert (retry_delay(0.25, 2, job)
                != retry_delay(0.25, 2, other))

    def test_jitter_stays_within_half_to_full_delay(self):
        job = self._job()
        for attempt in range(1, 12):
            base = min(MAX_RETRY_DELAY, 0.25 * 2.0 ** (attempt - 1))
            delay = retry_delay(0.25, attempt, job)
            assert 0.5 * base <= delay <= base


class TestPrefetchParallel:
    def test_parallel_prefetch_matches_serial_runs(self):
        pairs = [
            (model_config(model), bench)
            for model in ("BIG", "HALF+FX")
            for bench in ("hmmer", "lbm")
        ]
        clear_cache()
        serial = {
            (c.name, b): run_benchmark(c, b, **SMALL).to_dict()
            for c, b in pairs
        }
        clear_cache()
        set_jobs(4)
        try:
            simulated = prefetch(pairs, **SMALL)
        finally:
            set_jobs(1)
        assert simulated == len(pairs)
        for config, bench in pairs:
            run = run_benchmark(config, bench, **SMALL)
            assert run.to_dict() == serial[(config.name, bench)]

    def test_prefetch_skips_cached_pairs(self):
        clear_cache()
        pairs = [(model_config("BIG"), "hmmer")]
        assert prefetch(pairs, **SMALL) == 1
        assert prefetch(pairs, **SMALL) == 0

"""Tests for the Kanata pipeline-trace writer (Konata format)."""

import pytest

from repro import build_core, generate_trace
from repro.obs import KanataWriter, Observability


def write_trace(tmp_path, model="HALF+FX", insts=600, window=None):
    path = tmp_path / "trace.kanata"
    writer = KanataWriter(str(path), window=window)
    obs = Observability(metrics=False, stalls=False, pipeview=writer)
    build_core(model, obs=obs).run(generate_trace("hmmer", insts))
    writer.close()
    return path.read_text().splitlines()


class TestFormat:
    def test_header_and_cycle_commands(self, tmp_path):
        lines = write_trace(tmp_path)
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        # After the origin, time only advances via relative C commands.
        deltas = [line for line in lines[2:] if line.startswith("C")]
        assert deltas
        assert all(int(line.split("\t")[1]) > 0 for line in deltas)
        assert not any(line.startswith("C=") for line in lines[2:])

    def test_every_instruction_is_complete(self, tmp_path):
        """Each file id is introduced (I), staged (S...E) and retired
        (R) — the shape Konata requires to lay out a lane."""
        lines = write_trace(tmp_path)
        introduced, staged, ended, retired = set(), set(), set(), set()
        for line in lines[1:]:
            parts = line.split("\t")
            if parts[0] == "I":
                introduced.add(parts[1])
            elif parts[0] == "S":
                assert parts[1] in introduced  # I precedes S
                staged.add(parts[1])
            elif parts[0] == "E":
                ended.add(parts[1])
            elif parts[0] == "R":
                assert parts[1] in staged
                retired.add(parts[1])
                assert parts[3] in ("0", "1")
        assert introduced == staged == ended == retired
        assert len(introduced) > 0

    def test_stage_sequence_per_instruction(self, tmp_path):
        """Stages appear in pipeline order and every S is closed by an
        E before the next stage starts (events are cycle-sorted)."""
        lines = write_trace(tmp_path)
        open_stage = {}
        sequences = {}
        for line in lines[1:]:
            parts = line.split("\t")
            if parts[0] == "S":
                assert open_stage.get(parts[1]) is None
                open_stage[parts[1]] = parts[3]
                sequences.setdefault(parts[1], []).append(parts[3])
            elif parts[0] == "E":
                assert open_stage.pop(parts[1]) == parts[3]
        assert not open_stage
        for stages in sequences.values():
            assert stages[0] == "F"
            assert stages[-1] in ("Cm", "X", "Ex", "Iq", "Rn", "F")
            assert len(stages) == len(set(stages))

    def test_ixu_instructions_use_x_stage(self, tmp_path):
        text = "\n".join(write_trace(tmp_path))
        assert "\tX" in text       # FXA traces show IXU execution
        assert "IXU(stage" in text  # and the label carries the detail


class TestWindow:
    def test_window_caps_recorded_instructions(self, tmp_path):
        lines = write_trace(tmp_path, window=50)
        retires = [line for line in lines if line.startswith("R\t")]
        assert len(retires) == 50

    def test_window_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            KanataWriter(str(tmp_path / "x"), window=0)


class TestGzip:
    def _run(self, tmp_path, name):
        path = tmp_path / name
        writer = KanataWriter(str(path), window=50)
        obs = Observability(metrics=False, stalls=False,
                            pipeview=writer)
        build_core("HALF+FX", obs=obs).run(
            generate_trace("hmmer", 600))
        writer.close()
        return path

    def test_gz_path_writes_same_trace_compressed(self, tmp_path):
        import gzip

        plain = self._run(tmp_path, "trace.kanata").read_bytes()
        packed = self._run(tmp_path, "trace.kanata.gz")
        with gzip.open(packed) as handle:
            assert handle.read() == plain

    def test_gz_output_is_byte_stable(self, tmp_path):
        """mtime=0 keeps repeated runs byte-identical (cache- and
        diff-friendly artifacts); same name, the header embeds it."""
        (tmp_path / "one").mkdir()
        (tmp_path / "two").mkdir()
        first = self._run(tmp_path / "one", "t.kanata.gz").read_bytes()
        second = self._run(tmp_path / "two", "t.kanata.gz").read_bytes()
        assert first == second


class TestModels:
    @pytest.mark.parametrize("model", ["BIG", "LITTLE", "CA"])
    def test_other_models_produce_valid_traces(self, tmp_path, model):
        lines = write_trace(tmp_path, model=model, insts=300)
        assert lines[0] == "Kanata\t0004"
        assert any(line.startswith("R\t") for line in lines)

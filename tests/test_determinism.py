"""Determinism: same seed + config ⇒ bit-identical results.

The experiment layer treats ``simulate`` as a pure function of its
arguments — that purity is what makes the in-memory memo, the disk
cache and the process pool sound (a cached or worker-computed result
must be indistinguishable from a local one).  These tests pin it at
the ``BenchmarkRun.to_dict()`` level: every stat and every energy
number, bit for bit.
"""

from repro.core.presets import model_config
from repro.experiments import runner


def _reset():
    runner.clear_cache()
    runner.pop_job_records()


def test_simulate_repeat_bit_identical():
    config = model_config("HALF+FX")
    a = runner.simulate(config, "hmmer", measure=1500, warmup=2000,
                        seed=3)
    b = runner.simulate(config, "hmmer", measure=1500, warmup=2000,
                        seed=3)
    assert a.to_dict() == b.to_dict()


def test_run_benchmark_identical_across_cold_caches():
    config = model_config("BIG")
    _reset()
    a = runner.run_benchmark(config, "mcf", measure=1200, warmup=1500,
                             seed=5)
    _reset()
    b = runner.run_benchmark(config, "mcf", measure=1200, warmup=1500,
                             seed=5)
    _reset()
    assert a.to_dict() == b.to_dict()


def test_worker_count_does_not_change_results():
    """--jobs 1 and --jobs 2 must produce bit-identical runs."""
    pairs = [
        (model_config("LITTLE"), "hmmer"),
        (model_config("HALF+FX"), "hmmer"),
        (model_config("CA"), "mcf"),
    ]
    results = {}
    for jobs in (1, 2):
        _reset()
        runner.set_jobs(jobs)
        try:
            runner.prefetch(pairs, measure=1000, warmup=1200, seed=2)
            results[jobs] = [
                runner.run_benchmark(config, bench, measure=1000,
                                     warmup=1200, seed=2).to_dict()
                for config, bench in pairs
            ]
        finally:
            runner.set_jobs(1)
    _reset()
    assert results[1] == results[2]

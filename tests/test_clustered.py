"""Tests for the clustered-architecture comparator (Section VII-A)."""

from dataclasses import replace

import pytest

from repro.core import build_core
from repro.core.clustered import ClusteredCore
from repro.core.config import ClusterConfig
from repro.core.presets import big_config, ca_config
from repro.isa import DynInst, OpClass, int_reg
from repro.workloads import generate_trace


def _alu_stream(n):
    return [
        DynInst(seq=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
                dest=int_reg(i % 20), srcs=(int_reg(25 + i % 3),))
        for i in range(n)
    ]


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(count=1)
        with pytest.raises(ValueError):
            ClusterConfig(steering="random")
        with pytest.raises(ValueError):
            ClusterConfig(inter_cluster_delay=-1)

    def test_cannot_combine_with_ixu(self):
        from repro.core import IXUConfig
        from repro.core.config import CoreConfig

        with pytest.raises(ValueError):
            CoreConfig(name="x", core_type="ooo", ixu=IXUConfig(),
                       clusters=ClusterConfig())

    def test_requires_cluster_config(self):
        with pytest.raises(ValueError):
            ClusteredCore(big_config())

    def test_build_core_routes_to_clustered(self):
        assert isinstance(build_core("CA"), ClusteredCore)


class TestClusteredExecution:
    def test_commits_whole_trace(self):
        stats = build_core("CA").run(_alu_stream(800))
        assert stats.committed == 800

    def test_real_workload_runs(self):
        for bench in ("gcc", "lbm"):
            trace = generate_trace(bench, 1200)
            stats = build_core("CA").run(trace)
            assert stats.committed == 1200

    def test_clusters_balance_under_dependence_steering(self):
        core = build_core("CA")
        core.run(generate_trace("hmmer", 3000))
        left, right = core.issued_per_cluster
        total = left + right
        assert total > 0
        assert 0.25 < left / total < 0.75

    def test_roundrobin_creates_more_cross_forwards(self):
        """Naive steering splits dependence chains across clusters."""
        trace = generate_trace("gcc", 3000)
        dep_core = build_core(ca_config("dependence"))
        dep_core.run(trace)
        rr_core = build_core(
            replace(ca_config("roundrobin"), name="CA-rr"))
        rr_core.run(trace)
        assert (rr_core.intercluster_forwards
                > dep_core.intercluster_forwards)

    def test_cross_cluster_delay_costs_cycles(self):
        """A serial chain round-robined across clusters pays the
        inter-cluster latency on every hop."""
        chain = [
            DynInst(seq=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
                    dest=int_reg(1), srcs=(int_reg(1),))
            for i in range(1000)
        ]
        rr = build_core(replace(ca_config("roundrobin"), name="CA-rr"))
        rr_stats = rr.run(chain)
        dep = build_core(ca_config("dependence"))
        dep_stats = dep.run(chain)
        assert dep_stats.cycles < rr_stats.cycles
        # Round-robin pays ~1 extra cycle per hop: IPC near 1/2.
        assert rr_stats.ipc < 0.7

    def test_per_cluster_issue_width(self):
        """Each cluster issues at most its private width per cycle."""
        stats = build_core("CA").run(_alu_stream(4000))
        # 2 clusters x 1 INT FU each: ALU throughput caps at 2.
        assert stats.ipc <= 2.05

    def test_intercluster_forwards_priced(self):
        from repro.core import model_config
        from repro.energy import Component, EnergyModel

        trace = generate_trace("gcc", 2000)
        core = build_core(replace(ca_config("roundrobin"), name="CA-rr"))
        stats = core.run(trace)
        assert stats.events.intercluster_forwards > 0
        breakdown = EnergyModel(model_config("CA")).evaluate(stats)
        assert breakdown.dynamic[Component.FUS] > 0

    def test_violation_squash_cleans_cluster_map(self):
        trace = [
            DynInst(seq=0, pc=0x1000, op=OpClass.INT_DIV,
                    dest=int_reg(1), srcs=(int_reg(25),)),
            DynInst(seq=1, pc=0x1004, op=OpClass.STORE,
                    srcs=(int_reg(1), int_reg(26)), mem_addr=0x8000,
                    mem_size=8),
            DynInst(seq=2, pc=0x1008, op=OpClass.LOAD,
                    dest=int_reg(4), srcs=(int_reg(27),),
                    mem_addr=0x8000, mem_size=8),
            DynInst(seq=3, pc=0x100c, op=OpClass.INT_ALU,
                    dest=int_reg(5), srcs=(int_reg(4),)),
        ]
        stats = build_core("CA").run(trace)
        assert stats.violations >= 1
        assert stats.committed == 4

"""Top-down slot accounting and energy-by-class attribution tests.

The two exactness invariants this PR pins (mirroring the stall
collector's stall-sum guarantee):

* the slot tree sums to exactly ``width x cycles`` — on the golden
  configs, on fuzz-jittered configs of all four core families, with
  the fast-forward kernel on and off (the bulk charge must equal the
  serial per-cycle sum), and

* the per-class energy attribution sums to the full-run
  ``EnergyBreakdown`` total (to float round-off), full-run and per
  timeline interval.

Plus: disabled runs stay bit-identical (a core run without a topdown
collector is unchanged by this PR), and the ``cycles.fastforwarded``
metrics counter reports kernel engagement.
"""

import math

import pytest

from repro.core import build_core, model_config
from repro.energy import EnergyModel
from repro.obs import (
    ENERGY_CLASSES,
    Observability,
    SLOT_LEAVES,
    TimelineCollector,
    TopDownCollector,
    attribute_energy_by_class,
    format_energy_by_class,
    format_topdown_report,
    merge_topdown_payloads,
    rollup_slots,
)
from repro.obs.topdown import ClassMix
from repro.validate.fuzz import sample_case
from repro.workloads import generate_trace

MODELS = ("BIG", "HALF+FX", "LITTLE", "CA")


def _observe(config_or_model, trace):
    topdown = TopDownCollector()
    obs = Observability(metrics=False, stalls=False, topdown=topdown)
    core = build_core(config_or_model, obs=obs)
    stats = core.run(list(trace))
    return topdown, stats


class TestSlotSumInvariant:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("bench", ("hmmer", "mcf"))
    def test_tree_sums_to_width_times_cycles(self, model, bench):
        trace = generate_trace(bench, 2000, seed=3)
        topdown, stats = _observe(model, trace)
        assert set(topdown.slots) == set(SLOT_LEAVES)
        assert sum(topdown.slots.values()) == (
            topdown.width * stats.cycles)
        assert topdown.cycles == stats.cycles
        expected_width = (model_config(model).issue_width
                          if model == "LITTLE"
                          else model_config(model).commit_width)
        assert topdown.width == expected_width

    @pytest.mark.parametrize("model", MODELS)
    def test_retiring_equals_committed(self, model):
        topdown, stats = _observe(
            model, generate_trace("hmmer", 2000, seed=3))
        retired = (topdown.slots["retiring.ixu"]
                   + topdown.slots["retiring.oxu"])
        assert retired == stats.committed
        # The IXU/OXU split mirrors the commit-side coverage counter
        # (zero IXU slots on cores without an IXU).
        assert topdown.slots["retiring.ixu"] == stats.ixu_executed

    def test_bad_speculation_bounded_by_squashes(self):
        # mcf on BIG squashes (memory-order violations) and
        # mispredicts; both bad-speculation leaves must stay sane.
        topdown, stats = _observe(
            "BIG", generate_trace("mcf", 3000, seed=3))
        assert topdown.slots["bad_speculation.squash"] <= (
            stats.squashed * topdown.width)
        if stats.squashed:
            assert topdown.slots["bad_speculation.squash"] > 0

    def test_rollup_covers_every_level(self):
        topdown, stats = _observe(
            "HALF+FX", generate_trace("mcf", 2000, seed=3))
        tree = rollup_slots(topdown.slots)
        total = topdown.width * stats.cycles
        assert (tree["retiring"] + tree["bad_speculation"]
                + tree["frontend_bound"] + tree["backend_bound"]
                == total)
        assert (tree["backend_bound.core"]
                + tree["backend_bound.memory"]
                == tree["backend_bound"])


class TestFuzzedInvariants:
    @pytest.mark.parametrize("index", range(4))
    def test_slot_and_energy_sums_on_jittered_configs(self, index):
        """Property test over fuzzer-jittered configs of all four
        families: slot-sum integer-exact, energy-sum float-exact."""
        case = sample_case(seed=1106, index=index, max_len=600)
        trace = generate_trace(case.benchmark, case.length,
                               case.trace_seed)
        for config in case.configs:
            topdown, stats = _observe(config, trace)
            assert sum(topdown.slots.values()) == (
                topdown.width * stats.cycles), config.name
            esum = sum(topdown.energy_by_class.values())
            assert math.isclose(esum, topdown.energy_total,
                                rel_tol=1e-9, abs_tol=1e-9), config.name


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("model", MODELS)
    def test_payload_identical_kernel_on_vs_off(self, monkeypatch,
                                                model):
        """The bulk on_cycles charge must equal the serial per-cycle
        sum — mcf engages the kernel on every family."""
        trace = list(generate_trace("mcf", 2000, seed=3))
        monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
        fast, _ = _observe(model, trace)
        monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
        serial, _ = _observe(model, trace)
        fast_payload, serial_payload = fast.to_dict(), serial.to_dict()
        # Kernel engagement legitimately differs; everything else is
        # bit-identical.
        assert fast_payload.pop("ff_skipped_cycles") > 0
        assert serial_payload.pop("ff_skipped_cycles") == 0
        assert fast_payload == serial_payload


class TestDisabledBitIdentical:
    @pytest.mark.parametrize("model", MODELS)
    def test_topdown_observation_changes_nothing(self, model):
        trace = list(generate_trace("mcf", 1500, seed=3))
        bare = build_core(model).run(list(trace))
        _, observed = _observe(model, trace)
        assert observed.to_dict() == bare.to_dict()


class TestFastForwardCounter:
    def test_counter_reports_engagement(self, monkeypatch):
        trace = list(generate_trace("mcf", 1500, seed=3))
        monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
        obs = Observability(stalls=False)
        stats = build_core("BIG", obs=obs).run(list(trace))
        assert stats.metrics["counters"]["cycles.fastforwarded"] > 0
        monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
        obs = Observability(stalls=False)
        stats = build_core("BIG", obs=obs).run(list(trace))
        assert stats.metrics["counters"]["cycles.fastforwarded"] == 0


class TestEnergyByClass:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("bench", ("hmmer", "mcf"))
    def test_class_sum_equals_breakdown_total(self, model, bench):
        topdown, stats = _observe(
            model, generate_trace(bench, 2000, seed=3))
        breakdown = EnergyModel(model_config(model)).evaluate(stats)
        assert math.isclose(sum(topdown.energy_by_class.values()),
                            breakdown.total, rel_tol=1e-9)
        assert set(topdown.energy_by_class) == set(ENERGY_CLASSES)

    def test_ixu_classes_only_on_fxa(self):
        for model, expect_ixu in (("BIG", False), ("HALF+FX", True)):
            topdown, _ = _observe(
                model, generate_trace("hmmer", 2000, seed=3))
            ixu_energy = sum(
                energy for key, energy
                in topdown.energy_by_class.items()
                if key.startswith("ixu."))
            assert (ixu_energy > 0) == expect_ixu, model

    def test_degenerate_mix_lands_in_unattributed(self):
        # All-zero class mix: every component's weight profile is
        # empty, so the total survives in "unattributed".
        from repro.energy.model import EnergyBreakdown
        from repro.energy.area import Component

        breakdown = EnergyBreakdown(
            model="TEST", benchmark="none", cycles=1, committed=0,
            dynamic={Component.IQ: 3.0}, static={Component.FPU: 2.0})
        out = attribute_energy_by_class(breakdown, ClassMix())
        # FPU is pinned to oxu.fp by design (leakage of the unit);
        # the weightless IQ energy falls through to unattributed.
        assert math.isclose(out["unattributed"], 3.0)
        assert math.isclose(out["oxu.fp"], 2.0)
        assert math.isclose(sum(out.values()), breakdown.total)


class TestTimelineIntervals:
    @pytest.mark.parametrize("model", MODELS)
    def test_interval_energy_by_class_sums(self, model):
        timeline = TimelineCollector(interval=300)
        obs = Observability(metrics=False, stalls=False,
                            timeline=timeline)
        build_core(model, obs=obs).run(
            list(generate_trace("mcf", 2000, seed=3)))
        assert timeline.samples
        for sample in timeline.samples:
            assert math.isclose(
                sum(sample.energy_by_class.values()),
                sample.energy_total, rel_tol=1e-9, abs_tol=1e-9)
            assert sample.to_dict()["energy_by_class"] == (
                sample.energy_by_class)


class TestFormattersAndMerge:
    def test_merge_and_format_smoke(self):
        payloads = {}
        for model in ("BIG", "HALF+FX"):
            per_bench = []
            for bench in ("hmmer", "mcf"):
                topdown, _ = _observe(
                    model, generate_trace(bench, 1200, seed=3))
                per_bench.append(topdown.to_dict())
            merged = merge_topdown_payloads(per_bench)
            assert merged["total_slots"] == sum(
                p["total_slots"] for p in per_bench)
            assert sum(merged["slots"].values()) == (
                merged["total_slots"])
            assert math.isclose(
                sum(merged["energy_by_class"].values()),
                merged["energy_total"], rel_tol=1e-9)
            payloads[model] = merged
        tree_text = format_topdown_report(payloads)
        assert "retiring" in tree_text and "dram_bound" in tree_text
        assert "BIG" in tree_text and "HALF+FX" in tree_text
        energy_text = format_energy_by_class(payloads)
        assert "ixu.load" in energy_text and "oxu.fp" in energy_text

    def test_collector_attaches_once(self):
        topdown, _ = _observe(
            "LITTLE", generate_trace("hmmer", 600, seed=3))
        with pytest.raises(RuntimeError):
            topdown.attach(build_core("LITTLE"))

"""Tests for the in-order (LITTLE) core."""

import pytest

from repro.core import InOrderCore, build_core
from repro.core.presets import big_config, little_config
from repro.isa import DynInst, OpClass, int_reg
from repro.workloads import generate_trace


def _alu_stream(n):
    return [
        DynInst(seq=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
                dest=int_reg(i % 20), srcs=(int_reg(25 + i % 4),))
        for i in range(n)
    ]


class TestInOrderBasics:
    def test_commits_whole_trace(self):
        stats = build_core("LITTLE").run(_alu_stream(500))
        assert stats.committed == 500

    def test_requires_inorder_config(self):
        with pytest.raises(ValueError):
            InOrderCore(big_config())

    def test_independent_alus_dual_issue(self):
        stats = build_core("LITTLE").run(_alu_stream(4000))
        assert 1.4 < stats.ipc <= 2.05

    def test_serial_chain(self):
        trace = [
            DynInst(seq=i, pc=0x1000 + 4 * (i % 64), op=OpClass.INT_ALU,
                    dest=int_reg(1), srcs=(int_reg(1),))
            for i in range(2000)
        ]
        stats = build_core("LITTLE").run(trace)
        assert 0.7 < stats.ipc <= 1.01

    def test_no_backend_event_counts(self):
        """LITTLE has no IQ/LSQ/RAT: their event counts must stay zero."""
        stats = build_core("LITTLE").run(generate_trace("gcc", 1000))
        events = stats.events
        assert events.iq_dispatches == 0
        assert events.lsq_writes == 0
        assert events.rat_reads == 0
        assert events.rob_allocations == 0
        assert events.prf_reads > 0  # architectural RF reads

    def test_deterministic(self):
        trace = generate_trace("sjeng", 1200)
        a = build_core("LITTLE").run(trace)
        b = build_core("LITTLE").run(trace)
        assert a.cycles == b.cycles


class TestInOrderStalls:
    def test_load_use_stall(self):
        """An L1-hit load-use chain can't beat the load-to-use latency."""
        trace = []
        for i in range(300):
            trace.append(DynInst(
                seq=2 * i, pc=0x1000 + 8 * (i % 16), op=OpClass.LOAD,
                dest=int_reg(1), srcs=(int_reg(1),),
                mem_addr=0x10000 + 8 * (i % 32), mem_size=8))
            trace.append(DynInst(
                seq=2 * i + 1, pc=0x1004 + 8 * (i % 16),
                op=OpClass.INT_ALU, dest=int_reg(1), srcs=(int_reg(1),)))
        stats = build_core("LITTLE").run(trace)
        assert stats.cycles >= 300 * 4 * 0.9

    def test_waw_stalls_pipeline(self):
        """A slow divide's destination blocks a later writer of the
        same register (no renaming)."""
        slow_then_reuse = []
        for i in range(100):
            base = 2 * i
            slow_then_reuse.append(DynInst(
                seq=base, pc=0x1000, op=OpClass.INT_DIV,
                dest=int_reg(1), srcs=(int_reg(25),)))
            slow_then_reuse.append(DynInst(
                seq=base + 1, pc=0x1004, op=OpClass.INT_ALU,
                dest=int_reg(1), srcs=(int_reg(26),)))
        stats = build_core("LITTLE").run(slow_then_reuse)
        assert stats.cycles >= 100 * 12

    def test_store_buffer_forwarding(self):
        trace = []
        for i in range(100):
            base = 2 * i
            trace.append(DynInst(
                seq=base, pc=0x1000, op=OpClass.STORE,
                srcs=(int_reg(25), int_reg(26)),
                mem_addr=0x20000 + 8 * (i % 4), mem_size=8))
            trace.append(DynInst(
                seq=base + 1, pc=0x1004, op=OpClass.LOAD,
                dest=int_reg(3), srcs=(int_reg(27),),
                mem_addr=0x20000 + 8 * (i % 4), mem_size=8))
        stats = build_core("LITTLE").run(trace)
        assert stats.forwarded_loads > 50

    def test_slower_than_big_on_real_workload(self):
        """The paper's LITTLE loses ~40% IPC to BIG."""
        trace = generate_trace("gobmk", 2500)
        little = build_core("LITTLE").run(trace)
        big = build_core("BIG").run(trace)
        assert little.ipc < big.ipc

    def test_misprediction_counted(self):
        stats = build_core("LITTLE").run(generate_trace("sjeng", 2500))
        assert stats.mispredictions > 0
        assert stats.branches > 0

"""Tests for simulation-as-a-service (repro.serve)."""

import json
import threading

import pytest

from repro.core import model_config
from repro.experiments.diskcache import DiskCache, fingerprint
from repro.experiments.pool import FaultSpec, SimJob, set_fault_injector
from repro.experiments.runner import run_sweep
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    ProtocolError,
    parse_batch,
    parse_job,
)
from repro.serve.quota import (
    QuotaExceeded,
    QuotaRegistry,
    TenantPolicy,
)
from repro.serve.server import start_in_background
from repro.serve.spool import Spool, run_worker

SMALL = {"measure": 600, "warmup": 1500}


def job_spec(benchmark="hmmer", model="LITTLE", **extra):
    spec = {"benchmark": benchmark, "model": model, **SMALL}
    spec.update(extra)
    return spec


class TestProtocol:
    def test_parse_job_fills_defaults(self):
        spec = parse_job({"benchmark": "hmmer"})
        assert spec.model == "HALF+FX"
        assert spec.seed == 0
        assert spec.overrides == ()

    def test_unknown_job_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job key"):
            parse_job({"benchmark": "hmmer", "modle": "BIG"})

    def test_unknown_benchmark_and_model_rejected(self):
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            parse_job({"benchmark": "quake3"})
        with pytest.raises(ProtocolError, match="unknown model"):
            parse_job({"benchmark": "hmmer", "model": "HUGE"})

    def test_int_fields_validated(self):
        with pytest.raises(ProtocolError, match="'measure'"):
            parse_job({"benchmark": "hmmer", "measure": "lots"})
        with pytest.raises(ProtocolError, match="'measure'"):
            parse_job({"benchmark": "hmmer", "measure": 0})
        with pytest.raises(ProtocolError, match="'seed'"):
            parse_job({"benchmark": "hmmer", "seed": True})

    def test_bad_override_key_rejected(self):
        with pytest.raises(ProtocolError):
            parse_job({"benchmark": "hmmer",
                       "overrides": {"warp_drive": 9}})

    def test_overrides_change_the_digest(self):
        plain = parse_job(job_spec())
        tweaked = parse_job(job_spec(overrides={"iq_entries": 64}))
        assert plain.digest() != tweaked.digest()
        assert tweaked.config().iq_entries == 64

    def test_digest_matches_cli_sweep_fingerprint(self):
        # No-override specs must hash to the exact fingerprint a CLI
        # sweep of the same preset produces, so the two share cache
        # entries bidirectionally.
        spec = parse_job(job_spec())
        assert spec.digest() == fingerprint(
            model_config("LITTLE"), "hmmer", SMALL["measure"],
            SMALL["warmup"], 0)

    def test_bare_job_promoted_to_batch(self):
        batch = parse_batch(job_spec())
        assert len(batch.jobs) == 1
        assert batch.tenant == "default"

    def test_batch_validation(self):
        with pytest.raises(ProtocolError, match="non-empty array"):
            parse_batch({"jobs": []})
        with pytest.raises(ProtocolError, match="unknown batch key"):
            parse_batch({"jobs": [job_spec()], "priority": 9})
        with pytest.raises(ProtocolError, match="'tenant'"):
            parse_batch({"jobs": [job_spec()], "tenant": ""})
        with pytest.raises(ProtocolError, match="'resume'"):
            parse_batch({"jobs": [job_spec()], "resume": "yes"})


class TestQuota:
    def test_admit_reserves_and_release_frees(self):
        quotas = QuotaRegistry(TenantPolicy(max_queued=4))
        quotas.admit("a", 3)
        with pytest.raises(QuotaExceeded, match="max_queued"):
            quotas.admit("a", 2)
        quotas.release("a", 3)
        quotas.admit("a", 4)

    def test_max_batch_enforced(self):
        quotas = QuotaRegistry(TenantPolicy(max_batch=2))
        with pytest.raises(QuotaExceeded, match="max_batch"):
            quotas.admit("a", 3)

    def test_tenants_are_isolated(self):
        quotas = QuotaRegistry(TenantPolicy(max_queued=2))
        quotas.admit("a", 2)
        quotas.admit("b", 2)  # b's budget is untouched by a

    def test_from_file_and_snapshot(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({
            "default": {"max_queued": 8},
            "tenants": {"ci": {"priority": 10, "max_batch": 4}},
        }))
        quotas = QuotaRegistry.from_file(path)
        assert quotas.policy("ci").priority == 10
        assert quotas.policy("ci").max_queued == 8  # inherits default
        assert quotas.policy("anon").max_queued == 8
        quotas.admit("ci", 2)
        with pytest.raises(QuotaExceeded):
            quotas.admit("ci", 5)
        snap = quotas.snapshot()
        assert snap["ci"]["active_jobs"] == 2
        assert snap["ci"]["rejected_batches"] == 1

    def test_from_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text('{"tenants": {"x": {"max_qeued": 4}}}')
        with pytest.raises(ValueError, match="unknown quota key"):
            QuotaRegistry.from_file(path)


class TestSpoolUnit:
    def test_enqueue_is_idempotent_per_digest(self, tmp_path):
        spool = Spool(tmp_path)
        assert spool.enqueue("d1", {"job": {}}) == "queued"
        assert spool.enqueue("d1", {"job": {}}) == "queued"
        assert spool.depth()["queued"] == 1

    def test_claim_moves_exactly_one_winner(self, tmp_path):
        spool_a = Spool(tmp_path)
        spool_b = Spool(tmp_path)
        spool_a.enqueue("d1", {"job": {"x": 1}})
        claim_a = spool_a.claim()
        claim_b = spool_b.claim()
        assert claim_a is not None and claim_a.digest == "d1"
        assert claim_b is None  # the rename already happened
        assert spool_a.state("d1")[0] == "claimed"

    def test_complete_and_fail_publish_payloads(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue("d1", {"job": {}})
        claim = spool.claim()
        spool.complete(claim, {"status": "ok", "answer": 42})
        state, payload = spool.state("d1")
        assert state == "done" and payload["answer"] == 42
        spool.enqueue("d2", {"job": {}})
        claim = spool.claim()
        spool.fail(claim, {"status": "failed"})
        assert spool.state("d2")[0] == "failed"
        assert spool.depth() == {"queued": 0, "claimed": 0,
                                 "done": 1, "failed": 1}

    def test_reclaim_stale_requeues_dead_workers_claims(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue("d1", {"job": {}})
        spool.claim()  # never completed: the "worker" died here
        assert spool.reclaim_stale(max_age_seconds=3600) == 0
        assert spool.reclaim_stale(max_age_seconds=0) == 1
        assert spool.state("d1")[0] == "queued"

    def test_forget_failure_clears_the_marker(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue("d1", {"job": {}})
        spool.fail(spool.claim(), {"status": "failed"})
        assert spool.forget_failure("d1") is True
        assert spool.forget_failure("d1") is False
        assert spool.state("d1") == (None, None)

    def test_worker_executes_a_real_job(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        cache = DiskCache(tmp_path / "cache")
        spec = parse_job(job_spec())
        spool.enqueue(spec.digest(), {"job": spec.to_dict()})
        executed = run_worker(spool, cache=cache, poll=0.01,
                              max_jobs=1)
        assert executed == 1
        state, payload = spool.state(spec.digest())
        assert state == "done"
        assert payload["status"] == "ok"
        assert payload["run"]["benchmark"] == "hmmer"
        # The result also landed in the shared content-addressed cache.
        assert cache.load(spec.config(), "hmmer", SMALL["measure"],
                          SMALL["warmup"], 0) is not None


class TestRunSweep:
    def _jobs(self):
        return [SimJob(config=model_config(model), benchmark=bench,
                       **SMALL)
                for model in ("LITTLE",) for bench in ("hmmer", "lbm")]

    def test_duplicates_share_one_execution(self, tmp_path):
        cache = DiskCache(tmp_path)
        jobs = self._jobs()
        outcomes = run_sweep(jobs + jobs, cache=cache)
        assert len(outcomes) == 4
        assert outcomes[0] is outcomes[2]
        assert outcomes[1] is outcomes[3]
        assert all(o.source == "simulated" for o in outcomes)

    def test_warm_sweep_is_pure_cache_replay(self, tmp_path):
        cache = DiskCache(tmp_path)
        cold = run_sweep(self._jobs(), cache=cache)
        warm = run_sweep(self._jobs(), cache=cache)
        assert all(o.source == "cache" for o in warm)
        for before, after in zip(cold, warm):
            assert before.run.to_dict() == after.run.to_dict()

    def test_outcome_callback_fires_once_per_distinct_job(self,
                                                          tmp_path):
        seen = []
        jobs = self._jobs()
        run_sweep(jobs + jobs, cache=DiskCache(tmp_path),
                  on_outcome=lambda o: seen.append(o))
        assert len(seen) == 2


@pytest.fixture()
def serve(tmp_path):
    """A live in-process server plus its client and cache."""
    cache = DiskCache(tmp_path / "cache")
    server, stop = start_in_background(
        cache=cache, workers=1,
        manifest_dir=str(tmp_path / "manifests"))
    client = ServeClient(server.host, server.port, timeout=300)
    try:
        yield server, client, cache
    finally:
        stop()


class TestServeEndToEnd:
    def test_cold_then_warm_batch(self, serve, tmp_path):
        server, client, cache = serve
        batch = {"jobs": [job_spec(),
                          job_spec(benchmark="lbm"),
                          job_spec()]}  # a duplicate, dedup'd away
        submitted = client.submit(batch)
        assert submitted["jobs"] == 3
        assert submitted["distinct_jobs"] == 2
        events = list(client.stream(submitted["batch_id"]))
        assert events[0]["event"] == "batch_start"
        end = events[-1]
        assert end["event"] == "batch_end"
        assert end["by_source"] == {"simulated": 2}
        assert end["ok"] == 2 and end["failed"] == 0
        assert end["manifest"]["jobs_simulated"] == 2
        # Warm resubmission: identical digests, zero simulation.
        warm = client.run_batch(batch)
        warm_end = warm[-1]
        assert warm_end["by_source"] == {"cache": 2}
        assert warm_end["manifest"]["jobs_simulated"] == 0
        assert warm_end["manifest"]["job_records"] == []
        # Per-job payloads are identical cold vs warm.
        cold_results = {e["digest"]: e["result"]["ipc"]
                        for e in events if e["event"] == "job"}
        warm_results = {e["digest"]: e["result"]["ipc"]
                        for e in warm if e["event"] == "job"}
        assert cold_results == warm_results
        # The per-batch manifest landed on disk too.
        manifest_path = warm_end["manifest_path"]
        assert json.load(open(manifest_path))["jobs_simulated"] == 0

    def test_results_byte_identical_to_direct_sweep(self, serve,
                                                    tmp_path):
        # Acceptance: a batch served over HTTP and the same sweep run
        # directly against a fresh cache produce byte-identical cache
        # entries.
        server, client, cache = serve
        spec = parse_job(job_spec(benchmark="milc"))
        client.run_batch({"jobs": [job_spec(benchmark="milc")]})
        direct_cache = DiskCache(tmp_path / "direct")
        run_sweep([spec.sim_job()], cache=direct_cache)
        digest = spec.digest()
        served = (cache.root / digest[:2] / f"{digest}.json")
        direct = (direct_cache.root / digest[:2] / f"{digest}.json")
        assert served.read_bytes() == direct.read_bytes()

    def test_streaming_replays_history_for_late_subscribers(self,
                                                            serve):
        server, client, cache = serve
        submitted = client.submit(job_spec())
        first = list(client.stream(submitted["batch_id"]))
        again = list(client.stream(submitted["batch_id"]))
        assert first == again

    def test_malformed_submissions_answer_400(self, serve):
        server, client, cache = serve
        with pytest.raises(ServeError) as err:
            client.submit({"jobs": [{"benchmark": "quake3"}]})
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.submit({"jobs": [job_spec()], "turbo": True})
        assert err.value.status == 400

    def test_unknown_batch_answers_404(self, serve):
        server, client, cache = serve
        with pytest.raises(ServeError) as err:
            client.batch("b999999")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            list(client.stream("b999999"))
        assert err.value.status == 404

    def test_status_counters(self, serve):
        server, client, cache = serve
        client.run_batch({"jobs": [job_spec()], "tenant": "alice"})
        client.run_batch({"jobs": [job_spec()], "tenant": "alice"})
        status = client.status()
        assert status["metrics"]["serve.jobs_simulated"] == 1
        assert status["metrics"]["serve.jobs_cache"] == 1
        assert status["cache"]["stores"] == 1
        assert status["queue"]["depth"] == 0
        assert status["tenants"]["alice"]["admitted_jobs"] == 2
        assert status["tenants"]["alice"]["active_jobs"] == 0
        assert status["server"]["mode"] == "local"
        assert status["spool"] is None

    def test_batch_snapshot_counts_sources(self, serve):
        server, client, cache = serve
        submitted = client.submit(job_spec())
        list(client.stream(submitted["batch_id"]))
        snap = client.batch(submitted["batch_id"])
        assert snap["done"] is True
        assert snap["completed_ok"] == 1
        assert snap["by_source"] == {"simulated": 1}


class TestServeQuota:
    def test_over_quota_answers_429(self, tmp_path):
        quotas = QuotaRegistry(TenantPolicy(max_batch=1))
        server, stop = start_in_background(
            cache=DiskCache(tmp_path / "cache"), quotas=quotas)
        client = ServeClient(server.host, server.port, timeout=60)
        try:
            with pytest.raises(ServeError) as err:
                client.submit({"jobs": [job_spec(),
                                        job_spec(benchmark="lbm")]})
            assert err.value.status == 429
            status = client.status()
            assert status["metrics"]["serve.rejected_quota"] == 1
            assert (status["tenants"]["default"]["rejected_batches"]
                    == 1)
        finally:
            stop()


class TestServeFaults:
    def test_injected_fault_quarantines_then_replays_sticky(
            self, tmp_path):
        # The e2e fault path: a crash-injected job exhausts its (zero)
        # retry budget, streams a failed event, persists the failure
        # record — and a resubmission replays the quarantine from disk
        # without re-crashing anything.  resume=True retries it.
        cache = DiskCache(tmp_path / "cache")
        set_fault_injector(FaultSpec.parse("crash:mcf"))
        try:
            server, stop = start_in_background(cache=cache, workers=1)
            client = ServeClient(server.host, server.port, timeout=300)
            try:
                batch = {"jobs": [job_spec(benchmark="mcf"),
                                  job_spec(benchmark="hmmer")]}
                events = client.run_batch(batch)
                jobs = {e["job"]: e for e in events
                        if e["event"] == "job"}
                failed = next(e for e in jobs.values()
                              if e["status"] == "failed")
                assert "mcf" in failed["job"]
                assert failed["failure"]["cause"] == "exception"
                assert "injected crash" in failed["failure"]["error"]
                end = events[-1]
                assert end["ok"] == 1 and end["failed"] == 1
                assert end["manifest"]["jobs_failed"] == 1
                # Resubmit: the failure is sticky (served from the
                # quarantine record, not re-crashed).
                replay = client.run_batch(batch)
                sources = {e["job"]: e["source"] for e in replay
                           if e["event"] == "job"}
                assert any(s == "quarantine" for s in sources.values())
                # resume=True clears the record and re-runs the job;
                # the injector still fires, so it fails fresh.
                resumed = client.run_batch({**batch, "resume": True})
                mcf = next(e for e in resumed if e["event"] == "job"
                           and "mcf" in e["job"])
                assert mcf["source"] == "simulated"
                assert mcf["status"] == "failed"
            finally:
                stop()
        finally:
            set_fault_injector(None)


class TestServeSpool:
    def test_spool_batch_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        spool = Spool(tmp_path / "spool")
        server, stop = start_in_background(
            cache=cache, spool=spool, spool_poll=0.02)
        worker = threading.Thread(
            target=run_worker,
            args=(Spool(tmp_path / "spool"),),
            kwargs={"cache": DiskCache(tmp_path / "cache"),
                    "poll": 0.02, "idle_exit": 10.0},
            daemon=True)
        worker.start()
        client = ServeClient(server.host, server.port, timeout=300)
        try:
            events = client.run_batch({"jobs": [job_spec()]})
            end = events[-1]
            assert end["by_source"] == {"simulated": 1}
            assert end["ok"] == 1
            status = client.status()
            assert status["server"]["mode"] == "spool"
            assert status["spool"]["done"] == 1
            # Warm resubmission is answered by the server's own cache
            # lookup: nothing new reaches the queue.
            warm = client.run_batch({"jobs": [job_spec()]})
            assert warm[-1]["by_source"] == {"cache": 1}
            assert client.status()["spool"]["queued"] == 0
        finally:
            stop()
        worker.join(timeout=30)
